#include "src/core/event.hpp"

#include <atomic>
#include <bit>
#include <cstring>

#include "src/common/crc32.hpp"
#include "src/common/string_util.hpp"

namespace fsmon::core {

using common::ErrorCode;
using common::Result;
using common::Status;

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kCreate: return "CREATE";
    case EventKind::kModify: return "MODIFY";
    case EventKind::kAttrib: return "ATTRIB";
    case EventKind::kClose: return "CLOSE";
    case EventKind::kOpen: return "OPEN";
    case EventKind::kDelete: return "DELETE";
    case EventKind::kMovedFrom: return "MOVED_FROM";
    case EventKind::kMovedTo: return "MOVED_TO";
  }
  return "?";
}

std::optional<EventKind> parse_event_kind(std::string_view text) {
  static constexpr EventKind kAll[] = {
      EventKind::kCreate, EventKind::kModify,    EventKind::kAttrib, EventKind::kClose,
      EventKind::kOpen,   EventKind::kDelete,    EventKind::kMovedFrom,
      EventKind::kMovedTo,
  };
  for (EventKind k : kAll) {
    if (to_string(k) == text) return k;
  }
  return std::nullopt;
}

std::string StdEvent::full_path() const {
  if (watch_root == "/" || watch_root.empty()) return path;
  return watch_root + path;
}

std::string StdEvent::parent_path() const {
  if (!has_path()) return "/";
  return common::parent_path(path);
}

std::string StdEvent::base_name() const {
  if (!has_path()) return "";
  return common::base_name(path);
}

std::string to_inotify_line(const StdEvent& event) {
  std::string line;
  line.reserve(event.watch_root.size() + event.path.size() + 24);
  line += event.watch_root;
  line += ' ';
  line += to_string(event.kind);
  if (event.is_dir) line += ",ISDIR";
  line += ' ';
  line += event.path;
  return line;
}

namespace {

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32_at(std::span<const std::byte> in, std::size_t offset) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(in[offset + static_cast<std::size_t>(i)]) << (8 * i);
  return v;
}

void write_u32_at(std::span<std::byte> out, std::size_t offset, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out[offset + static_cast<std::size_t>(i)] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
}

void write_u64_at(std::span<std::byte> out, std::size_t offset, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out[offset + static_cast<std::size_t>(i)] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
}

std::byte* raw_u32(std::byte* p, std::uint32_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(p, &v, 4);
    return p + 4;
  }
  for (int i = 0; i < 4; ++i) *p++ = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  return p;
}

std::byte* raw_u64(std::byte* p, std::uint64_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(p, &v, 8);
    return p + 8;
  }
  for (int i = 0; i < 8; ++i) *p++ = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  return p;
}

std::byte* raw_string(std::byte* p, const std::string& s) {
  p = raw_u64(p, s.size());
  std::memcpy(p, s.data(), s.size());
  return p + s.size();
}

bool get_u64(std::span<const std::byte> in, std::size_t& offset, std::uint64_t& v) {
  if (in.size() - offset < 8) return false;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(&v, in.data() + offset, 8);
  } else {
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(in[offset + static_cast<std::size_t>(i)]) << (8 * i);
  }
  offset += 8;
  return true;
}

bool get_string(std::span<const std::byte> in, std::size_t& offset, std::string& s) {
  std::uint64_t len = 0;
  if (!get_u64(in, offset, len)) return false;
  if (len > (1ull << 30) || in.size() - offset < len) return false;
  s.assign(reinterpret_cast<const char*>(in.data() + offset), len);
  offset += len;
  return true;
}

std::atomic<std::uint64_t> g_serialize_calls{0};
std::atomic<std::uint64_t> g_deserialize_calls{0};

// Uncounted codec cores. The public entry points bump the per-event
// counters; the batch codecs call these and account a whole frame with
// one fetch_add so the counters still advance once per event without an
// atomic op per event on the hot path.
std::size_t encoded_event_size(const StdEvent& event) {
  return 26 + 3 * 8 + event.watch_root.size() + event.path.size() + event.source.size();
}

std::byte* raw_event(std::byte* p, const StdEvent& event) {
  p = raw_u64(p, event.id);
  *p++ = static_cast<std::byte>(event.kind);
  *p++ = static_cast<std::byte>(event.is_dir ? 1 : 0);
  p = raw_u64(p, event.cookie);
  p = raw_u64(p, static_cast<std::uint64_t>(event.timestamp.time_since_epoch().count()));
  p = raw_string(p, event.watch_root);
  p = raw_string(p, event.path);
  p = raw_string(p, event.source);
  return p;
}

void serialize_event_impl(const StdEvent& event, std::vector<std::byte>& out) {
  // Size once, then write through a raw pointer: per-byte push_back
  // capacity checks dominate the encode cost on the batched hot path.
  const std::size_t base = out.size();
  out.resize(base + encoded_event_size(event));
  raw_event(out.data() + base, event);
}

Result<std::pair<StdEvent, std::size_t>> deserialize_event_impl(
    std::span<const std::byte> in);

}  // namespace

CodecCounters codec_counters() {
  return CodecCounters{g_serialize_calls.load(std::memory_order_relaxed),
                       g_deserialize_calls.load(std::memory_order_relaxed)};
}

void serialize_event(const StdEvent& event, std::vector<std::byte>& out) {
  g_serialize_calls.fetch_add(1, std::memory_order_relaxed);
  serialize_event_impl(event, out);
}

std::vector<std::byte> serialize_event(const StdEvent& event) {
  std::vector<std::byte> out;
  serialize_event(event, out);
  return out;
}

Result<std::pair<StdEvent, std::size_t>> deserialize_event(std::span<const std::byte> in) {
  g_deserialize_calls.fetch_add(1, std::memory_order_relaxed);
  return deserialize_event_impl(in);
}

namespace {

Result<std::pair<StdEvent, std::size_t>> deserialize_event_impl(
    std::span<const std::byte> in) {
  StdEvent event;
  std::size_t offset = 0;
  std::uint64_t id = 0;
  if (!get_u64(in, offset, id))
    return Status(ErrorCode::kCorrupt, "event: truncated id");
  event.id = id;
  if (in.size() - offset < 2) return Status(ErrorCode::kCorrupt, "event: truncated header");
  const auto kind_raw = static_cast<std::uint8_t>(in[offset++]);
  if (kind_raw > static_cast<std::uint8_t>(EventKind::kMovedTo))
    return Status(ErrorCode::kCorrupt, "event: bad kind");
  event.kind = static_cast<EventKind>(kind_raw);
  event.is_dir = in[offset++] != std::byte{0};
  if (!get_u64(in, offset, event.cookie))
    return Status(ErrorCode::kCorrupt, "event: truncated cookie");
  std::uint64_t ts = 0;
  if (!get_u64(in, offset, ts)) return Status(ErrorCode::kCorrupt, "event: truncated time");
  event.timestamp = common::TimePoint{common::Duration{static_cast<std::int64_t>(ts)}};
  if (!get_string(in, offset, event.watch_root) || !get_string(in, offset, event.path) ||
      !get_string(in, offset, event.source))
    return Status(ErrorCode::kCorrupt, "event: truncated strings");
  return std::make_pair(std::move(event), offset);
}

}  // namespace

// Fixed layout facts the batch fast path relies on: within one encoded
// event, the id is bytes [0, 8) and the timestamp bytes [18, 26)
// (id u64 | kind u8 | is_dir u8 | cookie u64 | timestamp u64 | strings).
namespace {
constexpr std::size_t kEventIdOffset = 0;
constexpr std::size_t kEventCookieOffset = 10;
constexpr std::size_t kEventTimestampOffset = 18;
constexpr std::size_t kEventStringsOffset = 26;
constexpr std::size_t kEventMinBytes = 26 + 3 * 8;  // header + three empty strings
constexpr std::size_t kBatchHeaderBytes = 8;        // magic + count
constexpr std::size_t kBatchTrailerBytes = 4;       // crc
}  // namespace

void encode_batch(const EventBatch& batch, std::vector<std::byte>& out) {
  // Size the whole frame up front and write through one raw pointer: the
  // transport path encodes into a fresh buffer per frame, and growing it
  // incrementally (per-event resize + length-prefix patching) used to
  // cost more than the byte writes themselves.
  const std::size_t start = out.size();
  std::size_t total = kBatchHeaderBytes + kBatchTrailerBytes;
  for (const StdEvent& event : batch.events) total += 4 + encoded_event_size(event);
  out.resize(start + total);
  std::byte* p = out.data() + start;
  p = raw_u32(p, kBatchMagic);
  p = raw_u32(p, static_cast<std::uint32_t>(batch.events.size()));
  g_serialize_calls.fetch_add(batch.events.size(), std::memory_order_relaxed);
  for (const StdEvent& event : batch.events) {
    p = raw_u32(p, static_cast<std::uint32_t>(encoded_event_size(event)));
    p = raw_event(p, event);
  }
  const std::uint32_t crc =
      common::crc32(std::span(out.data() + start, total - kBatchTrailerBytes));
  raw_u32(p, crc);
}

std::vector<std::byte> encode_batch(const EventBatch& batch) {
  std::vector<std::byte> out;
  encode_batch(batch, out);
  return out;
}

Result<EventBatchView> view_batch(std::span<const std::byte> frame, bool verify_crc) {
  if (frame.size() < kBatchHeaderBytes + kBatchTrailerBytes)
    return Status(ErrorCode::kCorrupt, "batch: truncated header");
  if (get_u32_at(frame, 0) != kBatchMagic)
    return Status(ErrorCode::kCorrupt, "batch: bad magic");
  EventBatchView view;
  view.count = get_u32_at(frame, 4);
  if (view.count > (1u << 24)) return Status(ErrorCode::kCorrupt, "batch: absurd count");
  std::size_t offset = kBatchHeaderBytes;
  view.events.reserve(view.count);
  for (std::uint32_t i = 0; i < view.count; ++i) {
    if (frame.size() - offset < 4 + kBatchTrailerBytes)
      return Status(ErrorCode::kCorrupt, "batch: truncated event length");
    const std::uint32_t len = get_u32_at(frame, offset);
    offset += 4;
    if (len < kEventMinBytes || frame.size() - offset < len + kBatchTrailerBytes)
      return Status(ErrorCode::kCorrupt, "batch: truncated event body");
    view.events.emplace_back(offset, len);
    offset += len;
  }
  if (frame.size() != offset + kBatchTrailerBytes)
    return Status(ErrorCode::kCorrupt, "batch: trailing garbage");
  if (verify_crc) {
    const std::uint32_t expected = get_u32_at(frame, offset);
    const std::uint32_t actual = common::crc32(frame.subspan(0, offset));
    if (expected != actual) return Status(ErrorCode::kCorrupt, "batch: CRC mismatch");
  }
  return view;
}

Result<EventBatch> decode_batch(std::span<const std::byte> in) {
  auto view = view_batch(in);
  if (!view) return view.status();
  EventBatch batch;
  batch.events.reserve(view.value().count);
  g_deserialize_calls.fetch_add(view.value().count, std::memory_order_relaxed);
  for (const auto& [offset, len] : view.value().events) {
    auto decoded = deserialize_event_impl(in.subspan(offset, len));
    if (!decoded) return decoded.status();
    if (decoded.value().second != len)
      return Status(ErrorCode::kCorrupt, "batch: embedded event length mismatch");
    batch.events.push_back(std::move(decoded.value().first));
  }
  return batch;
}

Result<std::size_t> patch_batch_ids(std::span<std::byte> frame, common::EventId first_id) {
  auto view = view_batch(frame, /*verify_crc=*/false);
  if (!view) return view.status();
  common::EventId id = first_id;
  for (const auto& [offset, len] : view.value().events) {
    (void)len;
    write_u64_at(frame, offset + kEventIdOffset, id++);
  }
  const std::size_t body = frame.size() - kBatchTrailerBytes;
  write_u32_at(frame, body, common::crc32(std::span<const std::byte>(frame.data(), body)));
  return static_cast<std::size_t>(view.value().count);
}

Result<common::TimePoint> peek_event_timestamp(std::span<const std::byte> event_bytes) {
  if (event_bytes.size() < kEventTimestampOffset + 8)
    return Status(ErrorCode::kCorrupt, "event: too short for timestamp");
  std::uint64_t ts = 0;
  std::size_t offset = kEventTimestampOffset;
  get_u64(event_bytes, offset, ts);
  return common::TimePoint{common::Duration{static_cast<std::int64_t>(ts)}};
}

Result<std::uint64_t> peek_event_cookie(std::span<const std::byte> event_bytes) {
  if (event_bytes.size() < kEventCookieOffset + 8)
    return Status(ErrorCode::kCorrupt, "event: too short for cookie");
  std::uint64_t cookie = 0;
  std::size_t offset = kEventCookieOffset;
  get_u64(event_bytes, offset, cookie);
  return cookie;
}

Result<std::string_view> peek_event_source(std::span<const std::byte> event_bytes) {
  // Skip the fixed header, then watch_root and path (u64 length prefixes).
  std::size_t offset = kEventStringsOffset;
  for (int i = 0; i < 2; ++i) {
    std::uint64_t len = 0;
    if (!get_u64(event_bytes, offset, len) || len > (1ull << 30) ||
        event_bytes.size() - offset < len)
      return Status(ErrorCode::kCorrupt, "event: truncated strings");
    offset += len;
  }
  std::uint64_t len = 0;
  if (!get_u64(event_bytes, offset, len) || len > (1ull << 30) ||
      event_bytes.size() - offset < len)
    return Status(ErrorCode::kCorrupt, "event: truncated source");
  return std::string_view(reinterpret_cast<const char*>(event_bytes.data() + offset),
                          len);
}

Result<EventKind> peek_event_kind(std::span<const std::byte> event_bytes) {
  if (event_bytes.size() < kEventMinBytes)
    return Status(ErrorCode::kCorrupt, "event: too short for kind");
  const auto raw = static_cast<std::uint8_t>(event_bytes[8]);
  if (raw > static_cast<std::uint8_t>(EventKind::kMovedTo))
    return Status(ErrorCode::kCorrupt, "event: bad kind");
  return static_cast<EventKind>(raw);
}

Result<bool> peek_event_is_dir(std::span<const std::byte> event_bytes) {
  if (event_bytes.size() < kEventMinBytes)
    return Status(ErrorCode::kCorrupt, "event: too short for is_dir");
  return event_bytes[9] != std::byte{0};
}

std::vector<std::byte> rebuild_batch(
    std::span<const std::byte> frame,
    const std::vector<std::pair<std::size_t, std::size_t>>& kept) {
  std::vector<std::byte> out;
  std::size_t total = kBatchHeaderBytes + kBatchTrailerBytes;
  for (const auto& [offset, len] : kept) total += 4 + len;
  out.reserve(total);
  put_u32(out, kBatchMagic);
  put_u32(out, static_cast<std::uint32_t>(kept.size()));
  for (const auto& [offset, len] : kept) {
    put_u32(out, static_cast<std::uint32_t>(len));
    const std::byte* src = frame.data() + offset;
    out.insert(out.end(), src, src + len);
  }
  put_u32(out, common::crc32(std::span<const std::byte>(out.data(), out.size())));
  return out;
}

}  // namespace fsmon::core
