#include "src/core/monitor.hpp"

#include "src/common/string_util.hpp"
#include "src/core/dialects.hpp"

namespace fsmon::core {

using common::Result;
using common::Status;

namespace {

ResolutionOptions with_root(ResolutionOptions options, const std::string& root) {
  if (!root.empty()) options.watch_root = common::normalize_path(root);
  return options;
}

}  // namespace

FsMonitor::FsMonitor(MonitorOptions options, DsiRegistry* registry, common::Clock* clock)
    : options_(std::move(options)),
      registry_(registry != nullptr ? registry : &DsiRegistry::global()),
      clock_(clock != nullptr ? clock : &common::RealClock::instance()),
      resolution_(with_root(options_.resolution, options_.storage.root), *clock_),
      interface_(options_.interface) {}

FsMonitor::~FsMonitor() { stop(); }

Status FsMonitor::start() {
  if (started_) return Status::ok();
  auto dsi = registry_->create(options_.storage);
  if (!dsi) return dsi.status();
  dsi_ = std::move(dsi).take();
  resolution_.start([this](std::vector<StdEvent> batch) { interface_.ingest(std::move(batch)); });
  auto status = dsi_->start([this](StdEvent event) { resolution_.submit(std::move(event)); });
  if (!status.is_ok()) {
    resolution_.stop();
    dsi_.reset();
    return status;
  }
  started_ = true;
  return Status::ok();
}

void FsMonitor::stop() {
  if (!started_) return;
  if (dsi_ != nullptr) dsi_->stop();
  resolution_.stop();
  started_ = false;
}

bool FsMonitor::running() const { return started_ && dsi_ != nullptr && dsi_->running(); }

SubscriptionId FsMonitor::subscribe(FilterRule rule, InterfaceLayer::EventSink sink) {
  return interface_.subscribe(std::move(rule), std::move(sink));
}

void FsMonitor::unsubscribe(SubscriptionId id) { interface_.unsubscribe(id); }

Result<std::vector<StdEvent>> FsMonitor::events_since(common::EventId after_id,
                                                      std::size_t max_events) const {
  return interface_.events_since(after_id, max_events);
}

void FsMonitor::acknowledge(common::EventId up_to_id) { interface_.acknowledge(up_to_id); }

std::size_t FsMonitor::purge() { return interface_.purge(); }

std::string FsMonitor::render_line(const StdEvent& event) const {
  return render(options_.output_dialect, event);
}

std::string FsMonitor::dsi_name() const { return dsi_ == nullptr ? "" : dsi_->name(); }

}  // namespace fsmon::core
