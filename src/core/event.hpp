// FSMonitor's standard, file-system-independent event representation.
//
// The paper standardizes all event representations to the inotify format
// "as this is the most widely used in industries" (Section II summary).
// A StdEvent is the normalized record every DSI produces and every layer
// above consumes; dialects.hpp renders it into the inotify, kqueue,
// FSEvents, or FileSystemWatcher representation on demand, and
// serialize/deserialize give the canonical binary form used on the wire
// and in the reliable event store.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.hpp"
#include "src/common/types.hpp"

namespace fsmon::core {

/// Normalized event kinds (inotify vocabulary).
enum class EventKind : std::uint8_t {
  kCreate = 0,
  kModify = 1,
  kAttrib = 2,     ///< Permission / attribute / xattr change.
  kClose = 3,      ///< IN_CLOSE (write or nowrite).
  kOpen = 4,
  kDelete = 5,
  kMovedFrom = 6,  ///< Rename: source half.
  kMovedTo = 7,    ///< Rename: destination half.
};

/// "CREATE", "MODIFY", ... (the names FSMonitor prints, Table II).
std::string_view to_string(EventKind kind);
std::optional<EventKind> parse_event_kind(std::string_view text);

/// Path sentinel emitted by Algorithm 1 when both the target and its
/// parent directory are gone before resolution.
inline constexpr std::string_view kParentDirectoryRemoved = "ParentDirectoryRemoved";

struct StdEvent {
  common::EventId id = common::kNoEventId;  ///< Assigned by the interface layer.
  EventKind kind = EventKind::kCreate;
  bool is_dir = false;
  std::string watch_root;  ///< Monitored root, e.g. "/mnt/lustre".
  std::string path;        ///< Path relative to watch_root, e.g. "/hello.txt".
  /// For rename pairs: cookie linking MOVED_FROM to its MOVED_TO.
  std::uint64_t cookie = 0;
  common::TimePoint timestamp{};
  std::string source;  ///< Producing DSI, e.g. "inotify" or "lustre:MDT2".

  /// Full path (watch_root + path).
  std::string full_path() const;

  friend bool operator==(const StdEvent&, const StdEvent&) = default;
};

/// The Table II rendering: "<watch_root> <KIND>[,ISDIR] <path>".
std::string to_inotify_line(const StdEvent& event);

/// Canonical binary serialization (little-endian, length-prefixed
/// strings). Stable across platforms; CRC protection is applied by the
/// transport / store framing, not here.
void serialize_event(const StdEvent& event, std::vector<std::byte>& out);
std::vector<std::byte> serialize_event(const StdEvent& event);

/// Deserialize one event from `in`; returns the event and bytes consumed.
common::Result<std::pair<StdEvent, std::size_t>> deserialize_event(
    std::span<const std::byte> in);

}  // namespace fsmon::core
