// FSMonitor's standard, file-system-independent event representation.
//
// The paper standardizes all event representations to the inotify format
// "as this is the most widely used in industries" (Section II summary).
// A StdEvent is the normalized record every DSI produces and every layer
// above consumes; dialects.hpp renders it into the inotify, kqueue,
// FSEvents, or FileSystemWatcher representation on demand, and
// serialize/deserialize give the canonical binary form used on the wire
// and in the reliable event store.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.hpp"
#include "src/common/types.hpp"

namespace fsmon::core {

/// Normalized event kinds (inotify vocabulary).
enum class EventKind : std::uint8_t {
  kCreate = 0,
  kModify = 1,
  kAttrib = 2,     ///< Permission / attribute / xattr change.
  kClose = 3,      ///< IN_CLOSE (write or nowrite).
  kOpen = 4,
  kDelete = 5,
  kMovedFrom = 6,  ///< Rename: source half.
  kMovedTo = 7,    ///< Rename: destination half.
};

/// Number of EventKind values — the width of a per-kind bitmask.
inline constexpr std::size_t kEventKindCount = 8;

/// "CREATE", "MODIFY", ... (the names FSMonitor prints, Table II).
std::string_view to_string(EventKind kind);
std::optional<EventKind> parse_event_kind(std::string_view text);

/// Path sentinel emitted by Algorithm 1 when both the target and its
/// parent directory are gone before resolution.
inline constexpr std::string_view kParentDirectoryRemoved = "ParentDirectoryRemoved";

/// Path sentinel for a capture-gap marker: the backend's kernel queue
/// overflowed and events were lost at the source (inotify IN_Q_OVERFLOW
/// and kin). The marker's cookie carries the backend's overflow ordinal;
/// consumers needing completeness must rescan the subtree under
/// watch_root. Like kParentDirectoryRemoved, the marker names no real
/// location, so has_path() is false and index layers skip it.
inline constexpr std::string_view kEventQueueOverflow = "EventQueueOverflow";

struct StdEvent {
  common::EventId id = common::kNoEventId;  ///< Assigned by the interface layer.
  EventKind kind = EventKind::kCreate;
  bool is_dir = false;
  std::string watch_root;  ///< Monitored root, e.g. "/mnt/lustre".
  std::string path;        ///< Path relative to watch_root, e.g. "/hello.txt".
  /// For rename pairs: cookie linking MOVED_FROM to its MOVED_TO.
  std::uint64_t cookie = 0;
  common::TimePoint timestamp{};
  std::string source;  ///< Producing DSI, e.g. "inotify" or "lustre:MDT2".

  /// Full path (watch_root + path).
  std::string full_path() const;

  /// Rename-half accessors. A RENME changelog record is surfaced as a
  /// MOVED_FROM / MOVED_TO pair travelling in one batch; the two halves
  /// carry the same source and the same nonzero cookie, and nothing
  /// else links them. Consumers that fold renames (the namespace index)
  /// pair halves on rename_key() instead of re-deriving the convention.
  bool is_rename_from() const { return kind == EventKind::kMovedFrom; }
  bool is_rename_to() const { return kind == EventKind::kMovedTo; }
  bool is_rename_half() const { return is_rename_from() || is_rename_to(); }
  /// (source, cookie) — identifies the RENME record both halves came
  /// from. Only meaningful when is_rename_half().
  std::pair<std::string_view, std::uint64_t> rename_key() const {
    return {source, cookie};
  }

  /// True when `path` names a real location: nonempty and not one of
  /// the sentinels (Algorithm 1's "ParentDirectoryRemoved", the
  /// "EventQueueOverflow" gap marker). Sentinel-carrying events cannot
  /// be attributed to a node.
  bool has_path() const {
    return !path.empty() && path != kParentDirectoryRemoved &&
           path != kEventQueueOverflow;
  }

  /// Parent directory of `path` ("/a/b" -> "/a", "/a" -> "/"); "/" for
  /// sentinel paths. The index layers key per-directory state on this.
  std::string parent_path() const;
  /// Final component of `path` ("/a/b" -> "b"); "" for sentinel paths.
  std::string base_name() const;

  friend bool operator==(const StdEvent&, const StdEvent&) = default;
};

/// The Table II rendering: "<watch_root> <KIND>[,ISDIR] <path>".
std::string to_inotify_line(const StdEvent& event);

/// Canonical binary serialization (little-endian, length-prefixed
/// strings). Stable across platforms; CRC protection is applied by the
/// transport / store framing, not here.
void serialize_event(const StdEvent& event, std::vector<std::byte>& out);
std::vector<std::byte> serialize_event(const StdEvent& event);

/// Deserialize one event from `in`; returns the event and bytes consumed.
common::Result<std::pair<StdEvent, std::size_t>> deserialize_event(
    std::span<const std::byte> in);

/// Process-wide codec invocation totals (relaxed atomics). Tests use the
/// delta across a pipeline run to prove each event is serialized exactly
/// once end-to-end (the batched path's core invariant).
struct CodecCounters {
  std::uint64_t serialize_calls = 0;
  std::uint64_t deserialize_calls = 0;
};
CodecCounters codec_counters();

/// A batch of events moved as one wire frame through the pipeline
/// (collector -> aggregator -> consumers / store). Batching keeps the
/// per-event cost of framing, queue hops, and fsyncs off the hot path.
struct EventBatch {
  std::vector<StdEvent> events;

  std::size_t size() const { return events.size(); }
  bool empty() const { return events.empty(); }

  friend bool operator==(const EventBatch&, const EventBatch&) = default;
};

/// Batch wire format (little-endian):
///
///   u32 magic "FBT1" | u32 count | count x { u32 len | event bytes } | u32 crc
///
/// The CRC-32 trailer covers every preceding byte. Each embedded event
/// uses the canonical per-event serialization, so the 8-byte event id is
/// the first field of every event record — patch_batch_ids exploits that
/// to renumber an already-encoded batch in place without re-serializing.
inline constexpr std::uint32_t kBatchMagic = 0x31544246;  // "FBT1"

void encode_batch(const EventBatch& batch, std::vector<std::byte>& out);
std::vector<std::byte> encode_batch(const EventBatch& batch);

/// Decode a whole batch frame; kCorrupt on bad magic, truncation, CRC
/// mismatch, or a malformed embedded event. An empty batch is valid.
common::Result<EventBatch> decode_batch(std::span<const std::byte> in);

/// Structural view of an encoded batch frame: the byte range of each
/// embedded event record, without decoding any event. The aggregator's
/// hot path runs on views so it never re-materializes StdEvents.
struct EventBatchView {
  std::uint32_t count = 0;
  /// (offset, length) of each embedded event's bytes within the frame.
  std::vector<std::pair<std::size_t, std::size_t>> events;
};

/// Validate and index a batch frame. With `verify_crc` false only the
/// structure is checked (for buffers whose CRC was already verified).
common::Result<EventBatchView> view_batch(std::span<const std::byte> frame,
                                          bool verify_crc = true);

/// Renumber an encoded batch in place: event i gets id `first_id + i`,
/// and the CRC trailer is recomputed. The frame's CRC must have been
/// verified beforehand (structure is re-checked; payloads are trusted).
/// Returns the number of events patched.
common::Result<std::size_t> patch_batch_ids(std::span<std::byte> frame,
                                            common::EventId first_id);

/// Read the timestamp of a canonically serialized event without decoding
/// it (fixed offset: id u64 + kind u8 + is_dir u8 + cookie u64 precede it).
common::Result<common::TimePoint> peek_event_timestamp(
    std::span<const std::byte> event_bytes);

/// Read the rename/changelog cookie of a serialized event without decoding
/// it (fixed offset 10: id u64 + kind u8 + is_dir u8 precede it). The Lustre
/// processor stores the originating changelog record index here, so
/// (source, cookie) identifies a record across replays — the key the
/// aggregator dedupes on.
common::Result<std::uint64_t> peek_event_cookie(
    std::span<const std::byte> event_bytes);

/// Read the source string ("lustre:MDT0", ...) of a serialized event without
/// materializing a StdEvent. Walks the two length-prefixed strings that
/// precede it; still far cheaper than a full decode.
common::Result<std::string_view> peek_event_source(
    std::span<const std::byte> event_bytes);

/// Read the kind of a serialized event without decoding it (fixed offset
/// 8: the id u64 precedes it). Lets batch scanners separate rename halves
/// from plain events without materializing StdEvents; the kind byte was
/// always encoded but never surfaced.
common::Result<EventKind> peek_event_kind(std::span<const std::byte> event_bytes);

/// Read the is_dir flag of a serialized event (fixed offset 9).
common::Result<bool> peek_event_is_dir(std::span<const std::byte> event_bytes);

/// Re-frame a subset of an already-encoded batch: `kept` lists (offset,
/// length) event byte ranges within `frame` (as produced by view_batch),
/// and the result is a fresh valid batch frame containing exactly those
/// events, bytes copied verbatim. Used by the aggregator to trim replayed
/// duplicates out of a frame without re-serializing the survivors.
std::vector<std::byte> rebuild_batch(
    std::span<const std::byte> frame,
    const std::vector<std::pair<std::size_t, std::size_t>>& kept);

}  // namespace fsmon::core
