#include "src/core/interface.hpp"

#include "src/common/logging.hpp"

namespace fsmon::core {

using common::ErrorCode;
using common::Result;
using common::Status;

InterfaceLayer::InterfaceLayer(InterfaceOptions options) : options_(std::move(options)) {
  if (options_.store) {
    store_ = std::make_unique<eventstore::EventStore>(*options_.store);
    // Continue numbering after anything recovered from disk.
    next_event_id_ = store_->last_id() + 1;
  }
}

SubscriptionId InterfaceLayer::subscribe(FilterRule rule, EventSink sink) {
  std::lock_guard lock(mu_);
  const SubscriptionId id = next_subscription_++;
  subscriptions_.emplace(id, Subscription{std::move(rule), std::move(sink)});
  return id;
}

void InterfaceLayer::unsubscribe(SubscriptionId id) {
  std::lock_guard lock(mu_);
  subscriptions_.erase(id);
}

std::size_t InterfaceLayer::subscriber_count() const {
  std::lock_guard lock(mu_);
  return subscriptions_.size();
}

void InterfaceLayer::ingest(std::vector<StdEvent> batch) {
  if (batch.empty()) return;
  // Snapshot subscriptions so sinks run without holding the lock.
  std::vector<Subscription> subs;
  {
    std::lock_guard lock(mu_);
    for (auto& event : batch) event.id = next_event_id_++;
    ingested_ += batch.size();
    subs.reserve(subscriptions_.size());
    for (const auto& [id, sub] : subscriptions_) subs.push_back(sub);
  }
  if (store_ != nullptr) {
    std::vector<std::byte> buffer;
    for (const auto& event : batch) {
      buffer.clear();
      serialize_event(event, buffer);
      if (auto s = store_->append(event.id, buffer); !s.is_ok()) {
        FSMON_ERROR("interface", "event store append failed: ", s.to_string());
      }
    }
  }
  std::vector<StdEvent> matched;
  for (const auto& sub : subs) {
    matched.clear();
    for (const auto& event : batch) {
      if (sub.rule.matches(event)) matched.push_back(event);
    }
    for (std::size_t i = 0; i < matched.size(); i += options_.delivery_batch) {
      const auto end = std::min(matched.size(), i + options_.delivery_batch);
      sub.sink(std::vector<StdEvent>(matched.begin() + static_cast<std::ptrdiff_t>(i),
                                     matched.begin() + static_cast<std::ptrdiff_t>(end)));
    }
  }
}

Result<std::vector<StdEvent>> InterfaceLayer::events_since(common::EventId after_id,
                                                           std::size_t max_events) const {
  if (store_ == nullptr)
    return Status(ErrorCode::kUnavailable, "no event store configured");
  std::vector<StdEvent> out;
  for (const auto& stored : store_->events_since(after_id, max_events)) {
    auto decoded = deserialize_event(stored.payload);
    if (!decoded) return decoded.status();
    out.push_back(std::move(decoded.value().first));
  }
  return out;
}

void InterfaceLayer::acknowledge(common::EventId up_to_id) {
  if (store_ != nullptr) store_->mark_reported(up_to_id);
}

std::size_t InterfaceLayer::purge() {
  return store_ == nullptr ? 0 : store_->purge_reported();
}

common::EventId InterfaceLayer::last_event_id() const {
  std::lock_guard lock(mu_);
  return next_event_id_ - 1;
}

std::uint64_t InterfaceLayer::ingested() const {
  std::lock_guard lock(mu_);
  return ingested_;
}

}  // namespace fsmon::core
