#include "src/core/dialects.hpp"

namespace fsmon::core {

std::string_view to_string(Dialect dialect) {
  switch (dialect) {
    case Dialect::kInotify: return "inotify";
    case Dialect::kKqueue: return "kqueue";
    case Dialect::kFsEvents: return "fsevents";
    case Dialect::kFileSystemWatcher: return "filesystemwatcher";
  }
  return "?";
}

std::optional<Dialect> parse_dialect(std::string_view name) {
  static constexpr Dialect kAll[] = {Dialect::kInotify, Dialect::kKqueue, Dialect::kFsEvents,
                                     Dialect::kFileSystemWatcher};
  for (Dialect d : kAll) {
    if (to_string(d) == name) return d;
  }
  return std::nullopt;
}

namespace {

std::vector<std::string> inotify_tokens(const StdEvent& event) {
  std::vector<std::string> tokens;
  switch (event.kind) {
    case EventKind::kCreate: tokens = {"IN_CREATE"}; break;
    case EventKind::kModify: tokens = {"IN_MODIFY"}; break;
    case EventKind::kAttrib: tokens = {"IN_ATTRIB"}; break;
    case EventKind::kClose: tokens = {"IN_CLOSE_WRITE"}; break;
    case EventKind::kOpen: tokens = {"IN_OPEN"}; break;
    case EventKind::kDelete: tokens = {"IN_DELETE"}; break;
    case EventKind::kMovedFrom: tokens = {"IN_MOVED_FROM"}; break;
    case EventKind::kMovedTo: tokens = {"IN_MOVED_TO"}; break;
  }
  if (event.is_dir) tokens.push_back("IN_ISDIR");
  return tokens;
}

std::vector<std::string> kqueue_tokens(const StdEvent& event) {
  // kqueue reports per-vnode NOTE_* flags (paper Section II-A: creating
  // and modifying a file raises NOTE_EXTEND / NOTE_WRITE; deletes are
  // NOTE_DELETE; renames NOTE_RENAME).
  switch (event.kind) {
    case EventKind::kCreate: return {"NOTE_WRITE", "NOTE_EXTEND"};  // on the parent dir
    case EventKind::kModify: return {"NOTE_WRITE"};
    case EventKind::kAttrib: return {"NOTE_ATTRIB"};
    case EventKind::kClose: return {"NOTE_CLOSE"};
    case EventKind::kOpen: return {"NOTE_OPEN"};
    case EventKind::kDelete: return {"NOTE_DELETE"};
    case EventKind::kMovedFrom:
    case EventKind::kMovedTo: return {"NOTE_RENAME"};
  }
  return {};
}

std::vector<std::string> fsevents_tokens(const StdEvent& event) {
  std::vector<std::string> tokens;
  switch (event.kind) {
    case EventKind::kCreate: tokens = {"kFSEventStreamEventFlagItemCreated"}; break;
    case EventKind::kModify: tokens = {"kFSEventStreamEventFlagItemModified"}; break;
    case EventKind::kAttrib: tokens = {"kFSEventStreamEventFlagItemChangeOwner"}; break;
    case EventKind::kClose: tokens = {"kFSEventStreamEventFlagItemModified"}; break;
    case EventKind::kOpen: tokens = {};
      break;  // FSEvents does not report opens
    case EventKind::kDelete: tokens = {"kFSEventStreamEventFlagItemRemoved"}; break;
    case EventKind::kMovedFrom:
    case EventKind::kMovedTo: tokens = {"kFSEventStreamEventFlagItemRenamed"}; break;
  }
  if (event.is_dir) {
    tokens.push_back("kFSEventStreamEventFlagItemIsDir");
  } else {
    tokens.push_back("kFSEventStreamEventFlagItemIsFile");
  }
  return tokens;
}

std::vector<std::string> fsw_tokens(const StdEvent& event) {
  // FileSystemWatcher has exactly four event types (Section II-A).
  switch (event.kind) {
    case EventKind::kCreate: return {"Created"};
    case EventKind::kModify:
    case EventKind::kAttrib:
    case EventKind::kClose:
    case EventKind::kOpen: return {"Changed"};
    case EventKind::kDelete: return {"Deleted"};
    case EventKind::kMovedFrom:
    case EventKind::kMovedTo: return {"Renamed"};
  }
  return {};
}

std::string join_tokens(const std::vector<std::string>& tokens, char sep) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i) out.push_back(sep);
    out += tokens[i];
  }
  return out;
}

}  // namespace

std::vector<std::string> native_tokens(Dialect dialect, const StdEvent& event) {
  switch (dialect) {
    case Dialect::kInotify: return inotify_tokens(event);
    case Dialect::kKqueue: return kqueue_tokens(event);
    case Dialect::kFsEvents: return fsevents_tokens(event);
    case Dialect::kFileSystemWatcher: return fsw_tokens(event);
  }
  return {};
}

std::string render(Dialect dialect, const StdEvent& event) {
  switch (dialect) {
    case Dialect::kInotify:
      return to_inotify_line(event);
    case Dialect::kKqueue:
      return event.full_path() + ' ' + join_tokens(native_tokens(dialect, event), '|');
    case Dialect::kFsEvents:
      return event.full_path() + ' ' + join_tokens(native_tokens(dialect, event), ' ');
    case Dialect::kFileSystemWatcher:
      return join_tokens(native_tokens(dialect, event), '|') + ": " + event.full_path();
  }
  return {};
}

}  // namespace fsmon::core
