#include "src/usecases/catalog.hpp"

#include <algorithm>
#include <cctype>

#include "src/common/string_util.hpp"

namespace fsmon::usecases {

namespace {

const std::map<std::string, std::string>& type_map() {
  static const std::map<std::string, std::string> kTypes = {
      {"csv", "tabular"},  {"tsv", "tabular"}, {"h5", "hdf5"},     {"hdf5", "hdf5"},
      {"nc", "netcdf"},    {"txt", "text"},    {"md", "text"},     {"json", "structured"},
      {"xml", "structured"}, {"png", "image"}, {"jpg", "image"},   {"tif", "image"},
      {"dat", "binary"},   {"bin", "binary"},  {"fits", "astronomy"}};
  return kTypes;
}

}  // namespace

std::string MetadataExtractor::infer_type(const std::string& path) const {
  const std::string name = common::base_name(path);
  const auto dot = name.rfind('.');
  if (dot == std::string::npos || dot + 1 == name.size()) return "unknown";
  std::string ext = name.substr(dot + 1);
  std::transform(ext.begin(), ext.end(), ext.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  auto it = type_map().find(ext);
  return it == type_map().end() ? ext : it->second;
}

std::vector<std::string> MetadataExtractor::extract_keywords(const std::string& path) const {
  std::vector<std::string> keywords;
  std::string token;
  auto flush = [&] {
    if (token.size() >= 2) keywords.push_back(token);
    token.clear();
  };
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      token.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      flush();
    }
  }
  flush();
  std::sort(keywords.begin(), keywords.end());
  keywords.erase(std::unique(keywords.begin(), keywords.end()), keywords.end());
  return keywords;
}

CatalogEntry MetadataExtractor::extract(const core::StdEvent& event) {
  ++extractions_;
  CatalogEntry entry;
  entry.path = event.path;
  entry.file_type = infer_type(event.path);
  entry.keywords = extract_keywords(event.path);
  entry.created = event.timestamp;
  entry.modified = event.timestamp;
  return entry;
}

void Catalog::apply(const core::StdEvent& event) {
  ++events_applied_;
  switch (event.kind) {
    case core::EventKind::kCreate: {
      entries_[event.path] = extractor_.extract(event);
      break;
    }
    case core::EventKind::kModify:
    case core::EventKind::kAttrib:
    case core::EventKind::kClose: {
      auto it = entries_.find(event.path);
      if (it == entries_.end()) {
        // Event for a file we never saw created (e.g. catalog attached
        // mid-stream): index it now.
        entries_[event.path] = extractor_.extract(event);
      } else if (event.kind == core::EventKind::kModify) {
        it->second.modified = event.timestamp;
        ++it->second.version;
      }
      break;
    }
    case core::EventKind::kDelete: {
      entries_.erase(event.path);
      break;
    }
    case core::EventKind::kMovedFrom: {
      auto it = entries_.find(event.path);
      if (it != entries_.end()) {
        pending_moves_[event.cookie] = std::move(it->second);
        entries_.erase(it);
      }
      break;
    }
    case core::EventKind::kMovedTo: {
      auto pending = pending_moves_.find(event.cookie);
      if (pending != pending_moves_.end()) {
        CatalogEntry entry = std::move(pending->second);
        pending_moves_.erase(pending);
        entry.path = event.path;
        // Re-extract name-derived metadata; version survives the move.
        entry.file_type = extractor_.infer_type(event.path);
        entry.keywords = extractor_.extract_keywords(event.path);
        entry.modified = event.timestamp;
        entries_[event.path] = std::move(entry);
        ++moves_joined_;
      } else {
        entries_[event.path] = extractor_.extract(event);
      }
      break;
    }
    case core::EventKind::kOpen:
      break;  // opens do not change the catalog
  }
}

std::optional<CatalogEntry> Catalog::lookup(const std::string& path) const {
  auto it = entries_.find(path);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::vector<CatalogEntry> Catalog::search_path(const std::string& glob) const {
  std::vector<CatalogEntry> out;
  for (const auto& [path, entry] : entries_) {
    if (common::glob_match(glob, path)) out.push_back(entry);
  }
  return out;
}

std::vector<CatalogEntry> Catalog::search_keyword(const std::string& keyword) const {
  std::vector<CatalogEntry> out;
  for (const auto& [path, entry] : entries_) {
    if (std::binary_search(entry.keywords.begin(), entry.keywords.end(), keyword))
      out.push_back(entry);
  }
  return out;
}

std::vector<CatalogEntry> Catalog::search_type(const std::string& file_type) const {
  std::vector<CatalogEntry> out;
  for (const auto& [path, entry] : entries_) {
    if (entry.file_type == file_type) out.push_back(entry);
  }
  return out;
}

}  // namespace fsmon::usecases
