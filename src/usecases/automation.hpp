// Research-automation use case (paper Section VI-A).
//
// "We have developed a client to enable Globus Automate flows to be
// initiated in response to data events ... When a data event is captured
// by FSMonitor, our client constructs a JSON document of metadata, such
// as the file type, size, owner, and location and transmits the data to
// a pre-defined Globus Automate flow. The flow is then reliably
// executed."
//
// This module implements that client against the FSMonitor event stream:
// rules bind event filters to flows; a flow is a pipeline of service
// invocations (transfer, catalog, execution, ...) executed reliably with
// bounded retries. Service backends are pluggable handlers — the example
// wires in-process stand-ins for the remote web services.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.hpp"
#include "src/core/filter.hpp"

namespace fsmon::usecases {

/// One step of a flow: an invocation of a named remote service.
struct FlowStep {
  std::string service;  ///< e.g. "transfer", "catalog", "funcx"
  std::string action;   ///< service-specific action string
};

struct Flow {
  std::string name;
  std::vector<FlowStep> steps;
};

/// Record of one flow execution.
struct FlowExecution {
  std::string flow_name;
  std::string trigger_path;
  std::size_t steps_completed = 0;
  std::size_t retries = 0;
  bool succeeded = false;
};

/// Build the metadata JSON document the client transmits with a flow
/// (file type, size placeholder, location, event kind, timestamp).
std::string event_metadata_json(const core::StdEvent& event);

/// Executes flows step-by-step with bounded retries per step.
class FlowRunner {
 public:
  /// A handler performs one step; transient failures return non-OK and
  /// are retried up to `max_retries` times.
  using ServiceHandler =
      std::function<common::Status(const FlowStep&, const core::StdEvent&)>;

  explicit FlowRunner(std::size_t max_retries = 3) : max_retries_(max_retries) {}

  void register_service(std::string name, ServiceHandler handler);
  bool has_service(const std::string& name) const;

  /// Run every step in order; a step that keeps failing aborts the flow.
  FlowExecution execute(const Flow& flow, const core::StdEvent& trigger);

 private:
  std::size_t max_retries_;
  std::map<std::string, ServiceHandler> services_;
};

/// Binds event filters to flows and dispatches incoming events.
class AutomationClient {
 public:
  explicit AutomationClient(FlowRunner& runner) : runner_(runner) {}

  void add_rule(core::FilterRule filter, Flow flow);
  std::size_t rule_count() const { return rules_.size(); }

  /// Feed one event; every matching rule's flow executes. Returns the
  /// executions started by this event.
  std::vector<FlowExecution> on_event(const core::StdEvent& event);

  std::uint64_t events_seen() const { return events_seen_; }
  std::uint64_t flows_started() const { return flows_started_; }
  std::uint64_t flows_failed() const { return flows_failed_; }
  const std::vector<FlowExecution>& history() const { return history_; }

 private:
  struct Rule {
    core::FilterRule filter;
    Flow flow;
  };

  FlowRunner& runner_;
  std::vector<Rule> rules_;
  std::uint64_t events_seen_ = 0;
  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_failed_ = 0;
  std::vector<FlowExecution> history_;
};

}  // namespace fsmon::usecases
