#include "src/usecases/automation.hpp"

#include <sstream>

#include "src/common/string_util.hpp"

namespace fsmon::usecases {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string file_type_of(const std::string& path) {
  const std::string name = common::base_name(path);
  const auto dot = name.rfind('.');
  if (dot == std::string::npos || dot + 1 == name.size()) return "unknown";
  return name.substr(dot + 1);
}

}  // namespace

std::string event_metadata_json(const core::StdEvent& event) {
  std::ostringstream os;
  os << "{"
     << "\"event\":\"" << to_string(event.kind) << "\","
     << "\"location\":\"" << json_escape(event.full_path()) << "\","
     << "\"file_type\":\"" << json_escape(file_type_of(event.path)) << "\","
     << "\"is_dir\":" << (event.is_dir ? "true" : "false") << ","
     << "\"event_id\":" << event.id << ","
     << "\"timestamp_ns\":" << event.timestamp.time_since_epoch().count() << ","
     << "\"source\":\"" << json_escape(event.source) << "\""
     << "}";
  return os.str();
}

void FlowRunner::register_service(std::string name, ServiceHandler handler) {
  services_[std::move(name)] = std::move(handler);
}

bool FlowRunner::has_service(const std::string& name) const {
  return services_.count(name) != 0;
}

FlowExecution FlowRunner::execute(const Flow& flow, const core::StdEvent& trigger) {
  FlowExecution execution;
  execution.flow_name = flow.name;
  execution.trigger_path = trigger.full_path();
  for (const auto& step : flow.steps) {
    auto it = services_.find(step.service);
    if (it == services_.end()) return execution;  // unknown service aborts
    bool step_ok = false;
    for (std::size_t attempt = 0; attempt <= max_retries_; ++attempt) {
      if (attempt > 0) ++execution.retries;
      if (it->second(step, trigger).is_ok()) {
        step_ok = true;
        break;
      }
    }
    if (!step_ok) return execution;  // exhausted retries
    ++execution.steps_completed;
  }
  execution.succeeded = execution.steps_completed == flow.steps.size();
  return execution;
}

void AutomationClient::add_rule(core::FilterRule filter, Flow flow) {
  rules_.push_back(Rule{std::move(filter), std::move(flow)});
}

std::vector<FlowExecution> AutomationClient::on_event(const core::StdEvent& event) {
  ++events_seen_;
  std::vector<FlowExecution> executions;
  for (const auto& rule : rules_) {
    if (!rule.filter.matches(event)) continue;
    ++flows_started_;
    auto execution = runner_.execute(rule.flow, event);
    if (!execution.succeeded) ++flows_failed_;
    history_.push_back(execution);
    executions.push_back(std::move(execution));
  }
  return executions;
}

}  // namespace fsmon::usecases
