// Responsive-cataloging use case (paper Section VI-B).
//
// "Combining FSMonitor with a metadata extraction tool, such as Skluma,
// can enable the dynamic cataloging of large research data ... we can
// capture data movement and deletion events to dynamically modify a
// Globus Search index and maintain a useful, up-to-date catalog."
//
// This module maintains a searchable catalog driven purely by the event
// stream — no crawling. A pluggable MetadataExtractor infers file types
// and keywords (a Skluma stand-in); the Catalog applies CREATE/MODIFY/
// MOVE/DELETE events incrementally and serves search queries.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/event.hpp"

namespace fsmon::usecases {

struct CatalogEntry {
  std::string path;
  std::string file_type;              ///< Inferred type ("csv", "hdf5", ...).
  std::vector<std::string> keywords;  ///< Extracted from the name/path.
  common::TimePoint created;
  common::TimePoint modified;
  std::uint64_t version = 1;  ///< Bumped on every MODIFY.
};

/// Skluma-like extraction: infer a type from the extension and derive
/// keywords by splitting the path into alphanumeric tokens.
class MetadataExtractor {
 public:
  std::string infer_type(const std::string& path) const;
  std::vector<std::string> extract_keywords(const std::string& path) const;
  std::uint64_t extractions() const { return extractions_; }

  CatalogEntry extract(const core::StdEvent& event);

 private:
  mutable std::uint64_t extractions_ = 0;
};

class Catalog {
 public:
  explicit Catalog(MetadataExtractor& extractor) : extractor_(extractor) {}

  /// Apply one standardized event to the index. MOVED_FROM/MOVED_TO
  /// pairs are joined on the event cookie so a rename re-keys the entry
  /// without losing its metadata/version.
  void apply(const core::StdEvent& event);

  std::optional<CatalogEntry> lookup(const std::string& path) const;

  /// Entries whose path matches a glob pattern.
  std::vector<CatalogEntry> search_path(const std::string& glob) const;

  /// Entries carrying a keyword (exact token match).
  std::vector<CatalogEntry> search_keyword(const std::string& keyword) const;

  /// Entries of a given inferred type.
  std::vector<CatalogEntry> search_type(const std::string& file_type) const;

  std::size_t size() const { return entries_.size(); }
  std::uint64_t events_applied() const { return events_applied_; }
  std::uint64_t moves_joined() const { return moves_joined_; }

 private:
  MetadataExtractor& extractor_;
  std::map<std::string, CatalogEntry> entries_;  // keyed by path
  /// Pending MOVED_FROM halves keyed by cookie, holding the evicted
  /// entry until the MOVED_TO arrives.
  std::map<std::uint64_t, CatalogEntry> pending_moves_;
  std::uint64_t events_applied_ = 0;
  std::uint64_t moves_joined_ = 0;
};

}  // namespace fsmon::usecases
