#include "src/nsindex/nsindex.hpp"

#include <algorithm>
#include <sstream>

#include "src/common/string_util.hpp"

namespace fsmon::nsindex {

namespace {

using common::ErrorCode;
using common::Result;
using common::Status;
using core::EventKind;
using core::StdEvent;

// Canonical little-endian state image framing (the snapshot layer adds
// the file magic/CRC around this).
constexpr std::uint32_t kStateMagic = 0x49534e46;  // "FNSI"
constexpr std::uint32_t kStateVersion = 1;

void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

void put_string(std::vector<std::byte>& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  const auto* bytes = reinterpret_cast<const std::byte*>(s.data());
  out.insert(out.end(), bytes, bytes + s.size());
}

struct Reader {
  std::span<const std::byte> in;
  std::size_t offset = 0;
  bool failed = false;

  bool need(std::size_t n) {
    if (failed || in.size() - offset < n) {
      failed = true;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(in[offset++]);
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[offset + i]) << (8 * i);
    offset += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[offset + i]) << (8 * i);
    offset += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    if (len > (1u << 28) || !need(len)) {
      failed = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(in.data() + offset), len);
    offset += len;
    return s;
  }
};

}  // namespace

NamespaceIndex::NamespaceIndex(NamespaceIndexOptions options)
    : options_(options), cursor_(1) {
  if (options_.metrics != nullptr) {
    auto& m = *options_.metrics;
    applied_counter_ = &m.counter("nsidx.applied_events", {},
                                  "events folded into the namespace index");
    duplicates_counter_ = &m.counter("nsidx.duplicate_events", {},
                                     "events refused as already applied");
    renames_counter_ = &m.counter("nsidx.renames_applied", {},
                                  "MOVED_FROM/MOVED_TO pairs folded as moves");
    subtree_moves_counter_ =
        &m.counter("nsidx.subtree_moves", {},
                   "nodes relocated because an ancestor directory was renamed");
    orphan_renames_counter_ =
        &m.counter("nsidx.rename_orphans", {},
                   "MOVED_TO halves applied without a usable MOVED_FROM");
    pending_evictions_counter_ =
        &m.counter("nsidx.pending_rename_evictions", {},
                   "parked MOVED_FROM halves evicted by the pending-rename cap");
    unresolved_counter_ =
        &m.counter("nsidx.unresolved_events", {},
                   "events skipped because their path was unresolvable");
    queries_counter_ = &m.counter("nsidx.queries", {}, "index queries served");
    nodes_gauge_ = &m.gauge("nsidx.nodes", {}, "nodes in the materialized namespace");
    dirs_gauge_ = &m.gauge("nsidx.dir_nodes", {}, "directory nodes in the namespace");
    undo_gauge_ = &m.gauge("nsidx.undo_entries", {}, "retained as-of undo records");
    pending_gauge_ = &m.gauge("nsidx.pending_renames", {},
                              "MOVED_FROM halves parked awaiting their MOVED_TO");
  }
}

NamespaceIndex::ApplyResult NamespaceIndex::apply(std::size_t shard,
                                                  const StdEvent& event) {
  std::lock_guard lock(mu_);
  cursor_.ensure(shard + 1);
  common::EventId& slot = cursor_.last_ids[shard];
  if (event.id <= slot) {
    if (duplicates_counter_ != nullptr) duplicates_counter_->inc();
    return ApplyResult::kDuplicate;
  }
  if (event.id != slot + 1) return ApplyResult::kOutOfOrder;
  slot = event.id;
  ++applied_seq_;
  if (options_.undo_capacity == 0) as_of_floor_ = applied_seq_;
  apply_locked(event);
  if (applied_counter_ != nullptr) applied_counter_->inc();
  update_gauges_locked();
  return ApplyResult::kApplied;
}

void NamespaceIndex::apply_locked(const StdEvent& event) {
  switch (event.kind) {
    case EventKind::kCreate:
      do_create(event);
      break;
    case EventKind::kModify:
    case EventKind::kAttrib:
    case EventKind::kClose:
    case EventKind::kOpen:
      do_touch(event);
      break;
    case EventKind::kDelete:
      do_delete(event);
      break;
    case EventKind::kMovedFrom:
      do_moved_from(event);
      break;
    case EventKind::kMovedTo:
      do_moved_to(event);
      break;
  }
}

void NamespaceIndex::do_create(const StdEvent& event) {
  if (!event.has_path()) {
    if (unresolved_counter_ != nullptr) unresolved_counter_->inc();
    return;
  }
  const std::string path = common::normalize_path(event.path);
  ensure_ancestors_locked(path);
  bump_activity_locked(common::parent_path(path));
  auto it = nodes_.find(path);
  if (it != nodes_.end() && it->second.is_dir != event.is_dir) {
    // Kind conflict (a delete was missed): the old node is gone.
    remove_tree_locked(path);
    it = nodes_.end();
  }
  if (it == nodes_.end()) {
    Node node;
    node.node_id = next_node_id_++;
    node.is_dir = event.is_dir;
    node.create_event = event.id;
    node.last_event = event.id;
    node.last_kind = event.kind;
    node.last_time = event.timestamp;
    node.events = 1;
    put_node_locked(path, std::move(node));
    return;
  }
  // Create over a live same-kind node: an implicit node gains its real
  // create event; an explicit one just records the activity.
  Node node = it->second;
  if (node.implicit) {
    node.implicit = false;
    node.create_event = event.id;
  }
  node.last_event = event.id;
  node.last_kind = event.kind;
  node.last_time = event.timestamp;
  ++node.events;
  put_node_locked(path, std::move(node));
}

void NamespaceIndex::do_touch(const StdEvent& event) {
  if (!event.has_path()) {
    if (unresolved_counter_ != nullptr) unresolved_counter_->inc();
    return;
  }
  const std::string path = common::normalize_path(event.path);
  ensure_ancestors_locked(path);
  bump_activity_locked(common::parent_path(path));
  auto it = nodes_.find(path);
  Node node;
  if (it == nodes_.end()) {
    // Monitoring joined mid-life: the node exists but its create was
    // never observed.
    node.node_id = next_node_id_++;
    node.implicit = true;
  } else {
    node = it->second;
  }
  node.is_dir = node.is_dir || event.is_dir;
  node.last_event = event.id;
  node.last_kind = event.kind;
  node.last_time = event.timestamp;
  ++node.events;
  put_node_locked(path, std::move(node));
}

void NamespaceIndex::do_delete(const StdEvent& event) {
  if (!event.has_path()) {
    if (unresolved_counter_ != nullptr) unresolved_counter_->inc();
    return;
  }
  const std::string path = common::normalize_path(event.path);
  bump_activity_locked(common::parent_path(path));
  if (nodes_.find(path) != nodes_.end()) remove_tree_locked(path);
}

void NamespaceIndex::do_moved_from(const StdEvent& event) {
  PendingRename pending;
  pending.is_dir = event.is_dir;
  pending.event_id = event.id;
  if (event.has_path()) {
    pending.from_path = common::normalize_path(event.path);
    bump_activity_locked(common::parent_path(pending.from_path));
  } else if (unresolved_counter_ != nullptr) {
    unresolved_counter_->inc();
  }
  pending.admitted = applied_seq_;
  pending_renames_[{event.source, event.cookie}] = std::move(pending);
  // Bounded: a half whose partner never arrives must not grow the map
  // (and every snapshot) forever. Oldest apply step goes first.
  if (options_.pending_rename_cap > 0) {
    while (pending_renames_.size() > options_.pending_rename_cap) {
      auto victim = std::min_element(
          pending_renames_.begin(), pending_renames_.end(),
          [](const auto& a, const auto& b) {
            return a.second.admitted < b.second.admitted;
          });
      pending_renames_.erase(victim);
      if (pending_evictions_counter_ != nullptr) pending_evictions_counter_->inc();
    }
  }
}

void NamespaceIndex::do_moved_to(const StdEvent& event) {
  std::optional<PendingRename> pending;
  auto pit = pending_renames_.find({event.source, event.cookie});
  if (pit != pending_renames_.end()) {
    pending = std::move(pit->second);
    pending_renames_.erase(pit);
  }
  if (!event.has_path()) {
    // The destination is unresolvable: the source node (if known) is no
    // longer where it was, and we cannot say where it went.
    if (unresolved_counter_ != nullptr) unresolved_counter_->inc();
    if (pending && !pending->from_path.empty() &&
        nodes_.find(pending->from_path) != nodes_.end())
      remove_tree_locked(pending->from_path);
    return;
  }
  const std::string to = common::normalize_path(event.path);
  bump_activity_locked(common::parent_path(to));
  const bool have_source = pending && !pending->from_path.empty() &&
                           nodes_.find(pending->from_path) != nodes_.end();
  if (!have_source) {
    // Orphan half: fold as a create at the destination so the namespace
    // still converges on the truth.
    if (orphan_renames_counter_ != nullptr) orphan_renames_counter_->inc();
    StdEvent create = event;
    create.kind = EventKind::kCreate;
    // do_create re-bumps the destination parent's activity; the bump
    // above already accounted this event, so compensate afterwards.
    auto it = dir_activity_.find(common::parent_path(to));
    do_create(create);
    if (it != dir_activity_.end()) --it->second;
    return;
  }
  const std::string from = pending->from_path;
  if (from == to) {
    StdEvent touch = event;
    touch.kind = EventKind::kAttrib;
    auto it = dir_activity_.find(common::parent_path(to));
    do_touch(touch);
    if (it != dir_activity_.end()) --it->second;
    return;
  }
  if (renames_counter_ != nullptr) renames_counter_->inc();
  move_tree_locked(from, to, event);
}

void NamespaceIndex::move_tree_locked(const std::string& from, const std::string& to,
                                      const StdEvent& event) {
  // Overwriting rename: whatever lived at the destination is gone.
  if (nodes_.find(to) != nodes_.end()) remove_tree_locked(to);
  ensure_ancestors_locked(to);
  auto it = nodes_.find(from);
  if (it == nodes_.end()) return;
  Node node = it->second;
  if (node.is_dir) {
    // Relocate every descendant, recording the implicit hop each one
    // takes when an ancestor is renamed. Keys are collected first: the
    // per-node erase/insert would invalidate a live range iterator.
    std::vector<std::string> keys;
    const std::string prefix = from + "/";
    for (auto dit = nodes_.lower_bound(prefix);
         dit != nodes_.end() && common::starts_with(dit->first, prefix); ++dit)
      keys.push_back(dit->first);
    for (const std::string& old_key : keys) {
      Node child = nodes_.find(old_key)->second;
      const std::string new_key = to + old_key.substr(from.size());
      append_hop_locked(child, old_key, event);
      erase_node_locked(old_key);
      put_node_locked(new_key, std::move(child));
      if (subtree_moves_counter_ != nullptr) subtree_moves_counter_->inc();
    }
    // The directory's activity history moves with it.
    std::vector<std::pair<std::string, std::uint64_t>> moved_activity;
    for (auto ait = dir_activity_.lower_bound(prefix);
         ait != dir_activity_.end() && common::starts_with(ait->first, prefix);) {
      moved_activity.emplace_back(to + ait->first.substr(from.size()), ait->second);
      ait = dir_activity_.erase(ait);
    }
    if (auto self = dir_activity_.find(from); self != dir_activity_.end()) {
      moved_activity.emplace_back(to, self->second);
      dir_activity_.erase(self);
    }
    for (auto& [key, count] : moved_activity) dir_activity_[key] += count;
  }
  append_hop_locked(node, from, event);
  node.last_event = event.id;
  node.last_kind = EventKind::kMovedTo;
  node.last_time = event.timestamp;
  ++node.events;
  erase_node_locked(from);
  put_node_locked(to, std::move(node));
}

void NamespaceIndex::remove_tree_locked(const std::string& path) {
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return;
  if (it->second.is_dir) {
    std::vector<std::string> keys;
    const std::string prefix = path + "/";
    for (auto dit = nodes_.lower_bound(prefix);
         dit != nodes_.end() && common::starts_with(dit->first, prefix); ++dit)
      keys.push_back(dit->first);
    for (const std::string& key : keys) erase_node_locked(key);
    // Activity describes the current namespace: a removed directory's
    // history goes with it (a later re-creation starts fresh).
    for (auto ait = dir_activity_.lower_bound(prefix);
         ait != dir_activity_.end() && common::starts_with(ait->first, prefix);)
      ait = dir_activity_.erase(ait);
    dir_activity_.erase(path);
  }
  erase_node_locked(path);
}

void NamespaceIndex::ensure_ancestors_locked(const std::string& path) {
  // Collect missing ancestors bottom-up, materialize top-down so node
  // ids are assigned outermost-first (deterministic across folds).
  std::vector<std::string> missing;
  for (std::string dir = common::parent_path(path); dir != "/";
       dir = common::parent_path(dir)) {
    auto it = nodes_.find(dir);
    if (it != nodes_.end()) {
      if (!it->second.is_dir) {
        // A file where a directory must be: the file is stale state.
        Node promoted = it->second;
        promoted.is_dir = true;
        promoted.implicit = true;
        ++dir_nodes_;  // erase+put below rebalances; adjust via put path
        log_undo_locked(dir);
        --dir_nodes_;  // put_node_locked accounts; neutralize manual bump
        nodes_.erase(dir);
        path_by_id_.erase(promoted.node_id);
        put_node_locked(dir, std::move(promoted));
      }
      break;
    }
    missing.push_back(dir);
  }
  for (auto rit = missing.rbegin(); rit != missing.rend(); ++rit) {
    Node node;
    node.node_id = next_node_id_++;
    node.is_dir = true;
    node.implicit = true;
    put_node_locked(*rit, std::move(node));
  }
}

void NamespaceIndex::bump_activity_locked(const std::string& dir) {
  ++dir_activity_[dir];
}

void NamespaceIndex::put_node_locked(const std::string& path, Node node) {
  log_undo_locked(path);
  auto it = nodes_.find(path);
  if (it != nodes_.end()) {
    if (it->second.is_dir) --dir_nodes_;
    if (it->second.node_id != node.node_id) path_by_id_.erase(it->second.node_id);
  }
  if (node.is_dir) ++dir_nodes_;
  path_by_id_[node.node_id] = path;
  nodes_[path] = std::move(node);
}

void NamespaceIndex::erase_node_locked(const std::string& path) {
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return;
  log_undo_locked(path);
  if (it->second.is_dir) --dir_nodes_;
  path_by_id_.erase(it->second.node_id);
  nodes_.erase(it);
}

void NamespaceIndex::log_undo_locked(const std::string& path) {
  if (options_.undo_capacity == 0) return;
  UndoEntry entry;
  entry.seq = applied_seq_;
  entry.path = path;
  if (auto it = nodes_.find(path); it != nodes_.end()) entry.prior = it->second;
  undo_.push_back(std::move(entry));
  while (undo_.size() > options_.undo_capacity) {
    if (undo_.front().seq > as_of_floor_) as_of_floor_ = undo_.front().seq;
    undo_.pop_front();
  }
}

void NamespaceIndex::append_hop_locked(Node& node, const std::string& old_path,
                                       const StdEvent& event) {
  if (options_.chain_cap == 0) {
    node.chain_truncated = true;
    return;
  }
  if (node.chain.size() >= options_.chain_cap) {
    node.chain.erase(node.chain.begin());
    node.chain_truncated = true;
  }
  node.chain.push_back(RenameHop{applied_seq_, event.id, old_path});
}

std::string NamespaceIndex::subtree_end_key(const std::string& dir) {
  return dir + static_cast<char>('/' + 1);
}

NodeView NamespaceIndex::view_locked(const std::string& path, const Node& node) const {
  NodeView view;
  view.path = path;
  view.node_id = node.node_id;
  view.is_dir = node.is_dir;
  view.implicit = node.implicit;
  view.create_event = node.create_event;
  view.last_event = node.last_event;
  view.last_kind = node.last_kind;
  view.last_time = node.last_time;
  view.events = node.events;
  view.chain_truncated = node.chain_truncated;
  view.chain = node.chain;
  return view;
}

std::optional<NodeView> NamespaceIndex::lookup(std::string_view path) const {
  std::lock_guard lock(mu_);
  if (queries_counter_ != nullptr) queries_counter_->inc();
  const std::string normalized = common::normalize_path(path);
  auto it = nodes_.find(normalized);
  if (it == nodes_.end()) return std::nullopt;
  return view_locked(normalized, it->second);
}

Result<std::optional<NodeView>> NamespaceIndex::lookup_as_of(
    std::string_view path, std::uint64_t as_of_seq) const {
  std::lock_guard lock(mu_);
  if (queries_counter_ != nullptr) queries_counter_->inc();
  if (as_of_seq < as_of_floor_)
    return Status(ErrorCode::kOutOfRange,
                  "as-of step " + std::to_string(as_of_seq) +
                      " is older than the retained undo window (floor " +
                      std::to_string(as_of_floor_) + ")");
  const std::string normalized = common::normalize_path(path);
  std::optional<Node> node;
  if (auto it = nodes_.find(normalized); it != nodes_.end()) node = it->second;
  // Walk the undo log newest-to-oldest, unapplying every change to this
  // path made after the requested step. The oldest matching entry with
  // seq > as_of_seq holds the state the path had at that step.
  for (auto it = undo_.rbegin(); it != undo_.rend() && it->seq > as_of_seq; ++it)
    if (it->path == normalized) node = it->prior;
  if (!node) return std::optional<NodeView>{};
  return std::optional<NodeView>{view_locked(normalized, *node)};
}

Result<std::vector<DirEntry>> NamespaceIndex::list_dir(std::string_view path) const {
  std::lock_guard lock(mu_);
  if (queries_counter_ != nullptr) queries_counter_->inc();
  const std::string dir = common::normalize_path(path);
  if (dir != "/") {
    auto it = nodes_.find(dir);
    if (it == nodes_.end())
      return Status(ErrorCode::kNotFound, "no such directory: " + dir);
    if (!it->second.is_dir)
      return Status(ErrorCode::kNotADirectory, dir + " is not a directory");
  }
  std::vector<DirEntry> entries;
  const std::string prefix = dir == "/" ? "/" : dir + "/";
  auto it = nodes_.lower_bound(prefix);
  while (it != nodes_.end() && common::starts_with(it->first, prefix)) {
    const std::string_view rest =
        std::string_view(it->first).substr(prefix.size());
    if (rest.find('/') != std::string_view::npos) {
      // Defensive: a descendant without its intermediate node (ancestors
      // are always materialized, so this indicates none exist to list).
      ++it;
      continue;
    }
    entries.push_back(DirEntry{std::string(rest), it->second.is_dir,
                               it->second.node_id});
    if (it->second.is_dir) {
      // A directory's descendants occupy the contiguous key range
      // [entry + "/", entry + "0"), but siblings whose names extend the
      // entry's name with a character below '/' (e.g. "sub.txt" next to
      // directory "sub") sort between the entry and that range. Step
      // once, and only jump past the subtree when a descendant is
      // actually next — a blind jump would skip those siblings.
      const std::string end_key = subtree_end_key(it->first);
      const std::string child_prefix = it->first + "/";
      ++it;
      if (it != nodes_.end() && common::starts_with(it->first, child_prefix))
        it = nodes_.lower_bound(end_key);
    } else {
      ++it;
    }
  }
  return entries;
}

std::vector<DirActivity> NamespaceIndex::activity_topk(std::size_t n) const {
  std::lock_guard lock(mu_);
  if (queries_counter_ != nullptr) queries_counter_->inc();
  std::vector<DirActivity> all;
  all.reserve(dir_activity_.size());
  for (const auto& [dir, events] : dir_activity_)
    all.push_back(DirActivity{dir, events});
  const std::size_t k = std::min(n, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                    all.end(), [](const DirActivity& a, const DirActivity& b) {
                      if (a.events != b.events) return a.events > b.events;
                      return a.path < b.path;
                    });
  all.resize(k);
  return all;
}

Result<RenameChain> NamespaceIndex::resolve_rename_chain(std::string_view path) const {
  std::lock_guard lock(mu_);
  if (queries_counter_ != nullptr) queries_counter_->inc();
  const std::string normalized = common::normalize_path(path);
  auto it = nodes_.find(normalized);
  if (it == nodes_.end())
    return Status(ErrorCode::kNotFound, "no node at " + normalized);
  return RenameChain{it->second.node_id, normalized, it->second.chain_truncated,
                     it->second.chain};
}

Result<RenameChain> NamespaceIndex::resolve_rename_chain(std::uint64_t node_id) const {
  std::lock_guard lock(mu_);
  if (queries_counter_ != nullptr) queries_counter_->inc();
  auto it = path_by_id_.find(node_id);
  if (it == path_by_id_.end())
    return Status(ErrorCode::kNotFound, "no live node " + std::to_string(node_id));
  const Node& node = nodes_.at(it->second);
  return RenameChain{node.node_id, it->second, node.chain_truncated, node.chain};
}

std::uint64_t NamespaceIndex::applied_seq() const {
  std::lock_guard lock(mu_);
  return applied_seq_;
}

scalable::VectorCursor NamespaceIndex::applied_cursor() const {
  std::lock_guard lock(mu_);
  return cursor_;
}

std::uint64_t NamespaceIndex::as_of_floor() const {
  std::lock_guard lock(mu_);
  return as_of_floor_;
}

std::size_t NamespaceIndex::node_count() const {
  std::lock_guard lock(mu_);
  return nodes_.size();
}

std::size_t NamespaceIndex::dir_count() const {
  std::lock_guard lock(mu_);
  return dir_nodes_;
}

void NamespaceIndex::serialize(std::vector<std::byte>& out) const {
  std::lock_guard lock(mu_);
  put_u32(out, kStateMagic);
  put_u32(out, kStateVersion);
  put_u32(out, static_cast<std::uint32_t>(cursor_.last_ids.size()));
  for (common::EventId id : cursor_.last_ids) put_u64(out, id);
  put_u64(out, applied_seq_);
  put_u64(out, next_node_id_);
  put_u64(out, nodes_.size());
  for (const auto& [path, node] : nodes_) {
    put_string(out, path);
    put_u64(out, node.node_id);
    std::uint8_t flags = 0;
    if (node.is_dir) flags |= 1;
    if (node.implicit) flags |= 2;
    if (node.chain_truncated) flags |= 4;
    put_u8(out, flags);
    put_u64(out, node.create_event);
    put_u64(out, node.last_event);
    put_u8(out, static_cast<std::uint8_t>(node.last_kind));
    put_u64(out, static_cast<std::uint64_t>(node.last_time.time_since_epoch().count()));
    put_u64(out, node.events);
    put_u32(out, static_cast<std::uint32_t>(node.chain.size()));
    for (const RenameHop& hop : node.chain) {
      put_u64(out, hop.seq);
      put_u64(out, hop.event_id);
      put_string(out, hop.old_path);
    }
  }
  put_u64(out, dir_activity_.size());
  for (const auto& [dir, events] : dir_activity_) {
    put_string(out, dir);
    put_u64(out, events);
  }
  put_u64(out, pending_renames_.size());
  for (const auto& [key, pending] : pending_renames_) {
    put_string(out, key.first);
    put_u64(out, key.second);
    put_string(out, pending.from_path);
    put_u8(out, pending.is_dir ? 1 : 0);
    put_u64(out, pending.event_id);
    put_u64(out, pending.admitted);
  }
}

Status NamespaceIndex::restore(std::span<const std::byte> in) {
  std::lock_guard lock(mu_);
  nodes_.clear();
  path_by_id_.clear();
  dir_activity_.clear();
  pending_renames_.clear();
  undo_.clear();
  cursor_ = scalable::VectorCursor(1);
  applied_seq_ = 0;
  next_node_id_ = 1;
  dir_nodes_ = 0;
  as_of_floor_ = 0;

  Reader r{in};
  const auto fail = [&](std::string_view what) {
    nodes_.clear();
    path_by_id_.clear();
    dir_activity_.clear();
    pending_renames_.clear();
    cursor_ = scalable::VectorCursor(1);
    applied_seq_ = 0;
    next_node_id_ = 1;
    dir_nodes_ = 0;
    update_gauges_locked();
    return Status(ErrorCode::kCorrupt, "nsindex state: " + std::string(what));
  };
  if (r.u32() != kStateMagic) return fail("bad magic");
  if (r.u32() != kStateVersion) return fail("unsupported version");
  const std::uint32_t shard_count = r.u32();
  if (r.failed || shard_count == 0 || shard_count > (1u << 16))
    return fail("bad shard count");
  cursor_ = scalable::VectorCursor(shard_count);
  for (std::uint32_t k = 0; k < shard_count; ++k) cursor_.last_ids[k] = r.u64();
  applied_seq_ = r.u64();
  next_node_id_ = r.u64();
  const std::uint64_t node_count = r.u64();
  if (r.failed || node_count > (1ull << 32)) return fail("bad node count");
  for (std::uint64_t i = 0; i < node_count; ++i) {
    std::string path = r.str();
    Node node;
    node.node_id = r.u64();
    const std::uint8_t flags = r.u8();
    node.is_dir = (flags & 1) != 0;
    node.implicit = (flags & 2) != 0;
    node.chain_truncated = (flags & 4) != 0;
    node.create_event = r.u64();
    node.last_event = r.u64();
    const std::uint8_t kind = r.u8();
    if (kind >= core::kEventKindCount) return fail("bad node kind");
    node.last_kind = static_cast<EventKind>(kind);
    node.last_time =
        common::TimePoint{common::Duration{static_cast<std::int64_t>(r.u64())}};
    node.events = r.u64();
    const std::uint32_t hops = r.u32();
    if (r.failed || hops > (1u << 20)) return fail("bad chain length");
    node.chain.reserve(hops);
    for (std::uint32_t h = 0; h < hops; ++h) {
      RenameHop hop;
      hop.seq = r.u64();
      hop.event_id = r.u64();
      hop.old_path = r.str();
      node.chain.push_back(std::move(hop));
    }
    if (r.failed) return fail("truncated node");
    if (node.is_dir) ++dir_nodes_;
    path_by_id_[node.node_id] = path;
    nodes_[std::move(path)] = std::move(node);
  }
  const std::uint64_t dir_count = r.u64();
  if (r.failed || dir_count > (1ull << 32)) return fail("bad activity count");
  for (std::uint64_t i = 0; i < dir_count; ++i) {
    std::string dir = r.str();
    const std::uint64_t events = r.u64();
    if (r.failed) return fail("truncated activity");
    dir_activity_[std::move(dir)] = events;
  }
  const std::uint64_t pending_count = r.u64();
  if (r.failed || pending_count > (1ull << 24)) return fail("bad pending count");
  for (std::uint64_t i = 0; i < pending_count; ++i) {
    std::string source = r.str();
    const std::uint64_t cookie = r.u64();
    PendingRename pending;
    pending.from_path = r.str();
    pending.is_dir = r.u8() != 0;
    pending.event_id = r.u64();
    pending.admitted = r.u64();
    if (r.failed) return fail("truncated pending rename");
    pending_renames_[{std::move(source), cookie}] = std::move(pending);
  }
  if (r.failed || r.offset != in.size()) return fail("trailing bytes");
  // A restored image carries no undo history: as-of reads start at the
  // restored step.
  as_of_floor_ = applied_seq_;
  update_gauges_locked();
  return Status::ok();
}

std::string NamespaceIndex::debug_dump() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  out << "cursor=";
  for (std::size_t k = 0; k < cursor_.last_ids.size(); ++k)
    out << (k == 0 ? "" : ",") << cursor_.last_ids[k];
  out << " seq=" << applied_seq_ << " next_id=" << next_node_id_ << "\n";
  for (const auto& [path, node] : nodes_) {
    out << path << " id=" << node.node_id << (node.is_dir ? " dir" : " file")
        << (node.implicit ? " implicit" : "") << " create=" << node.create_event
        << " last=" << node.last_event << " kind=" << to_string(node.last_kind)
        << " ts=" << node.last_time.time_since_epoch().count()
        << " events=" << node.events;
    if (!node.chain.empty()) {
      out << " chain=[";
      for (std::size_t i = 0; i < node.chain.size(); ++i)
        out << (i == 0 ? "" : " ") << node.chain[i].old_path << "@"
            << node.chain[i].seq;
      out << (node.chain_truncated ? " truncated]" : "]");
    }
    out << "\n";
  }
  for (const auto& [dir, events] : dir_activity_)
    out << "activity " << dir << "=" << events << "\n";
  for (const auto& [key, pending] : pending_renames_)
    out << "pending " << key.first << ":" << key.second << " from="
        << pending.from_path << "\n";
  return out.str();
}

void NamespaceIndex::update_gauges_locked() {
  if (nodes_gauge_ == nullptr) return;
  nodes_gauge_->set(static_cast<std::int64_t>(nodes_.size()));
  dirs_gauge_->set(static_cast<std::int64_t>(dir_nodes_));
  undo_gauge_->set(static_cast<std::int64_t>(undo_.size()));
  pending_gauge_->set(static_cast<std::int64_t>(pending_renames_.size()));
}

}  // namespace fsmon::nsindex
