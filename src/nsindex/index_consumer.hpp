// IndexConsumer: the indexing consumer — glue between the consumption
// tier and the NamespaceIndex applier.
//
// It owns a manual-ack Consumer (legacy or hub topology), folds every
// delivered batch into the index in per-shard id order, checkpoints the
// index every `snapshot_every` applied events, and only then lets the
// consumer acknowledge — so the stores never purge events the index has
// folded but not yet persisted (acked implies recoverable).
//
// Recovery (start()) is O(delta): load the newest valid snapshot, then
// replay only events above the snapshot's embedded VectorCursor through
// the paged merged-store path. Events replayed during recovery are
// counted as `nsidx.replayed_events` — the regression tests pin that
// this equals the post-snapshot delta, not the full history.
//
// The delivery seam (replayed and live batches interleaving during
// catch-up) can present events out of order relative to a shard's dense
// id sequence. The applier refuses those; this consumer stashes them
// and re-offers each time the gap closes. If a gap never closes from
// deliveries alone (an event published before this consumer attached,
// persisted after its replay finished), a repair tick re-pages the
// store from the index cursor and the stash drains.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/nsindex/nsindex.hpp"
#include "src/nsindex/snapshot.hpp"
#include "src/scalable/consumer.hpp"

namespace fsmon::nsindex {

struct IndexConsumerOptions {
  /// Snapshot directory (created on demand).
  std::filesystem::path snapshot_dir;
  /// Checkpoint after this many newly applied events (0 = only explicit
  /// checkpoint() calls).
  std::size_t snapshot_every = 8192;
  /// Snapshots retained (min 2; see SnapshotStoreOptions::keep).
  std::size_t snapshot_keep = 2;
  /// Applier tuning (undo window, chain cap). The metrics field is
  /// overridden by `metrics` below.
  NamespaceIndexOptions index;
  /// Registry for nsidx.* and the consumer's consumer.* instruments.
  obs::MetricsRegistry* metrics = nullptr;
  /// Ride the fan-out hub instead of a private receiver (may be null).
  scalable::FanOutHub* hub = nullptr;
  /// Underlying consumer cadence/paging.
  std::size_t ack_interval = 1024;
  std::size_t replay_page = 4096;
  /// Repair tick: how often to check for a stalled id gap.
  std::chrono::milliseconds repair_interval = std::chrono::milliseconds(50);
};

/// Reference fold: replay the stores' full merged history into `index`
/// from scratch — no consumer, no snapshot, no live seam. The property
/// tests byte-compare a crash-recovered index against exactly this.
/// Returns the number of events folded.
common::Result<std::size_t> fold_namespace(scalable::ShardedAggregator& aggregator,
                                           NamespaceIndex& index,
                                           std::size_t page = 4096);

class IndexConsumer {
 public:
  IndexConsumer(msgq::Bus& bus, scalable::ShardedAggregator& aggregator,
                std::string name, IndexConsumerOptions options);
  ~IndexConsumer();

  IndexConsumer(const IndexConsumer&) = delete;
  IndexConsumer& operator=(const IndexConsumer&) = delete;

  /// Recover (snapshot + delta replay) and begin consuming live.
  common::Status start();
  void stop();

  /// Snapshot the index now and advance the consumer's durable ack floor
  /// to the snapshot's cursor. Non-OK (e.g. an injected torn write)
  /// leaves the ack floor alone: the stores retain the un-checkpointed
  /// delta and the next recovery replays it.
  common::Status checkpoint();

  /// The queryable state. Thread-safe (the index locks internally).
  NamespaceIndex& index() { return index_; }
  const NamespaceIndex& index() const { return index_; }
  SnapshotStore& snapshots() { return snapshots_; }

  /// Events folded during the last start()'s recovery replay (the value
  /// behind nsidx.replayed_events for that run).
  std::uint64_t replayed_events() const { return replayed_events_.load(); }
  /// applied_seq at the last successful checkpoint.
  std::uint64_t last_checkpoint_seq() const { return last_checkpoint_seq_.load(); }
  /// Out-of-order events currently parked waiting for their gap.
  std::size_t stashed() const { return stash_size_.load(); }

  const std::string& name() const { return name_; }

 private:
  void on_batch(const core::EventBatch& batch);
  /// Apply one event; stash on out-of-order, drain the stash on success.
  void apply_or_stash(std::size_t shard, const core::StdEvent& event);
  void repair_loop(std::stop_token stop);

  msgq::Bus& bus_;
  scalable::ShardedAggregator& aggregator_;
  std::string name_;
  IndexConsumerOptions options_;
  NamespaceIndex index_;
  SnapshotStore snapshots_;
  std::unique_ptr<scalable::Consumer> consumer_;
  /// Parked out-of-order events per shard, keyed by id. Only touched on
  /// the (serialized) delivery path.
  std::map<std::size_t, std::map<common::EventId, core::StdEvent>> stash_;
  std::atomic<std::size_t> stash_size_{0};
  std::atomic<bool> recovering_{false};
  std::atomic<std::uint64_t> replayed_events_{0};
  std::atomic<std::uint64_t> last_checkpoint_seq_{0};
  std::atomic<std::uint64_t> applied_at_last_tick_{0};
  std::mutex checkpoint_mu_;  ///< Serializes checkpoint() callers.
  std::jthread repair_;
  std::atomic<bool> running_{false};
  obs::Counter* replayed_counter_ = nullptr;
  obs::Counter* stashed_counter_ = nullptr;
  obs::Counter* gap_repairs_counter_ = nullptr;
};

}  // namespace fsmon::nsindex
