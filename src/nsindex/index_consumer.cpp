#include "src/nsindex/index_consumer.hpp"

#include "src/common/logging.hpp"

namespace fsmon::nsindex {

using common::Result;
using common::Status;
using scalable::VectorCursor;

Result<std::size_t> fold_namespace(scalable::ShardedAggregator& aggregator,
                                   NamespaceIndex& index, std::size_t page) {
  if (page == 0) page = 4096;
  const std::size_t shard_count = aggregator.shard_count();
  VectorCursor cursor(shard_count);
  std::size_t folded = 0;
  for (;;) {
    auto events = aggregator.events_since(cursor, page);
    if (!events) return events.status();
    if (events.value().empty()) break;
    for (const core::StdEvent& event : events.value()) {
      const std::size_t shard =
          shard_count == 1 ? 0 : aggregator.map().shard_of(event.source);
      // The merged view preserves per-shard id order, so a from-scratch
      // fold never sees a gap or a duplicate.
      if (index.apply(shard, event) == NamespaceIndex::ApplyResult::kApplied)
        ++folded;
    }
    if (events.value().size() < page) break;
  }
  return folded;
}

IndexConsumer::IndexConsumer(msgq::Bus& bus, scalable::ShardedAggregator& aggregator,
                             std::string name, IndexConsumerOptions options)
    : bus_(bus),
      aggregator_(aggregator),
      name_(std::move(name)),
      options_(std::move(options)),
      index_([&] {
        NamespaceIndexOptions idx = options_.index;
        idx.metrics = options_.metrics;
        return idx;
      }()),
      snapshots_(SnapshotStoreOptions{options_.snapshot_dir, options_.snapshot_keep,
                                      options_.metrics}) {
  if (options_.metrics != nullptr) {
    auto& m = *options_.metrics;
    replayed_counter_ = &m.counter("nsidx.replayed_events", {},
                                   "events re-folded from the store during recovery");
    stashed_counter_ = &m.counter("nsidx.stashed_events", {},
                                  "out-of-order events parked at the replay/live seam");
    gap_repairs_counter_ = &m.counter("nsidx.gap_repairs", {},
                                      "store re-pages triggered by a stalled id gap");
  }
}

IndexConsumer::~IndexConsumer() { stop(); }

Status IndexConsumer::start() {
  if (running_.load()) return Status::ok();

  // 1. Load the newest valid snapshot (torn files are discarded and the
  //    previous one wins — SnapshotStore::recover).
  auto recovered = snapshots_.recover(index_);
  if (!recovered) return recovered.status();
  last_checkpoint_seq_.store(index_.applied_seq());
  const VectorCursor snapshot_cursor = index_.applied_cursor();

  // 2. Attach the manual-ack consumer. The ack floor starts at the
  //    snapshot cursor: everything below it is durably folded.
  scalable::ConsumerOptions copts;
  copts.manual_acks = true;
  copts.ack_interval = options_.ack_interval;
  copts.replay_page = options_.replay_page;
  copts.metrics = options_.metrics;
  copts.hub = options_.hub;
  consumer_ = std::make_unique<scalable::Consumer>(
      bus_, aggregator_, name_, std::move(copts),
      scalable::Consumer::BatchCallback(
          [this](const core::EventBatch& batch) { on_batch(batch); }));
  consumer_->acknowledge_processed(snapshot_cursor);

  // 3. O(delta) catch-up: replay only events above the snapshot cursor.
  //    Runs before the worker starts (same ordering as Consumer::restart:
  //    replay first so the dedup window seeds from the oldest unacked
  //    record). nsidx.replayed_events counts exactly this delta.
  replayed_events_.store(0);
  recovering_.store(true);
  auto replayed = consumer_->replay_historic(snapshot_cursor, /*rewind=*/true);
  recovering_.store(false);
  if (!replayed) {
    consumer_.reset();
    return replayed.status();
  }

  // 4. Go live.
  if (Status s = consumer_->start(); !s.is_ok()) {
    consumer_.reset();
    return s;
  }
  running_.store(true);
  applied_at_last_tick_.store(index_.applied_seq());
  repair_ = std::jthread([this](std::stop_token stop) { repair_loop(stop); });
  return Status::ok();
}

void IndexConsumer::stop() {
  if (!running_.exchange(false)) {
    consumer_.reset();
    return;
  }
  if (repair_.joinable()) {
    repair_.request_stop();
    repair_.join();
  }
  if (consumer_ != nullptr) consumer_->stop();
  consumer_.reset();
}

void IndexConsumer::on_batch(const core::EventBatch& batch) {
  const std::size_t shard_count = aggregator_.shard_count();
  for (const core::StdEvent& event : batch.events) {
    const std::size_t shard =
        shard_count == 1 ? 0 : aggregator_.map().shard_of(event.source);
    apply_or_stash(shard, event);
  }
  if (options_.snapshot_every > 0 &&
      index_.applied_seq() - last_checkpoint_seq_.load() >= options_.snapshot_every) {
    if (Status s = checkpoint(); !s.is_ok())
      FSMON_WARN("nsindex", "checkpoint failed (will retry): ", s.to_string());
  }
}

void IndexConsumer::apply_or_stash(std::size_t shard, const core::StdEvent& event) {
  using ApplyResult = NamespaceIndex::ApplyResult;
  const ApplyResult result = index_.apply(shard, event);
  if (result == ApplyResult::kOutOfOrder) {
    // The seam between replayed and live delivery can run ahead of a
    // gap; park the event and re-offer once the gap closes.
    auto& pending = stash_[shard];
    if (pending.emplace(event.id, event).second) {
      stash_size_.fetch_add(1);
      if (stashed_counter_ != nullptr) stashed_counter_->inc();
    }
    return;
  }
  if (result != ApplyResult::kApplied) return;  // duplicate
  if (recovering_.load()) {
    replayed_events_.fetch_add(1);
    if (replayed_counter_ != nullptr) replayed_counter_->inc();
  }
  // The gap (if any) just moved: drain every parked event that is now
  // next in line; stale parked duplicates fall out as kDuplicate.
  auto it = stash_.find(shard);
  if (it == stash_.end()) return;
  auto& pending = it->second;
  while (!pending.empty()) {
    auto first = pending.begin();
    const ApplyResult r = index_.apply(shard, first->second);
    if (r == ApplyResult::kOutOfOrder) break;
    if (r == ApplyResult::kApplied && recovering_.load()) {
      replayed_events_.fetch_add(1);
      if (replayed_counter_ != nullptr) replayed_counter_->inc();
    }
    pending.erase(first);
    stash_size_.fetch_sub(1);
  }
}

Status IndexConsumer::checkpoint() {
  std::lock_guard lock(checkpoint_mu_);
  // Capture the cursor before serializing: events applied while the
  // snapshot is written make the persisted image newer than this cursor,
  // so acknowledging up to it stays conservative.
  const VectorCursor cursor = index_.applied_cursor();
  const std::uint64_t seq = index_.applied_seq();
  if (Status s = snapshots_.write(index_); !s.is_ok()) return s;
  last_checkpoint_seq_.store(seq);
  if (consumer_ != nullptr) consumer_->acknowledge_processed(cursor);
  return Status::ok();
}

void IndexConsumer::repair_loop(std::stop_token stop) {
  while (!stop.stop_requested()) {
    std::this_thread::sleep_for(options_.repair_interval);
    if (stop.stop_requested()) break;
    if (stash_size_.load() == 0) continue;
    // A gap with no progress since the last tick will not close from
    // queued deliveries — the missing events were published before this
    // consumer attached. Re-page the store from the index cursor; the
    // delivery path applies them and the stash drains. replay_historic
    // serializes with live delivery, so this is safe while running.
    const std::uint64_t seq = index_.applied_seq();
    if (seq != applied_at_last_tick_.exchange(seq)) continue;
    if (gap_repairs_counter_ != nullptr) gap_repairs_counter_->inc();
    if (auto r = consumer_->replay_historic(index_.applied_cursor(), /*rewind=*/true);
        !r)
      FSMON_WARN("nsindex", "gap repair replay failed: ", r.status().to_string());
  }
}

}  // namespace fsmon::nsindex
