// NamespaceIndex: materialized, point-in-time-queryable namespace state
// folded from the event stream (ROADMAP item 3).
//
// The store can replay history but cannot answer questions — "what is at
// /a/b now", "what does /proj contain", "which directories are hot",
// "what was this file called before". This applier consumes the ordered
// per-shard event streams (live batches via the consumer/hub path, or
// merged store replay) and maintains:
//
//   - path -> node attributes: kind, synthetic node id, create/last
//     event ids, last event kind, last timestamp (the mtime the events
//     carry), per-node event count;
//   - per-directory state: child listings (served from the ordered path
//     map, so a directory's children are the key range under its
//     prefix) and activity counters (events whose subject lives
//     directly in the directory);
//   - rename-chain resolution: MOVED_FROM / MOVED_TO halves are paired
//     on StdEvent::rename_key(), a directory rename rekeys the whole
//     subtree, and every relocated node records the hop — a query for a
//     current path reflects its full RENME history;
//   - an as-of read: a bounded undo log of node-record changes lets
//     lookup_as_of() answer "what was at this path as of apply step S"
//     for any S inside the retained window.
//
// Ordering contract: apply() accepts exactly the next dense event id of
// each shard (ids per shard are 1,2,3,...). Duplicates (id at or below
// the applied cursor) and out-of-order ids are refused with a typed
// result, which makes the applier safe to drive from the consumer's
// replay/live seam — the IndexConsumer stashes out-of-order events and
// re-offers them when the gap closes. Folding the same per-shard
// sequences always produces the same state; with one shard the fold is
// byte-deterministic (serialize() compares equal), which is the
// crash-recovery property the tests byte-check.
//
// Thread safety: every public method takes the internal mutex; apply
// runs on the consumer's delivery thread while queries come from
// application threads.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/status.hpp"
#include "src/common/types.hpp"
#include "src/core/event.hpp"
#include "src/obs/metrics.hpp"
#include "src/scalable/shard_map.hpp"

namespace fsmon::nsindex {

struct NamespaceIndexOptions {
  /// Bounded undo log: as-of reads reach back at most this many applied
  /// events. 0 disables as-of reads entirely.
  std::size_t undo_capacity = 1 << 16;
  /// Rename hops retained per node; older hops are dropped (the chain
  /// reports truncation).
  std::size_t chain_cap = 16;
  /// MOVED_FROM halves parked awaiting their MOVED_TO. A half whose
  /// partner never arrives (filtered out, dropped upstream) would
  /// otherwise sit forever — and be serialized into every snapshot — so
  /// beyond the cap the oldest half (by apply step) is evicted, counted
  /// as nsidx.pending_rename_evictions; its MOVED_TO, if it ever shows
  /// up, folds as an orphan create. 0 = unbounded.
  std::size_t pending_rename_cap = 1024;
  /// Observability registry; null = uninstrumented (nsidx.* instruments).
  obs::MetricsRegistry* metrics = nullptr;
};

/// One hop of a node's rename history: the node (or an ancestor moved
/// above it) was known as `old_path` until apply step `seq`.
struct RenameHop {
  std::uint64_t seq = 0;            ///< Apply step of the MOVED_TO.
  common::EventId event_id = 0;     ///< Shard-local id of the MOVED_TO event.
  std::string old_path;             ///< Full path before this hop.

  friend bool operator==(const RenameHop&, const RenameHop&) = default;
};

/// Query result: the state of one node.
struct NodeView {
  std::string path;
  std::uint64_t node_id = 0;  ///< Synthetic identity, stable across renames.
  bool is_dir = false;
  /// Materialized as an inferred ancestor (no create event was observed
  /// for it — monitoring started after it existed).
  bool implicit = false;
  common::EventId create_event = 0;  ///< 0 when implicit.
  common::EventId last_event = 0;
  core::EventKind last_kind = core::EventKind::kCreate;
  common::TimePoint last_time{};
  std::uint64_t events = 0;  ///< Events that targeted this node.
  bool chain_truncated = false;
  std::vector<RenameHop> chain;  ///< Oldest hop first.
};

struct DirEntry {
  std::string name;
  bool is_dir = false;
  std::uint64_t node_id = 0;
};

struct DirActivity {
  std::string path;
  std::uint64_t events = 0;
};

/// resolve_rename_chain() result: a node's identity plus its full name
/// history (oldest first; `truncated` when hops were dropped by the cap).
struct RenameChain {
  std::uint64_t node_id = 0;
  std::string current_path;
  bool truncated = false;
  std::vector<RenameHop> hops;
};

class NamespaceIndex {
 public:
  explicit NamespaceIndex(NamespaceIndexOptions options = {});

  NamespaceIndex(const NamespaceIndex&) = delete;
  NamespaceIndex& operator=(const NamespaceIndex&) = delete;

  enum class ApplyResult {
    kApplied,     ///< Event folded; cursor advanced.
    kDuplicate,   ///< id at or below the shard's applied watermark.
    kOutOfOrder,  ///< id leaves a gap; re-offer once the gap closes.
  };

  /// Fold one event from `shard`'s stream. Ids per shard must be dense;
  /// only id == cursor[shard] + 1 is accepted.
  ApplyResult apply(std::size_t shard, const core::StdEvent& event);

  // ---- Queries --------------------------------------------------------

  /// Current state of the node at `path` (normalized); nullopt when no
  /// such node exists.
  std::optional<NodeView> lookup(std::string_view path) const;

  /// Point-in-time read: the node state at `path` as of apply step
  /// `as_of_seq` (a value of applied_seq(); with one shard this is the
  /// event id). kOutOfRange when the step is older than the retained
  /// undo window or predates the restored snapshot.
  common::Result<std::optional<NodeView>> lookup_as_of(std::string_view path,
                                                       std::uint64_t as_of_seq) const;

  /// Children of the directory at `path`, sorted by name. kNotFound for
  /// an unknown path, kNotADirectory for a file; "/" always succeeds.
  common::Result<std::vector<DirEntry>> list_dir(std::string_view path) const;

  /// The `n` directories with the most activity (events on direct
  /// children), most active first; ties broken by path.
  std::vector<DirActivity> activity_topk(std::size_t n) const;

  /// Rename history of the node currently at `path`.
  common::Result<RenameChain> resolve_rename_chain(std::string_view path) const;
  /// Rename history by node identity (survives renames; the index's
  /// stand-in for a FID).
  common::Result<RenameChain> resolve_rename_chain(std::uint64_t node_id) const;

  // ---- Progress -------------------------------------------------------

  /// Apply steps folded so far (monotonic; the as-of timeline).
  std::uint64_t applied_seq() const;
  /// Per-shard applied watermarks — the snapshot/replay cursor.
  scalable::VectorCursor applied_cursor() const;
  /// Oldest apply step as-of reads can still answer.
  std::uint64_t as_of_floor() const;
  std::size_t node_count() const;
  std::size_t dir_count() const;

  // ---- Checkpointing --------------------------------------------------

  /// Serialize the full state (cursor, nodes, chains, activity, pending
  /// rename halves) into `out`. Framing/CRC/fsync are the snapshot
  /// layer's job (snapshot.hpp). The encoding is canonical: two indexes
  /// that folded the same per-shard sequences serialize identically.
  void serialize(std::vector<std::byte>& out) const;

  /// Replace the state with a serialized image. The undo log resets (as
  /// -of reads reach back only to the restored step). kCorrupt on a
  /// malformed image; the index is left empty in that case.
  common::Status restore(std::span<const std::byte> in);

  /// Deterministic human-readable dump of the whole state (tests diff
  /// this across recovery schedules).
  std::string debug_dump() const;

 private:
  struct Node {
    std::uint64_t node_id = 0;
    bool is_dir = false;
    bool implicit = false;
    common::EventId create_event = 0;
    common::EventId last_event = 0;
    core::EventKind last_kind = core::EventKind::kCreate;
    common::TimePoint last_time{};
    std::uint64_t events = 0;
    bool chain_truncated = false;
    std::vector<RenameHop> chain;
  };

  struct PendingRename {
    std::string from_path;  ///< Empty when the source path was unresolvable.
    bool is_dir = false;
    common::EventId event_id = 0;
    /// Apply step at insertion — the oldest-first eviction order
    /// (deterministic given the applied stream, so eviction keeps the
    /// serialized image canonical).
    std::uint64_t admitted = 0;
  };

  struct UndoEntry {
    std::uint64_t seq = 0;
    std::string path;
    std::optional<Node> prior;  ///< nullopt = the path had no node.
  };

  // All helpers run under mu_.
  void apply_locked(const core::StdEvent& event);
  void do_create(const core::StdEvent& event);
  void do_touch(const core::StdEvent& event);
  void do_delete(const core::StdEvent& event);
  void do_moved_from(const core::StdEvent& event);
  void do_moved_to(const core::StdEvent& event);
  /// Move the node at `from` (and, for directories, its whole subtree)
  /// to `to`, recording a rename hop on every relocated node.
  void move_tree_locked(const std::string& from, const std::string& to,
                        const core::StdEvent& event);
  /// Remove the node at `path` and, for directories, every descendant.
  void remove_tree_locked(const std::string& path);
  /// Materialize missing ancestor directories of `path` as implicit dirs.
  void ensure_ancestors_locked(const std::string& path);
  void bump_activity_locked(const std::string& dir);
  /// Record-change primitives; every node-map mutation goes through
  /// these so the undo log sees it.
  void put_node_locked(const std::string& path, Node node);
  void erase_node_locked(const std::string& path);
  void log_undo_locked(const std::string& path);
  void append_hop_locked(Node& node, const std::string& old_path,
                        const core::StdEvent& event);
  /// First key lexicographically after every path under `dir` ("/a" ->
  /// "/a0": '0' is '/'+1, so the subtree key range is ["/a/", "/a0")).
  static std::string subtree_end_key(const std::string& dir);
  NodeView view_locked(const std::string& path, const Node& node) const;
  void update_gauges_locked();

  NamespaceIndexOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Node, std::less<>> nodes_;
  std::unordered_map<std::uint64_t, std::string> path_by_id_;
  std::map<std::string, std::uint64_t, std::less<>> dir_activity_;
  std::map<std::pair<std::string, std::uint64_t>, PendingRename> pending_renames_;
  scalable::VectorCursor cursor_;
  std::uint64_t applied_seq_ = 0;
  std::uint64_t next_node_id_ = 1;
  std::size_t dir_nodes_ = 0;  ///< Directory nodes in nodes_ (gauge).
  std::deque<UndoEntry> undo_;
  /// Oldest apply step still answerable: raised by undo eviction and by
  /// restore() (a snapshot carries no undo history).
  std::uint64_t as_of_floor_ = 0;

  obs::Counter* applied_counter_ = nullptr;
  obs::Counter* duplicates_counter_ = nullptr;
  obs::Counter* renames_counter_ = nullptr;
  obs::Counter* subtree_moves_counter_ = nullptr;
  obs::Counter* orphan_renames_counter_ = nullptr;
  obs::Counter* pending_evictions_counter_ = nullptr;
  obs::Counter* unresolved_counter_ = nullptr;
  obs::Counter* queries_counter_ = nullptr;
  obs::Gauge* nodes_gauge_ = nullptr;
  obs::Gauge* dirs_gauge_ = nullptr;
  obs::Gauge* undo_gauge_ = nullptr;
  obs::Gauge* pending_gauge_ = nullptr;
};

}  // namespace fsmon::nsindex
