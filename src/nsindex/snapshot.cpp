#include "src/nsindex/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/chaos/fault.hpp"
#include "src/common/crc32.hpp"

namespace fsmon::nsindex {

namespace {

using common::ErrorCode;
using common::Result;
using common::Status;

constexpr std::uint32_t kSnapMagic = 0x50534e46;  // "FNSP"
constexpr std::uint32_t kSnapVersion = 1;
constexpr std::string_view kSnapPrefix = "ns-";
constexpr std::string_view kSnapSuffix = ".snap";

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

std::uint32_t read_u32(std::span<const std::byte> in, std::size_t offset) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[offset + i]) << (8 * i);
  return v;
}

std::uint64_t read_u64(std::span<const std::byte> in, std::size_t offset) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[offset + i]) << (8 * i);
  return v;
}

std::string snapshot_name(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ns-%020llu.snap",
                static_cast<unsigned long long>(seq));
  return buf;
}

/// Parse the seq out of "ns-<digits>.snap"; nullopt for foreign files.
std::optional<std::uint64_t> parse_snapshot_name(const std::string& name) {
  if (name.size() <= kSnapPrefix.size() + kSnapSuffix.size()) return std::nullopt;
  if (name.rfind(kSnapPrefix, 0) != 0) return std::nullopt;
  if (name.compare(name.size() - kSnapSuffix.size(), kSnapSuffix.size(),
                   kSnapSuffix) != 0)
    return std::nullopt;
  const char* first = name.data() + kSnapPrefix.size();
  const char* last = name.data() + name.size() - kSnapSuffix.size();
  std::uint64_t seq = 0;
  auto [ptr, ec] = std::from_chars(first, last, seq);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return seq;
}

/// Frame a state image: header + payload + CRC trailer over all of it.
std::vector<std::byte> frame_snapshot(const std::vector<std::byte>& payload) {
  std::vector<std::byte> file;
  file.reserve(payload.size() + 20);
  put_u32(file, kSnapMagic);
  put_u32(file, kSnapVersion);
  put_u64(file, payload.size());
  file.insert(file.end(), payload.begin(), payload.end());
  put_u32(file, common::crc32(std::span<const std::byte>(file)));
  return file;
}

/// Validate a snapshot file's framing and return the payload bytes.
Result<std::span<const std::byte>> unframe_snapshot(
    std::span<const std::byte> file) {
  if (file.size() < 20)
    return Status(ErrorCode::kCorrupt, "snapshot: short file");
  if (read_u32(file, 0) != kSnapMagic)
    return Status(ErrorCode::kCorrupt, "snapshot: bad magic");
  if (read_u32(file, 4) != kSnapVersion)
    return Status(ErrorCode::kCorrupt, "snapshot: unsupported version");
  const std::uint64_t payload_len = read_u64(file, 8);
  if (payload_len != file.size() - 20)
    return Status(ErrorCode::kCorrupt, "snapshot: truncated payload");
  const std::uint32_t stored = read_u32(file, file.size() - 4);
  const std::uint32_t computed = common::crc32(file.first(file.size() - 4));
  if (stored != computed)
    return Status(ErrorCode::kCorrupt, "snapshot: CRC mismatch");
  return file.subspan(16, payload_len);
}

Result<std::vector<std::byte>> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return Status(ErrorCode::kUnavailable, "snapshot: cannot open " + path.string());
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0)
    return Status(ErrorCode::kUnavailable, "snapshot: cannot size " + path.string());
  in.seekg(0, std::ios::beg);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(bytes.data()), size))
    return Status(ErrorCode::kUnavailable, "snapshot: cannot read " + path.string());
  return bytes;
}

/// Write `bytes` to `path`; with `durable` the data is fsynced to the
/// file before returning (the directory entry still needs its own fsync
/// after the rename). The torn-write fault path writes non-durably — it
/// simulates exactly the crash the durable path prevents.
Status write_file(const std::filesystem::path& path,
                  std::span<const std::byte> bytes, bool durable) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0)
    return Status(ErrorCode::kUnavailable, "snapshot: cannot create " + path.string());
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, reinterpret_cast<const char*>(bytes.data()) + written,
                bytes.size() - written);
    if (n < 0) {
      ::close(fd);
      return Status(ErrorCode::kUnavailable, "snapshot: write failed " + path.string());
    }
    written += static_cast<std::size_t>(n);
  }
  if (durable && ::fsync(fd) != 0) {
    ::close(fd);
    return Status(ErrorCode::kUnavailable, "snapshot: fsync failed " + path.string());
  }
  ::close(fd);
  return Status::ok();
}

/// Durability barrier on the directory itself: makes a just-renamed
/// snapshot's directory entry survive power loss.
Status fsync_dir(const std::filesystem::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0)
    return Status(ErrorCode::kUnavailable,
                  "snapshot: cannot open dir " + dir.string());
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0)
    return Status(ErrorCode::kUnavailable,
                  "snapshot: dir fsync failed " + dir.string());
  return Status::ok();
}

}  // namespace

SnapshotStore::SnapshotStore(SnapshotStoreOptions options)
    : options_(std::move(options)) {
  if (options_.keep < 2) options_.keep = 2;
  if (options_.metrics != nullptr) {
    auto& m = *options_.metrics;
    written_counter_ = &m.counter("nsidx.snapshots_written", {},
                                  "namespace snapshots persisted");
    bytes_counter_ = &m.counter("nsidx.snapshot_bytes", {},
                                "bytes written to namespace snapshots", "bytes");
    rebuilds_counter_ =
        &m.counter("nsidx.snapshot_rebuilds", {},
                   "torn/corrupt snapshots discarded during recovery");
  }
}

Status SnapshotStore::write(const NamespaceIndex& index) {
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec)
    return Status(ErrorCode::kUnavailable,
                  "snapshot: cannot create dir " + options_.dir.string());

  std::vector<std::byte> payload;
  index.serialize(payload);
  const std::vector<std::byte> file = frame_snapshot(payload);
  const std::uint64_t seq = index.applied_seq();
  const std::filesystem::path final_path = options_.dir / snapshot_name(seq);
  const std::filesystem::path tmp_path = final_path.string() + ".tmp";

  if (auto outcome = chaos::fault("nsindex.snapshot_torn")) {
    // Crash mid-checkpoint: a prefix of the image reached the final name
    // but the process never confirmed the write. Recovery must detect
    // the torn file, discard it, and fall back to the previous snapshot.
    const std::size_t keep_bytes =
        std::min<std::size_t>(file.size(),
                              outcome.arg != 0 ? outcome.arg : file.size() / 2);
    (void)write_file(final_path, std::span<const std::byte>(file).first(keep_bytes),
                     /*durable=*/false);
    return Status(ErrorCode::kUnavailable, "snapshot: torn write injected");
  }

  // temp + fsync + rename + directory fsync: the image is durable before
  // it becomes visible under the final name, and the rename itself is
  // durable before write() reports success (the caller acknowledges the
  // cursor to the stores on that report).
  if (Status s = write_file(tmp_path, file, /*durable=*/true); !s.is_ok()) {
    std::filesystem::remove(tmp_path, ec);
    return s;
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    return Status(ErrorCode::kUnavailable,
                  "snapshot: rename failed " + final_path.string());
  }
  if (Status s = fsync_dir(options_.dir); !s.is_ok()) return s;
  if (written_counter_ != nullptr) written_counter_->inc();
  if (bytes_counter_ != nullptr) bytes_counter_->inc(file.size());

  // Retention: newest `keep` survive. Only reached after a successful
  // write, so the newest valid snapshot is never the one being pruned.
  auto files = list();
  while (files.size() > options_.keep) {
    std::filesystem::remove(files.front(), ec);
    files.erase(files.begin());
  }
  return Status::ok();
}

Result<std::uint64_t> SnapshotStore::recover(NamespaceIndex& index) {
  auto files = list();
  // Newest first: the latest valid snapshot wins.
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    auto bytes = read_file(*it);
    Status status = bytes.is_ok() ? Status::ok() : bytes.status();
    if (status.is_ok()) {
      auto payload = unframe_snapshot(*bytes);
      status = payload.is_ok() ? index.restore(*payload) : payload.status();
    }
    if (status.is_ok()) {
      const auto seq = parse_snapshot_name(it->filename().string());
      return seq.value_or(index.applied_seq());
    }
    // Torn or corrupt: delete it so the next writer's retention math and
    // the next recovery never see it again, and count the fallback.
    std::error_code ec;
    std::filesystem::remove(*it, ec);
    if (rebuilds_counter_ != nullptr) rebuilds_counter_->inc();
  }
  return std::uint64_t{0};
}

std::vector<std::filesystem::path> SnapshotStore::list() const {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  std::filesystem::directory_iterator it(options_.dir, ec);
  if (ec) return files;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    if (parse_snapshot_name(entry.path().filename().string()).has_value())
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace fsmon::nsindex
