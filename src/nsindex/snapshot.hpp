// Snapshot persistence for the namespace index.
//
// A snapshot is one self-validating file holding a NamespaceIndex state
// image (which embeds the applied VectorCursor):
//
//   u32 magic "FNSP" | u32 version | u64 payload_len | payload | u32 crc
//
// The CRC-32 trailer covers every preceding byte. Files are written
// temp + fsync + rename (the temp file is fsynced before the rename and
// the directory after it, so a write() that returned OK survives power
// loss) and named ns-<applied_seq>.snap (zero-padded, so
// lexicographic order is recency order). Retention keeps the newest
// `keep` snapshots — at least two, so a snapshot that turns out torn
// still leaves a valid predecessor to fall back to.
//
// Recovery walks snapshots newest-first, restores the first one that
// validates, and deletes every torn/corrupt file it skips (counted as
// `nsidx.snapshot_rebuilds`). The fault point `nsindex.snapshot_torn`
// (docs/FAULTS.md) makes write() persist a truncated final file and
// report failure — the crash-mid-checkpoint case recovery must survive.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "src/common/status.hpp"
#include "src/nsindex/nsindex.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::nsindex {

struct SnapshotStoreOptions {
  std::filesystem::path dir;  ///< Created on demand.
  /// Newest snapshots retained after each successful write (min 2: the
  /// newest file may be torn by a crash, the one before it must survive).
  std::size_t keep = 2;
  obs::MetricsRegistry* metrics = nullptr;  ///< nsidx.snapshot_* instruments.
};

class SnapshotStore {
 public:
  explicit SnapshotStore(SnapshotStoreOptions options);

  /// Serialize `index` and persist it as ns-<applied_seq>.snap, then
  /// prune old snapshots. Returns non-OK (and leaves retention alone) on
  /// any write/flush/rename failure, including an injected torn write —
  /// the caller must not acknowledge past the previous checkpoint then.
  common::Status write(const NamespaceIndex& index);

  /// Restore `index` from the newest valid snapshot. Torn or corrupt
  /// files encountered on the way are deleted and counted
  /// (nsidx.snapshot_rebuilds). Returns the applied_seq of the loaded
  /// snapshot, or 0 when no valid snapshot exists (index left empty).
  common::Result<std::uint64_t> recover(NamespaceIndex& index);

  /// Snapshot files present, oldest first.
  std::vector<std::filesystem::path> list() const;

  const std::filesystem::path& dir() const { return options_.dir; }

 private:
  SnapshotStoreOptions options_;
  obs::Counter* written_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Counter* rebuilds_counter_ = nullptr;
};

}  // namespace fsmon::nsindex
