// Workload target abstraction.
//
// The paper runs the same scripts against local file systems and Lustre
// testbeds (Section V-B). FsTarget is the minimal op surface those
// workloads need; adapters exist for the in-memory local FS and the
// simulated Lustre deployment (and writing one for a real POSIX tree is
// trivial).
#pragma once

#include <cstdint>
#include <string>

#include "src/common/status.hpp"
#include "src/localfs/memfs.hpp"
#include "src/lustre/filesystem.hpp"

namespace fsmon::workloads {

class FsTarget {
 public:
  virtual ~FsTarget() = default;

  virtual common::Status create(const std::string& path) = 0;
  virtual common::Status mkdir(const std::string& path) = 0;
  virtual common::Status write(const std::string& path, std::uint64_t bytes) = 0;
  virtual common::Status close(const std::string& path) = 0;
  virtual common::Status rename(const std::string& from, const std::string& to) = 0;
  virtual common::Status remove(const std::string& path) = 0;
  virtual common::Status rmdir(const std::string& path) = 0;
};

class MemFsTarget final : public FsTarget {
 public:
  explicit MemFsTarget(localfs::MemFs& fs) : fs_(fs) {}

  common::Status create(const std::string& path) override { return fs_.create(path); }
  common::Status mkdir(const std::string& path) override { return fs_.mkdir(path); }
  common::Status write(const std::string& path, std::uint64_t) override {
    return fs_.write(path);
  }
  common::Status close(const std::string& path) override { return fs_.close(path); }
  common::Status rename(const std::string& from, const std::string& to) override {
    return fs_.rename(from, to);
  }
  common::Status remove(const std::string& path) override { return fs_.remove(path); }
  common::Status rmdir(const std::string& path) override { return fs_.rmdir(path); }

 private:
  localfs::MemFs& fs_;
};

class LustreTarget final : public FsTarget {
 public:
  explicit LustreTarget(lustre::LustreFs& fs) : fs_(fs) {}

  common::Status create(const std::string& path) override {
    return fs_.create(path).status();
  }
  common::Status mkdir(const std::string& path) override { return fs_.mkdir(path).status(); }
  common::Status write(const std::string& path, std::uint64_t bytes) override {
    return fs_.modify(path, bytes).status();
  }
  common::Status close(const std::string& path) override { return fs_.close(path).status(); }
  common::Status rename(const std::string& from, const std::string& to) override {
    return fs_.rename(from, to).status();
  }
  common::Status remove(const std::string& path) override {
    return fs_.unlink(path).status();
  }
  common::Status rmdir(const std::string& path) override { return fs_.rmdir(path).status(); }

 private:
  lustre::LustreFs& fs_;
};

/// Operation footprint of a workload run (for Table IX-style accounting).
struct WorkloadFootprint {
  std::uint64_t creates = 0;
  std::uint64_t mkdirs = 0;
  std::uint64_t modifies = 0;
  std::uint64_t closes = 0;
  std::uint64_t renames = 0;
  std::uint64_t deletes = 0;
  std::uint64_t rmdirs = 0;
  std::uint64_t bytes_written = 0;

  std::uint64_t total_ops() const {
    return creates + mkdirs + modifies + closes + renames + deletes + rmdirs;
  }
};

}  // namespace fsmon::workloads
