// HACC-I/O-like workload (Section V-B).
//
// "We run HACC-IO for 4 096 000 particles under file-per-process mode
// with 256 processes" — each rank creates one
// FPP1-Part<rank>-of-<nranks>.data file, writes its particle slab, and
// closes it; the benchmark deletes the files when done (Table IX shows
// 256 CREATE/CLOSE pairs followed by 256 DELETE/CLOSE pairs).
#pragma once

#include <cstdint>
#include <string>

#include "src/workloads/target.hpp"

namespace fsmon::workloads {

struct HaccIoOptions {
  std::uint32_t processes = 256;
  std::uint64_t particles = 4'096'000;
  /// HACC-I/O stores 38 bytes per particle (9 floats + 1 int64 + align).
  std::uint64_t bytes_per_particle = 38;
  bool cleanup = true;  ///< Delete the files after the run.
};

/// Name of rank `rank`'s file, matching the paper's Table IX listing.
std::string hacc_file_name(std::uint32_t rank, std::uint32_t processes);

WorkloadFootprint run_hacc_io(FsTarget& target, const std::string& base_dir,
                              const HaccIoOptions& options);

}  // namespace fsmon::workloads
