#include "src/workloads/scripts.hpp"

namespace fsmon::workloads {

WorkloadFootprint run_evaluate_output_script(FsTarget& target,
                                             const std::string& base_dir) {
  WorkloadFootprint fp;
  const std::string hello = base_dir + "/hello.txt";
  const std::string hi = base_dir + "/hi.txt";
  const std::string okdir = base_dir + "/okdir";
  const std::string moved = okdir + "/hi.txt";

  if (target.create(hello).is_ok()) ++fp.creates;
  if (target.write(hello, 64).is_ok()) {
    ++fp.modifies;
    fp.bytes_written += 64;
  }
  if (target.close(hello).is_ok()) ++fp.closes;
  if (target.rename(hello, hi).is_ok()) ++fp.renames;
  if (target.mkdir(okdir).is_ok()) ++fp.mkdirs;
  if (target.rename(hi, moved).is_ok()) ++fp.renames;
  if (target.remove(moved).is_ok()) ++fp.deletes;
  if (target.rmdir(okdir).is_ok()) ++fp.rmdirs;
  return fp;
}

WorkloadFootprint run_performance_script(FsTarget& target, const std::string& base_dir,
                                         const PerformanceScriptOptions& options) {
  WorkloadFootprint fp;
  for (std::uint64_t i = 0; i < options.iterations; ++i) {
    // Without deletion the name must be unique per iteration or creates
    // would fail with ALREADY_EXISTS.
    const std::string path = options.do_delete
                                 ? base_dir + "/hello.txt"
                                 : base_dir + "/hello" + std::to_string(i) + ".txt";
    if (options.do_create && target.create(path).is_ok()) ++fp.creates;
    if (options.do_modify && target.write(path, options.write_bytes).is_ok()) {
      ++fp.modifies;
      fp.bytes_written += options.write_bytes;
    }
    if (options.do_delete && target.remove(path).is_ok()) ++fp.deletes;
  }
  return fp;
}

}  // namespace fsmon::workloads
