// Filebench-like workload (Section V-B).
//
// "We used Filebench to create 50 000 files with sizes following a gamma
// distribution (mean 16 384 bytes and gamma 1.5), a mean directory width
// of 20, and mean directory depth of 3.6. The total size of all files
// generated is 782.8 MB."
//
// The generator reproduces Filebench's fileset construction: a directory
// tree whose widths are sampled around the mean width until the leaf
// count supports the requested file count at the target mean depth, then
// files ("bigfileset/00000001"...) placed uniformly over the leaves with
// gamma-distributed sizes.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/random.hpp"
#include "src/workloads/target.hpp"

namespace fsmon::workloads {

struct FilebenchOptions {
  std::uint64_t files = 50'000;
  double mean_file_size = 16'384;
  double gamma_shape = 1.5;
  double mean_dir_width = 20;
  double mean_dir_depth = 3.6;
  std::string fileset_name = "bigfileset";
  std::uint64_t seed = 1;
};

struct FilebenchReport {
  WorkloadFootprint footprint;
  std::uint64_t directories = 0;
  double mean_depth = 0;  ///< Achieved mean file depth.
};

FilebenchReport run_filebench_create(FsTarget& target, const std::string& base_dir,
                                     const FilebenchOptions& options);

}  // namespace fsmon::workloads
