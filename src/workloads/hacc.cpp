#include "src/workloads/hacc.hpp"

#include <cstdio>

namespace fsmon::workloads {

std::string hacc_file_name(std::uint32_t rank, std::uint32_t processes) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "FPP1-Part%08u-of-%08u.data", rank, processes);
  return buf;
}

WorkloadFootprint run_hacc_io(FsTarget& target, const std::string& base_dir,
                              const HaccIoOptions& options) {
  WorkloadFootprint fp;
  const std::string dir = base_dir + "/hacc-io";
  if (target.mkdir(dir).is_ok()) ++fp.mkdirs;

  const std::uint64_t per_rank_bytes =
      options.particles / options.processes * options.bytes_per_particle;
  for (std::uint32_t rank = 0; rank < options.processes; ++rank) {
    const std::string path = dir + "/" + hacc_file_name(rank, options.processes);
    if (target.create(path).is_ok()) ++fp.creates;
    if (target.write(path, per_rank_bytes).is_ok()) {
      ++fp.modifies;
      fp.bytes_written += per_rank_bytes;
    }
    if (target.close(path).is_ok()) ++fp.closes;
  }
  if (options.cleanup) {
    for (std::uint32_t rank = 0; rank < options.processes; ++rank) {
      const std::string path = dir + "/" + hacc_file_name(rank, options.processes);
      if (target.remove(path).is_ok()) ++fp.deletes;
    }
  }
  return fp;
}

}  // namespace fsmon::workloads
