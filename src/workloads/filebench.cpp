#include "src/workloads/filebench.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace fsmon::workloads {

FilebenchReport run_filebench_create(FsTarget& target, const std::string& base_dir,
                                     const FilebenchOptions& options) {
  FilebenchReport report;
  common::Rng rng(options.seed);

  const std::string root = base_dir + "/" + options.fileset_name;
  if (target.mkdir(root).is_ok()) {
    ++report.footprint.mkdirs;
    ++report.directories;
  }

  // Build the directory tree: levels of directories with widths sampled
  // gamma-like around the mean width, to the integer depth bracketing
  // the requested mean (Filebench's meandirwidth/meandirdepth model).
  const int full_levels = static_cast<int>(std::floor(options.mean_dir_depth)) - 1;
  std::vector<std::string> current{root};
  std::vector<std::string> leaves;
  std::uint64_t needed_leaves = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(static_cast<double>(options.files) / options.mean_dir_width)));
  int depth = 0;
  while (depth < full_levels || leaves.size() < needed_leaves) {
    std::vector<std::string> next;
    for (const auto& dir : current) {
      // Width sampled around the mean; at least 1.
      const double w = rng.next_gamma(4.0, options.mean_dir_width / 4.0);
      const auto width = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(w + 0.5));
      for (std::uint64_t i = 0; i < width; ++i) {
        const std::string sub = dir + "/d" + std::to_string(i);
        if (target.mkdir(sub).is_ok()) {
          ++report.footprint.mkdirs;
          ++report.directories;
          next.push_back(sub);
        }
      }
      if (leaves.size() + next.size() >= needed_leaves && depth >= full_levels) break;
    }
    if (next.empty()) break;
    current = std::move(next);
    ++depth;
    if (depth >= full_levels) {
      leaves.insert(leaves.end(), current.begin(), current.end());
      if (leaves.size() >= needed_leaves) break;
    }
  }
  if (leaves.empty()) leaves.push_back(root);

  // Place the files over the leaves with gamma-distributed sizes.
  const double scale = options.mean_file_size / options.gamma_shape;
  std::uint64_t depth_sum = 0;
  for (std::uint64_t i = 0; i < options.files; ++i) {
    const std::string& leaf = leaves[rng.next_below(leaves.size())];
    char name[24];
    std::snprintf(name, sizeof(name), "%08llu", static_cast<unsigned long long>(i + 1));
    const std::string path = leaf + "/" + name;
    if (target.create(path).is_ok()) ++report.footprint.creates;
    const auto size = static_cast<std::uint64_t>(
        std::max(1.0, rng.next_gamma(options.gamma_shape, scale)));
    if (target.write(path, size).is_ok()) {
      ++report.footprint.modifies;
      report.footprint.bytes_written += size;
    }
    if (target.close(path).is_ok()) ++report.footprint.closes;
    depth_sum += static_cast<std::uint64_t>(
        std::count(path.begin(), path.end(), '/'));
  }
  report.mean_depth =
      options.files == 0
          ? 0.0
          : static_cast<double>(depth_sum) / static_cast<double>(options.files);
  return report;
}

}  // namespace fsmon::workloads
