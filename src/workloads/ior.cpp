#include "src/workloads/ior.hpp"

namespace fsmon::workloads {

WorkloadFootprint run_ior(FsTarget& target, const std::string& base_dir,
                          const IorOptions& options) {
  WorkloadFootprint fp;
  if (target.mkdir(base_dir + "/ior").is_ok()) ++fp.mkdirs;
  if (target.mkdir(base_dir + "/ior/src").is_ok()) ++fp.mkdirs;

  if (options.single_shared_file) {
    const std::string path = base_dir + "/ior/src/" + options.file_name;
    if (target.create(path).is_ok()) ++fp.creates;
    // Every rank writes its block(s) into the shared file.
    std::uint64_t offset_bytes = 0;
    for (std::uint32_t seg = 0; seg < options.segments; ++seg) {
      for (std::uint32_t rank = 0; rank < options.processes; ++rank) {
        offset_bytes += options.block_bytes;
        if (target.write(path, offset_bytes).is_ok()) {
          ++fp.modifies;
          fp.bytes_written += options.block_bytes;
        }
      }
    }
    if (target.close(path).is_ok()) ++fp.closes;
    if (target.remove(path).is_ok()) ++fp.deletes;
    if (target.close(path).is_ok()) ++fp.closes;  // paper shows CLOSE after DELETE
  } else {
    for (std::uint32_t rank = 0; rank < options.processes; ++rank) {
      const std::string path =
          base_dir + "/ior/src/" + options.file_name + "." + std::to_string(rank);
      if (target.create(path).is_ok()) ++fp.creates;
      if (target.write(path, options.block_bytes * options.segments).is_ok()) {
        ++fp.modifies;
        fp.bytes_written += options.block_bytes * options.segments;
      }
      if (target.close(path).is_ok()) ++fp.closes;
    }
    for (std::uint32_t rank = 0; rank < options.processes; ++rank) {
      const std::string path =
          base_dir + "/ior/src/" + options.file_name + "." + std::to_string(rank);
      if (target.remove(path).is_ok()) ++fp.deletes;
    }
  }
  return fp;
}

}  // namespace fsmon::workloads
