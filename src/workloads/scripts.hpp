// The paper's two evaluation scripts (Section V-B).
#pragma once

#include <cstdint>
#include <string>

#include "src/workloads/target.hpp"

namespace fsmon::workloads {

/// Evaluate_Output_Script: "first creates a file hello.txt, then
/// modifies it. It then renames the file from hello.txt to hi.txt.
/// After that, it creates a new directory called okdir. Next, it moves
/// hi.txt to the newly created directory okdir. Finally, it deletes the
/// directory okdir and its contents." Used for the Table II output
/// comparison.
WorkloadFootprint run_evaluate_output_script(FsTarget& target,
                                             const std::string& base_dir);

struct PerformanceScriptOptions {
  std::uint64_t iterations = 1000;
  bool do_create = true;
  bool do_modify = true;  ///< false = the Section V-D3 create+delete variant.
  bool do_delete = true;  ///< false = the Section V-D3 create+modify variant.
  std::uint64_t write_bytes = 1024;
};

/// Evaluate_Performance_Script: "repeatedly creates, modifies, and
/// deletes a file hello.txt, in an infinite loop" — bounded here by
/// `iterations`. With do_delete=false, files are created under unique
/// names (the create+modify variant must not collide).
WorkloadFootprint run_performance_script(FsTarget& target, const std::string& base_dir,
                                         const PerformanceScriptOptions& options);

}  // namespace fsmon::workloads
