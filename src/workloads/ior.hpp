// IOR-like workload (Section V-B).
//
// "IOR is executed with single shared file mode and 128 processes" —
// so the metadata footprint the monitor observes is one create of
// testFileSSF, per-rank writes into the shared file, closes, and one
// delete (Table IX shows exactly the single CREATE/CLOSE ... DELETE/CLOSE
// pair for /ior/src/testFileSSF). File-per-process mode is also
// implemented for completeness.
#pragma once

#include <cstdint>
#include <string>

#include "src/workloads/target.hpp"

namespace fsmon::workloads {

struct IorOptions {
  std::uint32_t processes = 128;
  bool single_shared_file = true;  ///< SSF vs FPP.
  std::uint64_t block_bytes = 1 << 20;
  std::uint32_t segments = 1;
  std::string file_name = "testFileSSF";
};

WorkloadFootprint run_ior(FsTarget& target, const std::string& base_dir,
                          const IorOptions& options);

}  // namespace fsmon::workloads
