#include "src/federation/mount_table.hpp"

namespace fsmon::federation {

using common::ErrorCode;
using common::Result;

std::optional<std::string> MountTable::normalize_prefix(std::string_view prefix) {
  if (prefix.empty() || prefix.front() != '/') return std::nullopt;
  std::string out;
  out.reserve(prefix.size());
  std::size_t i = 0;
  while (i < prefix.size()) {
    while (i < prefix.size() && prefix[i] == '/') ++i;
    if (i >= prefix.size()) break;
    const std::size_t start = i;
    while (i < prefix.size() && prefix[i] != '/') ++i;
    const std::string_view component = prefix.substr(start, i - start);
    if (component == ".") continue;
    if (component == "..") return std::nullopt;  // no escaping the namespace
    out += '/';
    out += component;
  }
  if (out.empty()) out = "/";
  return out;
}

Result<std::uint32_t> MountTable::add(std::string name, std::string prefix) {
  if (name.empty() || name.find(':') != std::string::npos ||
      name.find('/') != std::string::npos) {
    return common::Status(ErrorCode::kInvalid,
                          "mount name must be nonempty without ':' or '/': \"" +
                              name + "\"");
  }
  auto normalized = normalize_prefix(prefix);
  if (!normalized) {
    return common::Status(ErrorCode::kInvalid,
                          "mount prefix must be an absolute path: \"" + prefix + "\"");
  }
  for (const auto& entry : entries_) {
    if (entry.name == name)
      return common::Status(ErrorCode::kAlreadyExists, "mount name in use: " + name);
    if (entry.prefix == *normalized)
      return common::Status(ErrorCode::kAlreadyExists,
                            "mount prefix in use: " + *normalized);
  }
  if (next_id_ > kMaxMountId) {
    return common::Status(ErrorCode::kUnavailable, "mount id space exhausted");
  }
  const std::uint32_t id = next_id_++;
  entries_.push_back(MountEntry{id, std::move(name), std::move(*normalized)});
  return id;
}

bool MountTable::remove(std::uint32_t id) {
  const std::size_t before = entries_.size();
  std::erase_if(entries_, [&](const MountEntry& e) { return e.id == id; });
  return entries_.size() != before;
}

const MountEntry* MountTable::find(std::uint32_t id) const {
  for (const auto& entry : entries_) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

const MountEntry* MountTable::find_name(std::string_view name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::optional<MountTable::Resolution> MountTable::resolve(
    std::string_view global_path) const {
  const MountEntry* best = nullptr;
  for (const auto& entry : entries_) {
    const std::string& prefix = entry.prefix;
    // Component-boundary match: the path IS the prefix, or continues
    // with '/'. "/mnt/ab" must not fall under "/mnt/a".
    bool matches = false;
    if (prefix == "/") {
      matches = !global_path.empty() && global_path.front() == '/';
    } else if (global_path.size() == prefix.size()) {
      matches = global_path == prefix;
    } else if (global_path.size() > prefix.size()) {
      matches = global_path.substr(0, prefix.size()) == prefix &&
                global_path[prefix.size()] == '/';
    }
    if (matches && (best == nullptr || prefix.size() > best->prefix.size()))
      best = &entry;
  }
  if (best == nullptr) return std::nullopt;
  Resolution resolution;
  resolution.mount_id = best->id;
  if (best->prefix == "/") {
    resolution.local_path = std::string(global_path);
  } else if (global_path.size() == best->prefix.size()) {
    resolution.local_path = "/";
  } else {
    resolution.local_path = std::string(global_path.substr(best->prefix.size()));
  }
  return resolution;
}

std::string MountTable::federate_path(std::uint32_t id,
                                      std::string_view local_path) const {
  const MountEntry* entry = find(id);
  if (entry == nullptr) return std::string(local_path);
  std::string local(local_path);
  if (local.empty()) local = "/";
  if (local.front() != '/') local.insert(local.begin(), '/');
  if (entry->prefix == "/") return local;
  if (local == "/") return entry->prefix;  // the mount root collapses
  return entry->prefix + local;
}

std::uint64_t MountTable::federate_cookie(std::uint32_t id,
                                          std::uint64_t cookie) const {
  if (cookie == 0) return 0;
  const std::uint64_t domain = static_cast<std::uint64_t>(id) + 1;
  // Fold any bits above the 48-bit local field back in so two distinct
  // local cookies in one mount stay distinct with high probability and
  // two mounts can never collide (their domain tags differ regardless).
  const std::uint64_t local =
      (cookie & kLocalCookieMask) ^ (cookie >> kDomainShift);
  return (domain << kDomainShift) | (local == 0 ? 1 : local);
}

std::optional<std::uint32_t> MountTable::cookie_domain(std::uint64_t federated) {
  const std::uint64_t domain = federated >> kDomainShift;
  if (domain == 0) return std::nullopt;
  return static_cast<std::uint32_t>(domain - 1);
}

std::string MountTable::federate_source(std::uint32_t id,
                                        std::string_view source) const {
  const MountEntry* entry = find(id);
  if (entry == nullptr) return std::string(source);
  return entry->name + ":" + std::string(source);
}

}  // namespace fsmon::federation
