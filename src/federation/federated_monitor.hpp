// FederatedMonitor: heterogeneous DSIs under one aggregated namespace.
//
// "FSMonitor provides ... a modular architecture via which arbitrary
// monitoring interfaces can be integrated" (Section III-A1). The
// federation tier takes that one step further: several DSIs — the
// scalable Lustre monitor, the Spectrum Scale FAL consumer, the local
// platform dialects, real inotify — run side by side, each mounted
// under a federated prefix, and every event they emit is translated
// into ONE namespace before delivery:
//
//   path    -> mount prefix + backend-local full path (watch_root
//              becomes the mount prefix, so full_path() is federated)
//   source  -> "mountname:" + backend source
//   cookie  -> mount-domain-tagged (MountTable::federate_cookie), so
//              rename cookies / changelog indexes from different
//              backends can never collide
//   id      -> one dense federated sequence 1,2,3,... across all
//              mounts, assigned at delivery
//
// Unmount is tombstoned, not erased: a DSI whose worker is still
// replaying when the mount is withdrawn keeps a live callback for a
// moment, and those in-flight events must be counted (mount.stale_
// events), not delivered into the namespace and not crash the monitor.
//
// Per-mount instruments (docs/OBSERVABILITY.md): mount.events,
// mount.stale_events, mount.active.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/core/dsi.hpp"
#include "src/federation/mount_table.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::federation {

struct FederatedMonitorOptions {
  /// Observability registry; null = uninstrumented.
  obs::MetricsRegistry* metrics = nullptr;
};

class FederatedMonitor {
 public:
  using EventCallback = std::function<void(const core::StdEvent&)>;

  explicit FederatedMonitor(FederatedMonitorOptions options = {});
  ~FederatedMonitor();

  FederatedMonitor(const FederatedMonitor&) = delete;
  FederatedMonitor& operator=(const FederatedMonitor&) = delete;

  /// Mount `dsi` under `prefix`. The monitor owns the DSI. When the
  /// monitor is running the DSI is started immediately; otherwise it
  /// starts with start(). Returns the mount id.
  common::Result<std::uint32_t> mount(std::string name, std::string prefix,
                                      std::unique_ptr<core::DsiBase> dsi);

  /// Withdraw a mount from the namespace, then stop its DSI. The order
  /// matters: events the DSI delivers between withdrawal and the stop
  /// completing (a replay in flight) are counted as stale and dropped
  /// rather than delivered under a prefix that no longer exists.
  common::Status unmount(std::uint32_t id);

  common::Status start();
  void stop();
  bool running() const { return running_; }

  /// Register a federated-stream subscriber; returns a token for
  /// unsubscribe(). Callbacks run on the emitting DSI's thread,
  /// serialized across mounts (the dense id order IS delivery order).
  std::uint64_t subscribe(EventCallback callback);
  void unsubscribe(std::uint64_t token);

  /// Namespace map (snapshot semantics: copy taken under the lock).
  MountTable mounts() const;
  std::optional<MountTable::Resolution> resolve(std::string_view path) const;

  /// The mounted DSI, or null after unmount / for unknown ids. The
  /// pointer stays valid until the monitor is destroyed (tombstones
  /// keep ownership).
  core::DsiBase* dsi(std::uint32_t id);

  std::uint64_t events_federated() const { return events_.load(); }
  std::uint64_t stale_events() const { return stale_.load(); }
  /// Last federated event id assigned (== events_federated()).
  std::uint64_t last_event_id() const { return next_id_.load(); }
  std::size_t mount_count() const;

 private:
  struct Mount {
    std::uint32_t id = 0;
    std::string name;
    std::string prefix;
    std::unique_ptr<core::DsiBase> dsi;
    bool active = false;   ///< In the table; events are delivered.
    bool started = false;  ///< DSI capture running.
    obs::Counter* events = nullptr;
    obs::Counter* stale = nullptr;
    obs::Gauge* active_gauge = nullptr;
  };

  common::Status start_mount_locked(Mount& mount);
  void on_event(std::uint32_t mount_id, core::StdEvent event);

  FederatedMonitorOptions options_;
  mutable std::mutex mu_;         ///< Mount/subscriber bookkeeping.
  std::mutex delivery_mu_;        ///< Serializes translate + deliver.
  MountTable table_;
  std::vector<std::unique_ptr<Mount>> mounts_;  // active and tombstoned
  std::vector<std::pair<std::uint64_t, EventCallback>> subscribers_;
  std::uint64_t next_token_ = 1;
  bool running_ = false;
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> stale_{0};
};

}  // namespace fsmon::federation
