// Mount table: the namespace map of the federation tier.
//
// The paper pitches FSMonitor as "scalable file system monitoring for
// arbitrary storage systems": one monitoring namespace over whatever
// mix of backends a site runs — a Lustre scratch system, a Spectrum
// Scale project store, local scratch disks watched through inotify.
// The mount table is the piece that makes the mix one namespace: each
// backend is mounted under a federated prefix ("/mnt/lustre0"), and
// the table owns the two translations every federated event and query
// crosses:
//
//   - Paths. Backend-local paths are prefixed with the mount point on
//     the way up; federated paths resolve back to (mount, local path)
//     on the way down. Resolution is longest-prefix at COMPONENT
//     boundaries: "/mnt/a" owns "/mnt/a" and "/mnt/a/x" but never
//     "/mnt/ab/x" (the same class of bug as matching "sub" against
//     "sub.txt" in the subscription index).
//
//   - Cookies. Rename cookies and changelog record indexes are only
//     unique within one backend; two mounts can both emit cookie 7.
//     federate_cookie() tags the mount's domain into the top 16 bits
//     so ids from different backends cannot collide, and cookie 0
//     (the "no cookie" sentinel every dialect uses) stays 0.
//
// Sources are prefixed the same way ("lustre0:lustre:MDT2") so the
// per-source dedup and ack machinery upstream keeps working per mount.
//
// The table itself is a plain value type; FederatedMonitor serializes
// access to it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.hpp"

namespace fsmon::federation {

struct MountEntry {
  std::uint32_t id = 0;
  std::string name;    ///< Unique label, no ':' or '/' (prefixes sources).
  std::string prefix;  ///< Normalized federated mount point, e.g. "/mnt/a".
};

class MountTable {
 public:
  /// Top 16 bits of a federated cookie carry (mount id + 1); the low 48
  /// bits carry the backend-local cookie. +1 keeps domain 0 free so an
  /// untagged cookie is distinguishable from mount 0's.
  static constexpr int kDomainShift = 48;
  static constexpr std::uint64_t kLocalCookieMask = (std::uint64_t{1} << kDomainShift) - 1;
  /// Largest mountable id: (id + 1) must fit the 16-bit domain field.
  static constexpr std::uint32_t kMaxMountId = 0xFFFE;

  /// Register a mount. Rejects empty/illegal names ("name" becomes a
  /// source prefix, so ':' and '/' are forbidden), duplicate names,
  /// unnormalizable prefixes, and a prefix already mounted. Nested
  /// prefixes ("/mnt" and "/mnt/a") are allowed; resolve() picks the
  /// longest. Returns the new mount id.
  common::Result<std::uint32_t> add(std::string name, std::string prefix);

  /// Unregister; false when the id is unknown. Ids are never reused.
  bool remove(std::uint32_t id);

  const MountEntry* find(std::uint32_t id) const;
  const MountEntry* find_name(std::string_view name) const;
  std::size_t size() const { return entries_.size(); }
  const std::vector<MountEntry>& entries() const { return entries_; }

  struct Resolution {
    std::uint32_t mount_id = 0;
    std::string local_path;  ///< Always absolute; "/" for the mount root.
  };

  /// Map a federated path to the owning mount: longest matching prefix,
  /// matched only at component boundaries. nullopt when no mount owns
  /// the path.
  std::optional<Resolution> resolve(std::string_view global_path) const;

  /// Mount-local absolute path -> federated path (prefix + local, with
  /// the mount root itself collapsing to the bare prefix).
  std::string federate_path(std::uint32_t id, std::string_view local_path) const;

  /// Tag the mount's cookie domain into a backend-local cookie; 0 stays
  /// 0 (no-cookie sentinel). Local cookies wider than 48 bits are
  /// folded into the local field (XOR of the overflowing high bits) so
  /// distinct mounts still never collide.
  std::uint64_t federate_cookie(std::uint32_t id, std::uint64_t cookie) const;

  /// Mount id encoded in a federated cookie; nullopt for 0 / untagged.
  static std::optional<std::uint32_t> cookie_domain(std::uint64_t federated);
  /// Backend-local 48-bit cookie field of a federated cookie.
  static std::uint64_t local_cookie(std::uint64_t federated) {
    return federated & kLocalCookieMask;
  }

  /// "name:source" — keeps per-source streams from different mounts
  /// distinct through every (source, cookie)-keyed layer above.
  std::string federate_source(std::uint32_t id, std::string_view source) const;

  /// Canonical prefix form: absolute, no trailing slash (except "/"
  /// itself), no empty or "." components. nullopt when not absolute.
  static std::optional<std::string> normalize_prefix(std::string_view prefix);

 private:
  std::vector<MountEntry> entries_;  // sorted by insertion; ids dense from 0
  std::uint32_t next_id_ = 0;
};

}  // namespace fsmon::federation
