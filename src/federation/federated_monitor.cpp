#include "src/federation/federated_monitor.hpp"

namespace fsmon::federation {

using common::ErrorCode;
using common::Result;
using common::Status;

FederatedMonitor::FederatedMonitor(FederatedMonitorOptions options)
    : options_(options) {}

FederatedMonitor::~FederatedMonitor() { stop(); }

Result<std::uint32_t> FederatedMonitor::mount(std::string name, std::string prefix,
                                              std::unique_ptr<core::DsiBase> dsi) {
  if (dsi == nullptr) return Status(ErrorCode::kInvalid, "mount: null DSI");
  std::lock_guard lock(mu_);
  auto id = table_.add(name, prefix);
  if (!id) return id.status();
  auto mount = std::make_unique<Mount>();
  mount->id = id.value();
  mount->name = table_.find(id.value())->name;
  mount->prefix = table_.find(id.value())->prefix;
  mount->dsi = std::move(dsi);
  mount->active = true;
  if (options_.metrics != nullptr) {
    const obs::Labels labels{{"mount", mount->name}};
    mount->events = &options_.metrics->counter(
        "mount.events", labels,
        "Events federated into the aggregate namespace from this mount", "events");
    mount->stale = &options_.metrics->counter(
        "mount.stale_events", labels,
        "Events dropped because they arrived after the mount was withdrawn "
        "(unmount while a replay was in flight)",
        "events");
    mount->active_gauge = &options_.metrics->gauge(
        "mount.active", labels, "1 while the mount is in the namespace, 0 after unmount");
    mount->active_gauge->set(1);
  }
  if (running_) {
    if (auto s = start_mount_locked(*mount); !s.is_ok()) {
      table_.remove(mount->id);
      return s;
    }
  }
  mounts_.push_back(std::move(mount));
  return id;
}

Status FederatedMonitor::unmount(std::uint32_t id) {
  core::DsiBase* dsi = nullptr;
  {
    std::lock_guard lock(mu_);
    Mount* found = nullptr;
    for (auto& mount : mounts_) {
      if (mount->id == id && mount->active) {
        found = mount.get();
        break;
      }
    }
    if (found == nullptr) return Status(ErrorCode::kNotFound, "unmount: unknown mount");
    // Withdraw from the namespace FIRST: anything the DSI still emits
    // between here and stop() completing is stale by definition.
    found->active = false;
    if (found->active_gauge != nullptr) found->active_gauge->set(0);
    table_.remove(id);
    if (found->started) {
      found->started = false;
      dsi = found->dsi.get();
    }
  }
  // Stop outside the lock: stop() joins capture threads that may be
  // blocked in on_event waiting for mu_.
  if (dsi != nullptr) dsi->stop();
  return Status::ok();
}

Status FederatedMonitor::start_mount_locked(Mount& mount) {
  if (mount.started) return Status::ok();
  const std::uint32_t id = mount.id;
  auto status = mount.dsi->start(
      [this, id](core::StdEvent event) { on_event(id, std::move(event)); });
  if (status.is_ok()) mount.started = true;
  return status;
}

Status FederatedMonitor::start() {
  std::lock_guard lock(mu_);
  for (auto& mount : mounts_) {
    if (!mount->active) continue;
    if (auto s = start_mount_locked(*mount); !s.is_ok()) return s;
  }
  running_ = true;
  return Status::ok();
}

void FederatedMonitor::stop() {
  std::vector<core::DsiBase*> to_stop;
  {
    std::lock_guard lock(mu_);
    if (!running_ && mounts_.empty()) return;
    running_ = false;
    for (auto& mount : mounts_) {
      if (mount->started) {
        mount->started = false;
        to_stop.push_back(mount->dsi.get());
      }
    }
  }
  for (auto* dsi : to_stop) dsi->stop();
}

std::uint64_t FederatedMonitor::subscribe(EventCallback callback) {
  std::lock_guard lock(mu_);
  const std::uint64_t token = next_token_++;
  subscribers_.emplace_back(token, std::move(callback));
  return token;
}

void FederatedMonitor::unsubscribe(std::uint64_t token) {
  std::lock_guard lock(mu_);
  std::erase_if(subscribers_, [&](const auto& entry) { return entry.first == token; });
}

MountTable FederatedMonitor::mounts() const {
  std::lock_guard lock(mu_);
  return table_;
}

std::optional<MountTable::Resolution> FederatedMonitor::resolve(
    std::string_view path) const {
  std::lock_guard lock(mu_);
  return table_.resolve(path);
}

core::DsiBase* FederatedMonitor::dsi(std::uint32_t id) {
  std::lock_guard lock(mu_);
  for (auto& mount : mounts_) {
    if (mount->id == id) return mount->dsi.get();
  }
  return nullptr;
}

std::size_t FederatedMonitor::mount_count() const {
  std::lock_guard lock(mu_);
  return table_.size();
}

void FederatedMonitor::on_event(std::uint32_t mount_id, core::StdEvent event) {
  // delivery_mu_ makes (dense id assignment, delivery) atomic across
  // mounts: the federated id order IS the order subscribers observe.
  std::lock_guard delivery(delivery_mu_);
  std::vector<EventCallback> callbacks;
  {
    std::lock_guard lock(mu_);
    Mount* mount = nullptr;
    for (auto& candidate : mounts_) {
      if (candidate->id == mount_id) {
        mount = candidate.get();
        break;
      }
    }
    if (mount == nullptr || !mount->active) {
      // Unmount-while-replaying: the DSI's worker was still flushing
      // when the mount was withdrawn. Count, never deliver.
      stale_.fetch_add(1, std::memory_order_relaxed);
      if (mount != nullptr && mount->stale != nullptr) mount->stale->inc();
      return;
    }
    // Translate into the federated namespace. The backend-local FULL
    // path (watch_root + path) moves under the mount prefix; the prefix
    // becomes the watch root, so full_path() is the federated path and
    // `path` stays mount-local. Sentinel paths (ParentDirectoryRemoved,
    // overflow markers) are not locations and pass through untouched.
    if (event.has_path()) {
      std::string local = event.full_path();
      if (local.empty() || local.front() != '/') local.insert(local.begin(), '/');
      event.watch_root = mount->prefix == "/" ? "" : mount->prefix;
      event.path = std::move(local);
    } else {
      event.watch_root = mount->prefix == "/" ? "" : mount->prefix;
    }
    event.cookie = table_.federate_cookie(mount_id, event.cookie);
    event.source = mount->name + ":" + event.source;
    if (mount->events != nullptr) mount->events->inc();
    callbacks.reserve(subscribers_.size());
    for (const auto& [token, callback] : subscribers_) callbacks.push_back(callback);
  }
  event.id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  events_.fetch_add(1, std::memory_order_relaxed);
  // Deliver without mu_ so callbacks may subscribe/unsubscribe/mount.
  for (const auto& callback : callbacks) callback(event);
}

}  // namespace fsmon::federation
