// TCP transport for the pub/sub message queue.
//
// The in-process Bus covers single-process deployments; this transport
// carries the same CRC-framed messages over sockets so collectors on
// MDS nodes can publish to an aggregator on the MGS across hosts, like
// the paper's ZeroMQ deployment. The protocol is deliberately minimal:
//
//   subscriber -> publisher:  control frame, topic "\x01sub",   payload = prefix
//                             control frame, topic "\x01unsub", payload = prefix
//   publisher -> subscriber:  data frames (topic + payload)
//
// A TcpPublisher accepts any number of subscriber connections and
// forwards each published message to every connection whose filter set
// matches. A TcpSubscriber connects, registers its filters, and exposes
// the familiar recv()/try_recv() inbox.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bounded_queue.hpp"
#include "src/common/random.hpp"
#include "src/common/status.hpp"
#include "src/common/types.hpp"
#include "src/msgq/message.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::msgq {

/// Topics with this prefix are transport control frames, never user data.
inline constexpr char kControlPrefix = '\x01';

/// Instrument handles shared by every connection of one endpoint
/// (msgq.tcp.*). Owned by the publisher/subscriber, outliving its
/// connections.
struct TcpMetrics {
  obs::Counter* bytes_sent = nullptr;
  obs::Counter* bytes_received = nullptr;
  obs::Counter* frames_sent = nullptr;
  obs::Counter* frames_received = nullptr;

  static TcpMetrics create(obs::MetricsRegistry& registry, const obs::Labels& labels);
};

/// Framed, blocking, length-prefixed message I/O over one socket.
class TcpConnection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  common::Status send(const Message& message);

  /// Blocking receive of one frame; kUnavailable on orderly close,
  /// kCorrupt on framing/CRC errors.
  common::Result<Message> recv();

  /// `metrics` (optional) must outlive the connection.
  void set_metrics(const TcpMetrics* metrics) { metrics_ = metrics; }

  /// Shut the socket down (wakes any thread blocked in send()/recv()).
  /// The descriptor itself is released by the destructor, once no other
  /// thread can still be using it — closing it here would race with a
  /// concurrent ::recv and could hand that thread a recycled fd.
  void close();
  bool closed() const { return closed_.load(); }

 private:
  const int fd_;
  std::atomic<bool> closed_{false};
  std::mutex send_mu_;
  std::vector<std::byte> recv_buffer_;
  const TcpMetrics* metrics_ = nullptr;
};

/// Publishing endpoint: listens on a port and fans out to connected,
/// filtered subscribers.
class TcpPublisher {
 public:
  TcpPublisher() = default;
  ~TcpPublisher();

  TcpPublisher(const TcpPublisher&) = delete;
  TcpPublisher& operator=(const TcpPublisher&) = delete;

  /// Bind and listen on 127.0.0.1:`port` (0 = ephemeral) and start the
  /// accept thread.
  common::Status start(std::uint16_t port = 0);
  void stop();

  /// Register msgq.tcp.* instruments (labelled e.g. endpoint=...). Call
  /// before start(); connections accepted afterwards are counted.
  void attach_metrics(obs::MetricsRegistry& registry, const obs::Labels& labels = {});

  std::uint16_t port() const { return port_; }
  std::size_t connection_count() const;
  /// Subscription filters registered across all live connections. Lets a
  /// caller that just told a subscriber to dial-and-subscribe wait until
  /// the sub control frames have actually been processed.
  std::size_t subscription_count() const;

  /// Send to every connection with a matching filter; returns receivers.
  std::size_t publish(const Message& message);
  std::size_t publish(std::string topic, std::string payload) {
    return publish(Message{std::move(topic), std::move(payload)});
  }

  /// Application-level control frames: any control topic other than
  /// sub/unsub is handed here (e.g. "\x01replay"), together with the
  /// originating connection so the handler can reply point-to-point.
  /// Set before start(); runs on that connection's reader thread.
  using ControlHandler =
      std::function<void(const Message&, const std::shared_ptr<TcpConnection>&)>;
  void set_control_handler(ControlHandler handler) { control_handler_ = std::move(handler); }

 private:
  struct Remote {
    std::shared_ptr<TcpConnection> connection;
    std::vector<std::string> filters;
    std::jthread reader;  // consumes control frames
  };

  void accept_loop(std::stop_token stop);
  void control_loop(std::stop_token stop, std::shared_ptr<TcpConnection> connection,
                    std::size_t index);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::jthread accept_thread_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Remote>> remotes_;
  std::atomic<bool> running_{false};
  TcpMetrics metrics_;  ///< Zeroed when uninstrumented.
  ControlHandler control_handler_;
};

/// Connection-lifetime knobs for TcpSubscriber. With auto_reconnect the
/// subscriber survives publisher restarts: when the socket dies it
/// re-dials with exponential backoff plus deterministic jitter (seeded,
/// so chaos runs replay identically), re-registers its subscription
/// filters, and resumes filling the same inbox. Frames the publisher
/// sent while the link was down are gone — recovering them is the
/// application's job (RemoteConsumer requests a replay).
struct TcpSubscriberOptions {
  std::size_t high_water_mark = 1 << 16;
  common::OverflowPolicy overflow_policy = common::OverflowPolicy::kBlock;
  bool auto_reconnect = false;
  common::Duration backoff_initial = std::chrono::milliseconds(10);
  common::Duration backoff_max = std::chrono::seconds(1);
  /// Each wait is scaled by a factor in [1-jitter, 1+jitter].
  double backoff_jitter = 0.25;
  std::uint64_t reconnect_seed = 1;
  /// Consecutive failed dials before giving up; 0 = retry forever
  /// (until disconnect()).
  std::size_t max_attempts = 0;
};

/// Subscribing endpoint: connects to a TcpPublisher and buffers incoming
/// data frames.
class TcpSubscriber {
 public:
  explicit TcpSubscriber(std::size_t high_water_mark = 1 << 16,
                         common::OverflowPolicy policy = common::OverflowPolicy::kBlock)
      : TcpSubscriber(TcpSubscriberOptions{high_water_mark, policy}) {}
  explicit TcpSubscriber(TcpSubscriberOptions options)
      : options_(options),
        inbox_(options.high_water_mark, options.overflow_policy),
        backoff_rng_(options.reconnect_seed) {}
  ~TcpSubscriber();

  TcpSubscriber(const TcpSubscriber&) = delete;
  TcpSubscriber& operator=(const TcpSubscriber&) = delete;

  common::Status connect(const std::string& host, std::uint16_t port);
  void disconnect();

  /// Register msgq.tcp.* instruments (labelled e.g. endpoint=...).
  /// Effective for the current connection and any later connect().
  void attach_metrics(obs::MetricsRegistry& registry, const obs::Labels& labels = {});

  /// The prefix is remembered so auto-reconnect can re-register it.
  common::Status subscribe(const std::string& prefix);
  common::Status unsubscribe(const std::string& prefix);

  /// Send an application control frame (topic must start with
  /// kControlPrefix) to the publisher, e.g. a replay request.
  common::Status send_control(const Message& message);

  /// Invoked on the reader thread after every successful reconnect (the
  /// subscription filters are already re-registered). Set before
  /// connect().
  void set_reconnect_callback(std::function<void()> callback) {
    reconnect_callback_ = std::move(callback);
  }

  std::optional<Message> recv() { return inbox_.pop(); }
  std::optional<Message> recv_for(std::chrono::milliseconds timeout) {
    return inbox_.pop_for(timeout);
  }
  std::optional<Message> try_recv() { return inbox_.try_pop(); }
  std::size_t pending() const { return inbox_.size(); }
  bool connected() const {
    std::lock_guard lock(mu_);
    return connection_ != nullptr && !connection_->closed();
  }
  /// Successful automatic reconnects since connect().
  std::uint64_t reconnects() const { return reconnects_.load(); }

 private:
  void reader_loop(std::stop_token stop);
  /// Backoff-dial until a new connection is live (filters re-sent) or
  /// the subscriber is told to stop. Returns false to end the reader.
  bool run_reconnect(const std::stop_token& stop);
  std::shared_ptr<TcpConnection> current_connection() const {
    std::lock_guard lock(mu_);
    return connection_;
  }

  TcpSubscriberOptions options_;
  std::string host_;
  std::uint16_t port_ = 0;
  mutable std::mutex mu_;  ///< Guards connection_ and subscriptions_.
  std::shared_ptr<TcpConnection> connection_;
  std::vector<std::string> subscriptions_;
  std::jthread reader_;
  common::BoundedQueue<Message> inbox_;
  std::atomic<bool> disconnecting_{false};
  std::atomic<std::uint64_t> reconnects_{0};
  common::Rng backoff_rng_;  ///< Only touched by the reader thread.
  std::function<void()> reconnect_callback_;
  TcpMetrics metrics_;  ///< Zeroed when uninstrumented.
  obs::Counter* reconnects_counter_ = nullptr;
};

}  // namespace fsmon::msgq
