// TCP transport for the pub/sub message queue.
//
// The in-process Bus covers single-process deployments; this transport
// carries the same CRC-framed messages over sockets so collectors on
// MDS nodes can publish to an aggregator on the MGS across hosts, like
// the paper's ZeroMQ deployment. The protocol is deliberately minimal:
//
//   subscriber -> publisher:  control frame, topic "\x01sub",   payload = prefix
//                             control frame, topic "\x01unsub", payload = prefix
//   publisher -> subscriber:  data frames (topic + payload)
//
// A TcpPublisher accepts any number of subscriber connections and
// forwards each published message to every connection whose filter set
// matches. A TcpSubscriber connects, registers its filters, and exposes
// the familiar recv()/try_recv() inbox.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bounded_queue.hpp"
#include "src/common/status.hpp"
#include "src/msgq/message.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::msgq {

/// Topics with this prefix are transport control frames, never user data.
inline constexpr char kControlPrefix = '\x01';

/// Instrument handles shared by every connection of one endpoint
/// (msgq.tcp.*). Owned by the publisher/subscriber, outliving its
/// connections.
struct TcpMetrics {
  obs::Counter* bytes_sent = nullptr;
  obs::Counter* bytes_received = nullptr;
  obs::Counter* frames_sent = nullptr;
  obs::Counter* frames_received = nullptr;

  static TcpMetrics create(obs::MetricsRegistry& registry, const obs::Labels& labels);
};

/// Framed, blocking, length-prefixed message I/O over one socket.
class TcpConnection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  common::Status send(const Message& message);

  /// Blocking receive of one frame; kUnavailable on orderly close,
  /// kCorrupt on framing/CRC errors.
  common::Result<Message> recv();

  /// `metrics` (optional) must outlive the connection.
  void set_metrics(const TcpMetrics* metrics) { metrics_ = metrics; }

  /// Shut the socket down (wakes any thread blocked in send()/recv()).
  /// The descriptor itself is released by the destructor, once no other
  /// thread can still be using it — closing it here would race with a
  /// concurrent ::recv and could hand that thread a recycled fd.
  void close();
  bool closed() const { return closed_.load(); }

 private:
  const int fd_;
  std::atomic<bool> closed_{false};
  std::mutex send_mu_;
  std::vector<std::byte> recv_buffer_;
  const TcpMetrics* metrics_ = nullptr;
};

/// Publishing endpoint: listens on a port and fans out to connected,
/// filtered subscribers.
class TcpPublisher {
 public:
  TcpPublisher() = default;
  ~TcpPublisher();

  TcpPublisher(const TcpPublisher&) = delete;
  TcpPublisher& operator=(const TcpPublisher&) = delete;

  /// Bind and listen on 127.0.0.1:`port` (0 = ephemeral) and start the
  /// accept thread.
  common::Status start(std::uint16_t port = 0);
  void stop();

  /// Register msgq.tcp.* instruments (labelled e.g. endpoint=...). Call
  /// before start(); connections accepted afterwards are counted.
  void attach_metrics(obs::MetricsRegistry& registry, const obs::Labels& labels = {});

  std::uint16_t port() const { return port_; }
  std::size_t connection_count() const;

  /// Send to every connection with a matching filter; returns receivers.
  std::size_t publish(const Message& message);
  std::size_t publish(std::string topic, std::string payload) {
    return publish(Message{std::move(topic), std::move(payload)});
  }

 private:
  struct Remote {
    std::shared_ptr<TcpConnection> connection;
    std::vector<std::string> filters;
    std::jthread reader;  // consumes control frames
  };

  void accept_loop(std::stop_token stop);
  void control_loop(std::stop_token stop, std::shared_ptr<TcpConnection> connection,
                    std::size_t index);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::jthread accept_thread_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Remote>> remotes_;
  std::atomic<bool> running_{false};
  TcpMetrics metrics_;  ///< Zeroed when uninstrumented.
};

/// Subscribing endpoint: connects to a TcpPublisher and buffers incoming
/// data frames.
class TcpSubscriber {
 public:
  explicit TcpSubscriber(std::size_t high_water_mark = 1 << 16,
                         common::OverflowPolicy policy = common::OverflowPolicy::kBlock)
      : inbox_(high_water_mark, policy) {}
  ~TcpSubscriber();

  TcpSubscriber(const TcpSubscriber&) = delete;
  TcpSubscriber& operator=(const TcpSubscriber&) = delete;

  common::Status connect(const std::string& host, std::uint16_t port);
  void disconnect();

  /// Register msgq.tcp.* instruments (labelled e.g. endpoint=...).
  /// Effective for the current connection and any later connect().
  void attach_metrics(obs::MetricsRegistry& registry, const obs::Labels& labels = {});

  common::Status subscribe(const std::string& prefix);
  common::Status unsubscribe(const std::string& prefix);

  std::optional<Message> recv() { return inbox_.pop(); }
  std::optional<Message> try_recv() { return inbox_.try_pop(); }
  std::size_t pending() const { return inbox_.size(); }
  bool connected() const { return connection_ != nullptr && !connection_->closed(); }

 private:
  void reader_loop(std::stop_token stop);

  std::shared_ptr<TcpConnection> connection_;
  std::jthread reader_;
  common::BoundedQueue<Message> inbox_;
  TcpMetrics metrics_;  ///< Zeroed when uninstrumented.
};

}  // namespace fsmon::msgq
