#include "src/msgq/tcp.hpp"

#include <algorithm>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "src/common/crc32.hpp"
#include "src/common/logging.hpp"

namespace fsmon::msgq {

using common::ErrorCode;
using common::Result;
using common::Status;

namespace {

Status errno_status(const std::string& what) {
  return Status(ErrorCode::kUnavailable, what + ": " + std::strerror(errno));
}

/// Dial 127.0.0.1-style `host`:`port`; returns the connected fd.
common::Result<int> open_socket(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_status("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status(ErrorCode::kInvalid, "bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return errno_status("connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Scatter-gather write of the whole iovec array, advancing across
/// partial writes. sendmsg rather than writev so MSG_NOSIGNAL still
/// suppresses SIGPIPE on a vanished peer.
bool write_gather(int fd, iovec* iov, std::size_t iovcnt) {
  while (iovcnt > 0) {
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iovcnt;
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    std::size_t advanced = static_cast<std::size_t>(n);
    while (iovcnt > 0 && advanced >= iov->iov_len) {
      advanced -= iov->iov_len;
      ++iov;
      --iovcnt;
    }
    if (iovcnt > 0) {
      iov->iov_base = static_cast<char*>(iov->iov_base) + advanced;
      iov->iov_len -= advanced;
    }
  }
  return true;
}

void put_u32_le(std::byte* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
}

}  // namespace

TcpMetrics TcpMetrics::create(obs::MetricsRegistry& registry, const obs::Labels& labels) {
  TcpMetrics m;
  m.bytes_sent = &registry.counter("msgq.tcp.bytes_sent", labels,
                                   "Framed bytes written to TCP peers", "bytes");
  m.bytes_received = &registry.counter("msgq.tcp.bytes_received", labels,
                                       "Bytes read from TCP peers", "bytes");
  m.frames_sent = &registry.counter("msgq.tcp.frames_sent", labels,
                                    "Messages sent over TCP connections", "frames");
  m.frames_received = &registry.counter("msgq.tcp.frames_received", labels,
                                        "Messages decoded from TCP connections", "frames");
  return m;
}

TcpConnection::~TcpConnection() {
  close();
  if (fd_ >= 0) ::close(fd_);
}

void TcpConnection::close() {
  if (!closed_.exchange(true) && fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status TcpConnection::send(const Message& message) {
  if (closed_.load()) return Status(ErrorCode::kUnavailable, "connection closed");
  // Scatter-gather the wire frame (u32 topic_len | topic | u32 payload_len
  // | payload | u32 crc) straight from the message's own buffers: only the
  // 12 header/trailer bytes plus the topic are materialized here — the
  // payload never passes through an assembly buffer, and the CRC trailer
  // is computed in chunks over header-then-payload.
  const std::string_view body = message.bytes();
  if (message.topic.size() > (1u << 30) || body.size() > (1u << 30))
    return Status(ErrorCode::kInvalid, "msgq frame too large");
  std::vector<std::byte> header(8 + message.topic.size());
  put_u32_le(header.data(), static_cast<std::uint32_t>(message.topic.size()));
  std::memcpy(header.data() + 4, message.topic.data(), message.topic.size());
  put_u32_le(header.data() + 4 + message.topic.size(),
             static_cast<std::uint32_t>(body.size()));
  std::uint32_t crc = common::crc32(std::span<const std::byte>(header));
  crc = common::crc32(message.byte_span(), crc);
  std::byte trailer[4];
  put_u32_le(trailer, crc);
  iovec iov[3];
  iov[0] = {header.data(), header.size()};
  iov[1] = {const_cast<char*>(body.data()), body.size()};
  iov[2] = {trailer, sizeof(trailer)};
  const std::size_t total = header.size() + body.size() + sizeof(trailer);
  std::lock_guard lock(send_mu_);
  if (!write_gather(fd_, iov, 3)) {
    close();
    return errno_status("send");
  }
  if (metrics_ != nullptr) {
    metrics_->frames_sent->inc();
    metrics_->bytes_sent->inc(total);
  }
  return Status::ok();
}

Result<Message> TcpConnection::recv() {
  std::byte chunk[4096];
  for (;;) {
    // Try to decode what we already have.
    try {
      if (auto decoded = decode_frame(std::span(recv_buffer_.data(), recv_buffer_.size()))) {
        Message message = std::move(decoded->first);
        recv_buffer_.erase(recv_buffer_.begin(),
                           recv_buffer_.begin() + static_cast<std::ptrdiff_t>(decoded->second));
        if (metrics_ != nullptr) metrics_->frames_received->inc();
        return message;
      }
    } catch (const std::runtime_error& error) {
      close();
      return Status(ErrorCode::kCorrupt, error.what());
    }
    if (closed_.load()) return Status(ErrorCode::kUnavailable, "connection closed");
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      close();
      return Status(ErrorCode::kUnavailable, "peer closed");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      return errno_status("recv");
    }
    if (metrics_ != nullptr) metrics_->bytes_received->inc(static_cast<std::uint64_t>(n));
    recv_buffer_.insert(recv_buffer_.end(), chunk, chunk + n);
  }
}

TcpPublisher::~TcpPublisher() { stop(); }

void TcpPublisher::attach_metrics(obs::MetricsRegistry& registry,
                                  const obs::Labels& labels) {
  metrics_ = TcpMetrics::create(registry, labels);
  std::lock_guard lock(mu_);
  for (auto& remote : remotes_) {
    if (remote != nullptr) remote->connection->set_metrics(&metrics_);
  }
}

Status TcpPublisher::start(std::uint16_t port) {
  if (running_.load()) return Status::ok();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return errno_status("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return errno_status("bind");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return errno_status("listen");
  }
  running_.store(true);
  accept_thread_ = std::jthread([this](std::stop_token stop) { accept_loop(stop); });
  return Status::ok();
}

void TcpPublisher::stop() {
  if (!running_.exchange(false)) return;
  // Wake the accept thread with shutdown, join it, and only then close
  // the descriptor — closing while accept4 still blocks on it races.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) {
    accept_thread_.request_stop();
    accept_thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::unique_ptr<Remote>> remotes;
  {
    std::lock_guard lock(mu_);
    remotes.swap(remotes_);
  }
  for (auto& remote : remotes) {
    remote->connection->close();
    if (remote->reader.joinable()) {
      remote->reader.request_stop();
      remote->reader.join();
    }
  }
}

void TcpPublisher::accept_loop(std::stop_token stop) {
  while (!stop.stop_requested()) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto remote = std::make_unique<Remote>();
    remote->connection = std::make_shared<TcpConnection>(fd);
    if (metrics_.bytes_sent != nullptr) remote->connection->set_metrics(&metrics_);
    std::size_t index;
    {
      std::lock_guard lock(mu_);
      index = remotes_.size();
      remotes_.push_back(std::move(remote));
    }
    std::lock_guard lock(mu_);
    remotes_[index]->reader =
        std::jthread([this, connection = remotes_[index]->connection, index](
                         std::stop_token reader_stop) {
          control_loop(reader_stop, connection, index);
        });
  }
}

void TcpPublisher::control_loop(std::stop_token stop,
                                std::shared_ptr<TcpConnection> connection,
                                std::size_t index) {
  while (!stop.stop_requested()) {
    auto message = connection->recv();
    if (!message) break;  // closed or corrupt
    const Message& control = message.value();
    if (control.topic.empty() || control.topic[0] != kControlPrefix) continue;
    const bool is_sub = control.topic == std::string(1, kControlPrefix) + "sub";
    const bool is_unsub = control.topic == std::string(1, kControlPrefix) + "unsub";
    if (!is_sub && !is_unsub) {
      // Application-level control frame (e.g. a replay request) — hand it
      // to the installed handler with the connection for direct replies.
      if (control_handler_) control_handler_(control, connection);
      continue;
    }
    std::lock_guard lock(mu_);
    if (index >= remotes_.size() || remotes_[index] == nullptr) break;
    auto& filters = remotes_[index]->filters;
    if (is_sub) {
      filters.push_back(control.payload);
    } else {
      std::erase(filters, control.payload);
    }
  }
}

std::size_t TcpPublisher::connection_count() const {
  std::lock_guard lock(mu_);
  std::size_t alive = 0;
  for (const auto& remote : remotes_) {
    if (remote != nullptr && !remote->connection->closed()) ++alive;
  }
  return alive;
}

std::size_t TcpPublisher::subscription_count() const {
  std::lock_guard lock(mu_);
  std::size_t total = 0;
  for (const auto& remote : remotes_) {
    if (remote != nullptr && !remote->connection->closed()) total += remote->filters.size();
  }
  return total;
}

std::size_t TcpPublisher::publish(const Message& message) {
  std::vector<std::shared_ptr<TcpConnection>> targets;
  {
    std::lock_guard lock(mu_);
    for (const auto& remote : remotes_) {
      if (remote == nullptr || remote->connection->closed()) continue;
      for (const auto& filter : remote->filters) {
        if (topic_matches(filter, message.topic)) {
          targets.push_back(remote->connection);
          break;
        }
      }
    }
  }
  std::size_t delivered = 0;
  for (const auto& connection : targets) {
    if (connection->send(message).is_ok()) ++delivered;
  }
  return delivered;
}

TcpSubscriber::~TcpSubscriber() { disconnect(); }

void TcpSubscriber::attach_metrics(obs::MetricsRegistry& registry,
                                   const obs::Labels& labels) {
  metrics_ = TcpMetrics::create(registry, labels);
  reconnects_counter_ =
      &registry.counter("recovery.tcp_reconnects", labels,
                        "Successful automatic TCP re-dials after a lost link", "reconnects");
  std::lock_guard lock(mu_);
  if (connection_ != nullptr) connection_->set_metrics(&metrics_);
}

Status TcpSubscriber::connect(const std::string& host, std::uint16_t port) {
  auto fd = open_socket(host, port);
  if (!fd) return fd.status();
  host_ = host;
  port_ = port;
  disconnecting_.store(false);
  {
    std::lock_guard lock(mu_);
    connection_ = std::make_shared<TcpConnection>(fd.value());
    if (metrics_.bytes_sent != nullptr) connection_->set_metrics(&metrics_);
  }
  reader_ = std::jthread([this](std::stop_token stop) { reader_loop(stop); });
  return Status::ok();
}

void TcpSubscriber::disconnect() {
  disconnecting_.store(true);
  if (auto connection = current_connection()) connection->close();
  if (reader_.joinable()) {
    reader_.request_stop();
    reader_.join();
  }
  inbox_.close();
}

Status TcpSubscriber::subscribe(const std::string& prefix) {
  std::shared_ptr<TcpConnection> connection;
  {
    std::lock_guard lock(mu_);
    connection = connection_;
    subscriptions_.push_back(prefix);
  }
  if (connection == nullptr) return Status(ErrorCode::kUnavailable, "not connected");
  return connection->send(Message{std::string(1, kControlPrefix) + "sub", prefix});
}

Status TcpSubscriber::unsubscribe(const std::string& prefix) {
  std::shared_ptr<TcpConnection> connection;
  {
    std::lock_guard lock(mu_);
    connection = connection_;
    std::erase(subscriptions_, prefix);
  }
  if (connection == nullptr) return Status(ErrorCode::kUnavailable, "not connected");
  return connection->send(Message{std::string(1, kControlPrefix) + "unsub", prefix});
}

Status TcpSubscriber::send_control(const Message& message) {
  if (message.topic.empty() || message.topic[0] != kControlPrefix)
    return Status(ErrorCode::kInvalid, "control topic must start with \\x01");
  auto connection = current_connection();
  if (connection == nullptr) return Status(ErrorCode::kUnavailable, "not connected");
  return connection->send(message);
}

void TcpSubscriber::reader_loop(std::stop_token stop) {
  while (!stop.stop_requested()) {
    auto connection = current_connection();
    if (connection == nullptr) break;
    auto message = connection->recv();
    if (!message) {
      if (!options_.auto_reconnect || disconnecting_.load() || stop.stop_requested()) break;
      if (!run_reconnect(stop)) break;
      continue;
    }
    if (!message.value().topic.empty() && message.value().topic[0] == kControlPrefix)
      continue;  // control echoes are not user data
    inbox_.push(std::move(message).take());
  }
  inbox_.close();
}

bool TcpSubscriber::run_reconnect(const std::stop_token& stop) {
  common::Duration backoff = options_.backoff_initial;
  std::size_t attempts = 0;
  while (!stop.stop_requested() && !disconnecting_.load()) {
    if (options_.max_attempts != 0 && attempts >= options_.max_attempts) {
      FSMON_WARN("tcp-subscriber", "giving up reconnect to ", host_, ":", port_, " after ",
                 attempts, " attempts");
      return false;
    }
    ++attempts;
    // Deterministic jitter (seeded Rng) keeps chaos runs replayable while
    // still de-synchronizing a fleet of subscribers re-dialing at once.
    const double factor =
        1.0 + options_.backoff_jitter * (backoff_rng_.next_double() * 2.0 - 1.0);
    auto remaining = std::chrono::duration_cast<common::Duration>(
        std::chrono::duration<double, std::nano>(
            static_cast<double>(backoff.count()) * factor));
    // Sleep in slices so disconnect()/stop can interrupt a long backoff.
    constexpr auto kSlice = std::chrono::milliseconds(1);
    while (remaining > common::Duration::zero() && !stop.stop_requested() &&
           !disconnecting_.load()) {
      const auto nap = remaining < std::chrono::duration_cast<common::Duration>(kSlice)
                           ? remaining
                           : std::chrono::duration_cast<common::Duration>(kSlice);
      std::this_thread::sleep_for(nap);
      remaining -= nap;
    }
    if (stop.stop_requested() || disconnecting_.load()) return false;
    auto fd = open_socket(host_, port_);
    if (!fd) {
      backoff = std::min(backoff * 2, options_.backoff_max);
      continue;
    }
    auto fresh = std::make_shared<TcpConnection>(fd.value());
    if (metrics_.bytes_sent != nullptr) fresh->set_metrics(&metrics_);
    std::vector<std::string> filters;
    {
      std::lock_guard lock(mu_);
      connection_ = fresh;
      filters = subscriptions_;
    }
    for (const auto& prefix : filters) {
      (void)fresh->send(Message{std::string(1, kControlPrefix) + "sub", prefix});
    }
    reconnects_.fetch_add(1);
    if (reconnects_counter_ != nullptr) reconnects_counter_->inc();
    if (reconnect_callback_) reconnect_callback_();
    return true;
  }
  return false;
}

}  // namespace fsmon::msgq
