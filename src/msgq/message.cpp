#include "src/msgq/message.hpp"

#include <cstring>
#include <limits>
#include <span>
#include <stdexcept>

#include "src/common/crc32.hpp"

namespace fsmon::msgq {
namespace {

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  // Little-endian on the wire.
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(std::span<const std::byte> in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[static_cast<std::size_t>(i)]) << (8 * i);
  return v;
}

}  // namespace

bool topic_matches(std::string_view filter, std::string_view topic) {
  return topic.size() >= filter.size() && topic.substr(0, filter.size()) == filter;
}

std::vector<std::byte> encode_frame(const Message& message) {
  const std::string_view body = message.bytes();
  if (message.topic.size() > std::numeric_limits<std::uint32_t>::max() ||
      body.size() > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("msgq frame too large");
  std::vector<std::byte> out;
  out.reserve(12 + message.topic.size() + body.size());
  put_u32(out, static_cast<std::uint32_t>(message.topic.size()));
  for (char c : message.topic) out.push_back(static_cast<std::byte>(c));
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  for (char c : body) out.push_back(static_cast<std::byte>(c));
  const std::uint32_t crc = common::crc32(std::span(out.data(), out.size()));
  put_u32(out, crc);
  return out;
}

std::optional<std::pair<Message, std::size_t>> decode_frame(
    std::span<const std::byte> buffer) {
  if (buffer.size() < 12) return std::nullopt;
  const std::uint32_t topic_len = get_u32(buffer);
  // Guard against absurd lengths before arithmetic.
  if (topic_len > (1u << 30)) throw std::runtime_error("msgq frame: topic length corrupt");
  if (buffer.size() < 8ull + topic_len) return std::nullopt;
  const std::uint32_t payload_len = get_u32(buffer.subspan(4 + topic_len));
  if (payload_len > (1u << 30)) throw std::runtime_error("msgq frame: payload length corrupt");
  const std::size_t total = 12ull + topic_len + payload_len;
  if (buffer.size() < total) return std::nullopt;

  const std::uint32_t expected = get_u32(buffer.subspan(total - 4));
  const std::uint32_t actual = common::crc32(buffer.subspan(0, total - 4));
  if (expected != actual) throw std::runtime_error("msgq frame: CRC mismatch");

  Message message;
  message.topic.resize(topic_len);
  std::memcpy(message.topic.data(), buffer.data() + 4, topic_len);
  message.payload.resize(payload_len);
  std::memcpy(message.payload.data(), buffer.data() + 8 + topic_len, payload_len);
  return std::make_pair(std::move(message), total);
}

}  // namespace fsmon::msgq
