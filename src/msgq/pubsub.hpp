// In-process publisher/subscriber message queue (ZeroMQ substitute).
//
// Topology matches the paper's scalable monitor: N publishers
// (collectors) fan in to one subscriber (the aggregator), and one
// publisher (the aggregator) fans out to M subscribers (consumers) with
// per-subscriber topic filters. Subscribers own bounded queues with a
// high-water mark; the overflow policy is per-subscriber (ZeroMQ's
// default PUB/SUB behaviour drops at HWM, pipelines that must be
// lossless use Block).
//
// Endpoints rendezvous through a Bus by name, standing in for ZeroMQ's
// tcp:// endpoints; the src/msgq/tcp.hpp transport provides actual
// socket framing when components run in separate processes.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bounded_queue.hpp"
#include "src/msgq/message.hpp"

namespace fsmon::msgq {

class Subscriber;

/// Publishing endpoint. Thread-safe; publishers may be shared.
class Publisher {
 public:
  explicit Publisher(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Deliver to every connected subscriber whose filter matches. Returns
  /// the number of subscribers that accepted the message (a subscriber at
  /// HWM with DropNewest policy rejects it; Block waits).
  std::size_t publish(const Message& message);
  /// Move-aware publish: the last matching subscriber receives the
  /// message itself; only earlier ones get copies. With single-subscriber
  /// fan-in (the pipeline's hot topology) a frame-bearing message is
  /// never duplicated and its FrameRef count never exceeds one, so the
  /// receiving stage can patch the bytes in place.
  std::size_t publish(Message&& message);
  std::size_t publish(std::string topic, std::string payload) {
    Message message;
    message.topic = std::move(topic);
    message.payload = std::move(payload);
    return publish(std::move(message));
  }

  void connect(const std::shared_ptr<Subscriber>& subscriber);
  void disconnect(const std::string& subscriber_name);

  std::size_t subscriber_count() const;
  std::uint64_t published() const;

 private:
  /// Snapshot live subscribers (pruning dead weak_ptrs) and count the
  /// publish, under the lock.
  std::vector<std::shared_ptr<Subscriber>> snapshot_targets();

  std::string name_;
  mutable std::mutex mu_;
  std::vector<std::weak_ptr<Subscriber>> subscribers_;
  std::uint64_t published_ = 0;
};

/// Subscribing endpoint: a bounded inbox plus a set of topic filters.
class Subscriber : public std::enable_shared_from_this<Subscriber> {
 public:
  Subscriber(std::string name, std::size_t high_water_mark,
             common::OverflowPolicy policy = common::OverflowPolicy::kBlock)
      : name_(std::move(name)), inbox_(high_water_mark, policy) {}

  const std::string& name() const { return name_; }

  /// Add a prefix filter (ZMQ_SUBSCRIBE). With no filters nothing is
  /// received; subscribe("") receives everything.
  void subscribe(std::string prefix);
  void unsubscribe(const std::string& prefix);
  bool accepts(std::string_view topic) const;

  /// Blocking receive; nullopt only after close() with a drained inbox.
  std::optional<Message> recv() { return inbox_.pop(); }
  /// Blocking receive bounded by `timeout` (nullopt on expiry).
  std::optional<Message> recv_for(std::chrono::milliseconds timeout) {
    return inbox_.pop_for(timeout);
  }
  std::optional<Message> try_recv() { return inbox_.try_pop(); }
  std::vector<Message> recv_batch(std::size_t max_items) { return inbox_.pop_batch(max_items); }

  void close() { inbox_.close(); }
  /// Reopen after close(), dropping any undrained backlog. Keeps the
  /// publishers' weak_ptr connections intact, so a crashed-and-restarted
  /// stage resumes receiving without rewiring the bus.
  void reopen() { inbox_.reopen(); }
  bool closed() const { return inbox_.closed(); }

  std::size_t pending() const { return inbox_.size(); }
  std::uint64_t dropped() const { return inbox_.dropped(); }
  std::uint64_t received() const { return inbox_.pushed(); }

 private:
  friend class Publisher;
  bool deliver(const Message& message) { return inbox_.push(message); }
  bool deliver(Message&& message) { return inbox_.push(std::move(message)); }

  std::string name_;
  mutable std::mutex filter_mu_;
  std::vector<std::string> filters_;
  common::BoundedQueue<Message> inbox_;
};

/// Name-based rendezvous so components can wire up without holding
/// references to each other (the MGS registers endpoint names).
class Bus {
 public:
  std::shared_ptr<Publisher> make_publisher(const std::string& name);
  std::shared_ptr<Subscriber> make_subscriber(
      const std::string& name, std::size_t high_water_mark,
      common::OverflowPolicy policy = common::OverflowPolicy::kBlock);

  /// Connect an existing subscriber to an existing publisher by name.
  bool connect(const std::string& publisher_name, const std::string& subscriber_name);

  std::shared_ptr<Publisher> find_publisher(const std::string& name) const;
  std::shared_ptr<Subscriber> find_subscriber(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Publisher>> publishers_;
  std::vector<std::shared_ptr<Subscriber>> subscribers_;
};

}  // namespace fsmon::msgq
