#include "src/msgq/pubsub.hpp"

#include <algorithm>

namespace fsmon::msgq {

std::vector<std::shared_ptr<Subscriber>> Publisher::snapshot_targets() {
  std::vector<std::shared_ptr<Subscriber>> targets;
  std::lock_guard lock(mu_);
  ++published_;
  targets.reserve(subscribers_.size());
  bool any_dead = false;
  for (const auto& weak : subscribers_) {
    if (auto sub = weak.lock()) {
      targets.push_back(std::move(sub));
    } else {
      any_dead = true;
    }
  }
  if (any_dead) {
    std::erase_if(subscribers_, [](const auto& weak) { return weak.expired(); });
  }
  return targets;
}

std::size_t Publisher::publish(const Message& message) {
  const auto targets = snapshot_targets();
  // Deliver outside the lock: Block-policy subscribers may wait for
  // space, and holding mu_ there would stall unrelated publishes.
  std::size_t accepted = 0;
  for (const auto& sub : targets) {
    if (sub->accepts(message.topic) && sub->deliver(message)) ++accepted;
  }
  return accepted;
}

std::size_t Publisher::publish(Message&& message) {
  const auto targets = snapshot_targets();
  std::vector<Subscriber*> matching;
  matching.reserve(targets.size());
  for (const auto& sub : targets) {
    if (sub->accepts(message.topic)) matching.push_back(sub.get());
  }
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < matching.size(); ++i) {
    // The last matching subscriber takes the message by move: with one
    // subscriber no copy is ever made, so a frame payload keeps a
    // refcount of exactly one end to end.
    const bool accepted_here = i + 1 == matching.size()
                                   ? matching[i]->deliver(std::move(message))
                                   : matching[i]->deliver(message);
    if (accepted_here) ++accepted;
  }
  return accepted;
}

void Publisher::connect(const std::shared_ptr<Subscriber>& subscriber) {
  std::lock_guard lock(mu_);
  for (const auto& weak : subscribers_) {
    if (auto existing = weak.lock(); existing && existing.get() == subscriber.get()) return;
  }
  subscribers_.push_back(subscriber);
}

void Publisher::disconnect(const std::string& subscriber_name) {
  std::lock_guard lock(mu_);
  std::erase_if(subscribers_, [&](const auto& weak) {
    auto sub = weak.lock();
    return !sub || sub->name() == subscriber_name;
  });
}

std::size_t Publisher::subscriber_count() const {
  std::lock_guard lock(mu_);
  std::size_t alive = 0;
  for (const auto& weak : subscribers_) {
    if (!weak.expired()) ++alive;
  }
  return alive;
}

std::uint64_t Publisher::published() const {
  std::lock_guard lock(mu_);
  return published_;
}

void Subscriber::subscribe(std::string prefix) {
  std::lock_guard lock(filter_mu_);
  if (std::find(filters_.begin(), filters_.end(), prefix) == filters_.end())
    filters_.push_back(std::move(prefix));
}

void Subscriber::unsubscribe(const std::string& prefix) {
  std::lock_guard lock(filter_mu_);
  std::erase(filters_, prefix);
}

bool Subscriber::accepts(std::string_view topic) const {
  std::lock_guard lock(filter_mu_);
  for (const auto& filter : filters_) {
    if (topic_matches(filter, topic)) return true;
  }
  return false;
}

std::shared_ptr<Publisher> Bus::make_publisher(const std::string& name) {
  std::lock_guard lock(mu_);
  auto pub = std::make_shared<Publisher>(name);
  publishers_.push_back(pub);
  return pub;
}

std::shared_ptr<Subscriber> Bus::make_subscriber(const std::string& name,
                                                 std::size_t high_water_mark,
                                                 common::OverflowPolicy policy) {
  std::lock_guard lock(mu_);
  auto sub = std::make_shared<Subscriber>(name, high_water_mark, policy);
  subscribers_.push_back(sub);
  return sub;
}

bool Bus::connect(const std::string& publisher_name, const std::string& subscriber_name) {
  auto pub = find_publisher(publisher_name);
  auto sub = find_subscriber(subscriber_name);
  if (!pub || !sub) return false;
  pub->connect(sub);
  return true;
}

std::shared_ptr<Publisher> Bus::find_publisher(const std::string& name) const {
  std::lock_guard lock(mu_);
  for (const auto& pub : publishers_) {
    if (pub->name() == name) return pub;
  }
  return nullptr;
}

std::shared_ptr<Subscriber> Bus::find_subscriber(const std::string& name) const {
  std::lock_guard lock(mu_);
  for (const auto& sub : subscribers_) {
    if (sub->name() == name) return sub;
  }
  return nullptr;
}

}  // namespace fsmon::msgq
