// Wire message: a topic frame plus an opaque payload, following the
// ZeroMQ pub/sub convention the paper's scalable monitor uses
// (Section IV: "Collectors use a publisher-subscriber message queue
// (implemented with ZeroMQ) to report events to an aggregator").
//
// Topic matching is prefix-based exactly like ZMQ_SUBSCRIBE; the empty
// filter subscribes to everything.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/transport/frame.hpp"

namespace fsmon::msgq {

struct Message {
  Message() = default;
  Message(std::string topic_in, std::string payload_in)
      : topic(std::move(topic_in)), payload(std::move(payload_in)) {}

  std::string topic;
  std::string payload;
  /// Zero-copy alternative to `payload`: when set, the message's bytes
  /// live in this ref-counted frame and copying the Message is a
  /// shared_ptr bump, not a buffer copy. Exactly one of payload/frame
  /// carries data; bytes() reads whichever does.
  transport::FrameRef frame;

  /// The message body regardless of which member holds it.
  std::string_view bytes() const { return frame ? frame.chars() : std::string_view(payload); }
  std::span<const std::byte> byte_span() const {
    const auto view = bytes();
    return {reinterpret_cast<const std::byte*>(view.data()), view.size()};
  }

  /// Logical equality: same topic, same body bytes (however carried).
  friend bool operator==(const Message& a, const Message& b) {
    return a.topic == b.topic && a.bytes() == b.bytes();
  }
};

/// ZMQ-style prefix subscription match.
bool topic_matches(std::string_view filter, std::string_view topic);

/// Length-prefixed binary framing with CRC-32 trailer, used by the TCP
/// transport and as the durable representation in tests:
///   u32 topic_len | topic | u32 payload_len | payload | u32 crc
std::vector<std::byte> encode_frame(const Message& message);

/// Decode one frame from the front of `buffer`. Returns the message and
/// the number of bytes consumed, or nullopt when the buffer does not yet
/// hold a complete frame. Throws std::runtime_error on CRC mismatch or a
/// structurally invalid frame.
std::optional<std::pair<Message, std::size_t>> decode_frame(
    std::span<const std::byte> buffer);

}  // namespace fsmon::msgq
