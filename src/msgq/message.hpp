// Wire message: a topic frame plus an opaque payload, following the
// ZeroMQ pub/sub convention the paper's scalable monitor uses
// (Section IV: "Collectors use a publisher-subscriber message queue
// (implemented with ZeroMQ) to report events to an aggregator").
//
// Topic matching is prefix-based exactly like ZMQ_SUBSCRIBE; the empty
// filter subscribes to everything.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fsmon::msgq {

struct Message {
  std::string topic;
  std::string payload;

  friend bool operator==(const Message&, const Message&) = default;
};

/// ZMQ-style prefix subscription match.
bool topic_matches(std::string_view filter, std::string_view topic);

/// Length-prefixed binary framing with CRC-32 trailer, used by the TCP
/// transport and as the durable representation in tests:
///   u32 topic_len | topic | u32 payload_len | payload | u32 crc
std::vector<std::byte> encode_frame(const Message& message);

/// Decode one frame from the front of `buffer`. Returns the message and
/// the number of bytes consumed, or nullopt when the buffer does not yet
/// hold a complete frame. Throws std::runtime_error on CRC mismatch or a
/// structurally invalid frame.
std::optional<std::pair<Message, std::size_t>> decode_frame(
    std::span<const std::byte> buffer);

}  // namespace fsmon::msgq
