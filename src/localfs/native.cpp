#include "src/localfs/native.hpp"

#include "src/common/string_util.hpp"

namespace fsmon::localfs {

std::vector<NativeEvent> InotifyEmitter::on_action(const FsAction& action,
                                                   common::TimePoint now) {
  const std::uint32_t dir_bit = action.is_dir ? kInIsDir : 0;
  std::vector<NativeEvent> out;
  auto push = [&](std::uint32_t flags, const std::string& path, std::uint32_t cookie = 0) {
    out.push_back(NativeEvent{flags, path, {}, cookie, now});
  };
  switch (action.kind) {
    case FsOpKind::kCreate: push(kInCreate, action.path); break;
    case FsOpKind::kMkdir: push(kInCreate | kInIsDir, action.path); break;
    case FsOpKind::kModify: push(kInModify, action.path); break;
    case FsOpKind::kOpen: push(kInOpen | dir_bit, action.path); break;
    case FsOpKind::kClose: push(kInCloseWrite | dir_bit, action.path); break;
    case FsOpKind::kDelete: push(kInDelete, action.path); break;
    case FsOpKind::kRmdir: push(kInDelete | kInIsDir, action.path); break;
    case FsOpKind::kRename: {
      const std::uint32_t cookie = next_cookie_++;
      push(kInMovedFrom | dir_bit, action.path, cookie);
      push(kInMovedTo | dir_bit, action.dest_path, cookie);
      break;
    }
    case FsOpKind::kAttrib: push(kInAttrib | dir_bit, action.path); break;
  }
  return out;
}

std::vector<NativeEvent> KqueueEmitter::on_action(const FsAction& action,
                                                  common::TimePoint now) {
  std::vector<NativeEvent> out;
  auto push = [&](std::uint32_t flags, const std::string& path) {
    out.push_back(NativeEvent{flags, path, {}, 0, now});
  };
  const std::string parent = common::parent_path(action.path);
  switch (action.kind) {
    case FsOpKind::kCreate:
      // The new file has no vnode being watched yet; the signal is the
      // parent directory's vnode changing.
      push(kNoteWrite | kNoteExtend, parent);
      break;
    case FsOpKind::kMkdir:
      push(kNoteWrite | kNoteLink, parent);
      break;
    case FsOpKind::kModify: push(kNoteWrite, action.path); break;
    case FsOpKind::kOpen: push(kNoteOpen, action.path); break;
    case FsOpKind::kClose: push(kNoteCloseWrite, action.path); break;
    case FsOpKind::kDelete:
      push(kNoteDelete, action.path);
      push(kNoteWrite, parent);
      break;
    case FsOpKind::kRmdir:
      push(kNoteDelete, action.path);
      push(kNoteWrite | kNoteLink, parent);
      break;
    case FsOpKind::kRename: {
      NativeEvent event{kNoteRename, action.path, action.dest_path, 0, now};
      out.push_back(std::move(event));
      push(kNoteWrite, parent);
      const std::string dest_parent = common::parent_path(action.dest_path);
      if (dest_parent != parent) push(kNoteWrite, dest_parent);
      break;
    }
    case FsOpKind::kAttrib: push(kNoteAttrib, action.path); break;
  }
  return out;
}

std::vector<NativeEvent> FsEventsEmitter::age_out(common::TimePoint now) {
  std::vector<NativeEvent> out;
  while (!order_.empty()) {
    auto it = pending_.find(order_.front());
    if (it == pending_.end()) {
      order_.pop_front();
      continue;
    }
    if (window_.count() > 0 && it->second.first + window_ > now) break;
    out.push_back(NativeEvent{it->second.flags, it->first, {}, 0, it->second.first});
    pending_.erase(it);
    order_.pop_front();
  }
  return out;
}

std::vector<NativeEvent> FsEventsEmitter::on_action(const FsAction& action,
                                                    common::TimePoint now) {
  std::uint32_t flags = action.is_dir ? kFseIsDir : kFseIsFile;
  switch (action.kind) {
    case FsOpKind::kCreate:
    case FsOpKind::kMkdir: flags |= kFseCreated; break;
    case FsOpKind::kModify: flags |= kFseModified; break;
    case FsOpKind::kOpen:
    case FsOpKind::kClose: return age_out(now);  // FSEvents reports neither
    case FsOpKind::kDelete:
    case FsOpKind::kRmdir: flags |= kFseRemoved; break;
    case FsOpKind::kRename: flags |= kFseRenamed; break;
    case FsOpKind::kAttrib: flags |= kFseInodeMetaMod; break;
  }

  std::vector<NativeEvent> out = age_out(now);
  auto record = [&](const std::string& path, std::uint32_t f) {
    if (window_.count() == 0) {
      out.push_back(NativeEvent{f, path, {}, 0, now});
      return;
    }
    auto [it, inserted] = pending_.try_emplace(path, Pending{f, now});
    if (inserted) {
      order_.push_back(path);
    } else {
      it->second.flags |= f;
      ++coalesced_;
    }
  };
  record(action.path, flags);
  if (action.kind == FsOpKind::kRename) record(action.dest_path, flags);
  return out;
}

std::vector<NativeEvent> FsEventsEmitter::flush(common::TimePoint now) {
  std::vector<NativeEvent> out;
  for (const auto& path : order_) {
    auto it = pending_.find(path);
    if (it == pending_.end()) continue;
    out.push_back(NativeEvent{it->second.flags, path, {}, 0, now});
  }
  pending_.clear();
  order_.clear();
  return out;
}

std::size_t FswEmitter::event_cost(const NativeEvent& event) {
  // .NET buffers 12 bytes of header plus the UTF-16 relative path per
  // event record.
  return 12 + 2 * (event.path.size() + event.dest_path.size());
}

bool FswEmitter::on_action(const FsAction& action, common::TimePoint now) {
  NativeEvent event;
  event.timestamp = now;
  event.path = action.path;
  switch (action.kind) {
    case FsOpKind::kCreate:
    case FsOpKind::kMkdir: event.flags = kFswCreated; break;
    case FsOpKind::kModify:
    case FsOpKind::kAttrib: event.flags = kFswChanged; break;
    case FsOpKind::kOpen:
    case FsOpKind::kClose: return true;  // FSW reports neither opens nor closes
    case FsOpKind::kDelete:
    case FsOpKind::kRmdir: event.flags = kFswDeleted; break;
    case FsOpKind::kRename:
      event.flags = kFswRenamed;
      event.dest_path = action.dest_path;
      break;
  }
  const std::size_t cost = event_cost(event);
  if (used_ + cost > capacity_) {
    ++overflows_;
    return false;
  }
  used_ += cost;
  buffer_.push_back(std::move(event));
  return true;
}

std::vector<NativeEvent> FswEmitter::drain(std::size_t max_events) {
  std::vector<NativeEvent> out;
  while (!buffer_.empty() && out.size() < max_events) {
    used_ -= event_cost(buffer_.front());
    out.push_back(std::move(buffer_.front()));
    buffer_.pop_front();
  }
  return out;
}

}  // namespace fsmon::localfs
