// Registration of the built-in local DSIs with the global registry.
#include <filesystem>
#include <memory>

#include "src/core/monitor.hpp"
#include "src/localfs/inotify_dsi.hpp"

namespace fsmon::core {

void register_builtin_dsis() {
  auto& registry = DsiRegistry::global();
  if (registry.has_scheme("inotify")) return;  // idempotent
  registry.register_dsi(
      "inotify",
      [](const StorageDescriptor& descriptor)
          -> common::Result<std::unique_ptr<DsiBase>> {
        localfs::InotifyDsiOptions options;
        options.root = descriptor.root;
        options.recursive = descriptor.params.get_bool("recursive", true);
        return common::Result<std::unique_ptr<DsiBase>>(
            std::make_unique<localfs::InotifyDsi>(std::move(options)));
      },
      [](const StorageDescriptor& descriptor) {
        // Probe: usable for any real local directory when the kernel
        // supports inotify.
        std::error_code ec;
        if (!std::filesystem::is_directory(descriptor.root, ec)) return 0;
        return localfs::InotifyDsi::available() ? 10 : 0;
      });
}

}  // namespace fsmon::core
