// Real inotify DSI (Linux).
//
// Watches an actual directory tree through the kernel inotify facility.
// Because inotify "does not support recursive monitoring, requiring a
// unique watcher to be placed on each directory of interest"
// (Section II-A), this DSI crawls the tree at start, places one watch
// per directory, and adds watches for directories created while
// monitoring — the bookkeeping FSMonitor hides from its users.
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "src/core/dsi.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::localfs {

struct InotifyDsiOptions {
  std::string root;      ///< Real directory to monitor.
  bool recursive = true; ///< Watch the whole subtree.
  /// When set, registers `inotify.queue_overflows` (kernel queue
  /// overflow markers emitted). Must outlive the DSI.
  obs::MetricsRegistry* metrics = nullptr;
};

class InotifyDsi final : public core::DsiBase {
 public:
  explicit InotifyDsi(InotifyDsiOptions options);
  ~InotifyDsi() override;

  std::string name() const override { return "inotify"; }
  common::Status start(EventCallback callback) override;
  void stop() override;
  bool running() const override { return running_.load(); }

  /// Number of kernel watches currently placed (1 per directory).
  std::size_t watch_count() const;

  /// Kernel queue overflows observed (IN_Q_OVERFLOW). The paper:
  /// "inotify ... may suffer a queue overflow error if events are
  /// generated faster than they are read" (Section II-A). Each overflow
  /// also emits a synthetic marker event (path sentinel
  /// core::kEventQueueOverflow, cookie = overflow ordinal) so consumers
  /// see the gap in-stream instead of silently missing events, and
  /// bumps `inotify.queue_overflows` when metrics are wired.
  std::uint64_t overflow_count() const { return overflows_.load(); }

  /// True when the host kernel supports inotify (compile-time Linux and
  /// runtime init succeeds).
  static bool available();

 private:
  void reader_loop(std::stop_token stop);
  common::Status add_watch_recursive(const std::string& dir);
  common::Status add_watch(const std::string& dir);

  InotifyDsiOptions options_;
  EventCallback callback_;
  int fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  mutable std::mutex mu_;
  std::map<int, std::string> watches_;  // wd -> directory path
  std::map<std::string, int> watch_by_path_;
  std::jthread reader_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> overflows_{0};
  obs::Counter* overflow_counter_ = nullptr;
};

}  // namespace fsmon::localfs
