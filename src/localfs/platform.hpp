// Local-platform profiles for the paper's Table III / Table IV
// experiments (macOS, Ubuntu, CentOS).
//
// Each profile carries the platform's measured baseline event-generation
// rate and the per-event service costs of FSMonitor and of the native
// comparator tool (FSWatch on macOS, inotifywait on Linux), calibrated
// from the paper's reported rates. CPU costs are per-event cycles, RAM
// figures reproduce Table IV's memory column (0.01% of each machine's
// RAM).
#pragma once

#include <cstdint>
#include <string>

#include "src/common/types.hpp"

namespace fsmon::localfs {

struct PlatformProfile {
  std::string name;         ///< "macOS", "Ubuntu", "CentOS"
  std::string other_tool;   ///< "FSWatch" or "inotifywait"
  double generation_rate = 0;  ///< Table III "Events generated per second".

  // Per-event service latency (pipeline occupancy) for each monitor.
  common::Duration fsmonitor_event_cost{};
  common::Duration other_event_cost{};

  // Per-event CPU cost for Table IV's CPU% column.
  common::Duration fsmonitor_event_cpu{};
  common::Duration other_event_cpu{};

  // Resident memory for Table IV's Memory% column.
  std::uint64_t ram_bytes = 0;  ///< Machine RAM (denominator).
  std::uint64_t fsmonitor_rss_bytes = 0;
  std::uint64_t other_rss_bytes = 0;

  static PlatformProfile macos();
  static PlatformProfile ubuntu();
  static PlatformProfile centos();
};

}  // namespace fsmon::localfs
