// Scripted in-memory local file system.
//
// Stands in for the macOS / BSD / Windows hosts we cannot run: workloads
// perform ordinary file operations against MemFs, and registered
// listeners observe the resulting actions. The native-event emitters in
// native.hpp translate those actions into each platform's raw event
// dialect (which the simulated DSIs then standardize) — exercising the
// same translation code paths a real kqueue/FSEvents/FileSystemWatcher
// backend would.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.hpp"

namespace fsmon::localfs {

enum class FsOpKind : std::uint8_t {
  kCreate,
  kMkdir,
  kModify,
  kOpen,
  kClose,
  kDelete,
  kRmdir,
  kRename,
  kAttrib,
};

std::string_view to_string(FsOpKind kind);

/// One observed file-system action.
struct FsAction {
  FsOpKind kind = FsOpKind::kCreate;
  std::string path;       ///< Normalized absolute path.
  std::string dest_path;  ///< Rename destination (kRename only).
  bool is_dir = false;
  std::uint64_t sequence = 0;  ///< Monotonic per-MemFs action number.
};

class MemFs {
 public:
  using Listener = std::function<void(const FsAction&)>;

  MemFs();

  /// Listeners observe every successful mutation, in order.
  void add_listener(Listener listener);

  common::Status create(const std::string& path);
  common::Status mkdir(const std::string& path);
  common::Status write(const std::string& path);
  common::Status open(const std::string& path);
  common::Status close(const std::string& path);
  common::Status remove(const std::string& path);  ///< unlink a file
  common::Status rmdir(const std::string& path);
  common::Status rename(const std::string& from, const std::string& to);
  common::Status chmod(const std::string& path, std::uint32_t mode);

  bool exists(const std::string& path) const;
  bool is_directory(const std::string& path) const;

  /// Direct children of a directory: (name, is_dir) pairs in name order.
  /// Used by the kqueue DSI's directory-diff rescan.
  std::vector<std::pair<std::string, bool>> list(const std::string& dir) const;
  std::size_t entry_count() const { return entries_.size(); }
  std::uint64_t actions() const { return next_sequence_; }

 private:
  struct Entry {
    bool is_dir = false;
    std::uint32_t mode = 0644;
  };

  common::Status check_parent(const std::string& path) const;
  void emit(FsOpKind kind, const std::string& path, bool is_dir,
            const std::string& dest = {});

  std::map<std::string, Entry> entries_;  // normalized path -> entry; "/" is implicit
  std::vector<Listener> listeners_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace fsmon::localfs
