#include "src/localfs/inotify_dsi.hpp"

#include <cstring>
#include <filesystem>

#include <poll.h>
#include <sys/inotify.h>
#include <unistd.h>

#include "src/common/logging.hpp"
#include "src/common/string_util.hpp"

namespace fsmon::localfs {

using common::ErrorCode;
using common::Status;
using core::EventKind;
using core::StdEvent;

namespace {

constexpr std::uint32_t kWatchMask = IN_CREATE | IN_MODIFY | IN_ATTRIB | IN_CLOSE_WRITE |
                                     IN_DELETE | IN_MOVED_FROM | IN_MOVED_TO |
                                     IN_DELETE_SELF;

common::TimePoint now_tp() {
  return std::chrono::time_point_cast<common::Duration>(std::chrono::steady_clock::now());
}

}  // namespace

InotifyDsi::InotifyDsi(InotifyDsiOptions options) : options_(std::move(options)) {}

InotifyDsi::~InotifyDsi() { stop(); }

bool InotifyDsi::available() {
  const int fd = inotify_init1(IN_NONBLOCK);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

std::size_t InotifyDsi::watch_count() const {
  std::lock_guard lock(mu_);
  return watches_.size();
}

Status InotifyDsi::add_watch(const std::string& dir) {
  const int wd = inotify_add_watch(fd_, dir.c_str(), kWatchMask);
  if (wd < 0)
    return Status(ErrorCode::kUnavailable,
                  "inotify_add_watch(" + dir + "): " + std::strerror(errno));
  std::lock_guard lock(mu_);
  watches_[wd] = dir;
  watch_by_path_[dir] = wd;
  return Status::ok();
}

Status InotifyDsi::add_watch_recursive(const std::string& dir) {
  if (auto s = add_watch(dir); !s.is_ok()) return s;
  if (!options_.recursive) return Status::ok();
  std::error_code ec;
  for (std::filesystem::recursive_directory_iterator it(dir, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_directory(ec)) {
      if (auto s = add_watch(it->path().string()); !s.is_ok()) {
        FSMON_WARN("inotify", s.to_string());
      }
    }
  }
  return Status::ok();
}

Status InotifyDsi::start(EventCallback callback) {
  if (running_.load()) return Status::ok();
  callback_ = std::move(callback);
  if (options_.metrics != nullptr && overflow_counter_ == nullptr) {
    overflow_counter_ = &options_.metrics->counter(
        "inotify.queue_overflows", {},
        "Kernel inotify queue overflows (IN_Q_OVERFLOW); each one emitted a "
        "synthetic EventQueueOverflow gap marker into the stream",
        "overflows");
  }
  fd_ = inotify_init1(IN_NONBLOCK | IN_CLOEXEC);
  if (fd_ < 0)
    return Status(ErrorCode::kUnavailable,
                  std::string("inotify_init1: ") + std::strerror(errno));
  if (::pipe(wake_pipe_) != 0) {
    ::close(fd_);
    fd_ = -1;
    return Status(ErrorCode::kUnavailable, std::string("pipe: ") + std::strerror(errno));
  }
  if (auto s = add_watch_recursive(options_.root); !s.is_ok()) {
    stop();
    return s;
  }
  running_.store(true);
  reader_ = std::jthread([this](std::stop_token stop) { reader_loop(stop); });
  return Status::ok();
}

void InotifyDsi::stop() {
  if (reader_.joinable()) {
    reader_.request_stop();
    if (wake_pipe_[1] >= 0) {
      const char byte = 'x';
      [[maybe_unused]] auto n = ::write(wake_pipe_[1], &byte, 1);
    }
    reader_.join();
  }
  running_.store(false);
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  std::lock_guard lock(mu_);
  watches_.clear();
  watch_by_path_.clear();
}

void InotifyDsi::reader_loop(std::stop_token stop) {
  alignas(inotify_event) char buffer[16 * 1024];
  while (!stop.stop_requested()) {
    pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, 500);
    if (ready <= 0) continue;
    if (fds[1].revents & POLLIN) break;  // stop requested
    if (!(fds[0].revents & POLLIN)) continue;
    const ssize_t len = ::read(fd_, buffer, sizeof(buffer));
    if (len <= 0) continue;
    ssize_t offset = 0;
    while (offset < len) {
      const auto* raw = reinterpret_cast<const inotify_event*>(buffer + offset);
      offset += static_cast<ssize_t>(sizeof(inotify_event)) + raw->len;
      if (raw->mask & IN_Q_OVERFLOW) {
        // The kernel dropped events. Counting alone hides the gap from
        // anyone downstream, so emit an in-stream marker: sentinel path
        // (has_path() false, skipped by index layers), cookie = overflow
        // ordinal. Consumers needing completeness rescan watch_root.
        const std::uint64_t ordinal = overflows_.fetch_add(1) + 1;
        if (overflow_counter_ != nullptr) overflow_counter_->inc();
        FSMON_WARN("inotify", "kernel event queue overflow; events were lost");
        if (callback_) {
          StdEvent marker;
          marker.kind = EventKind::kModify;
          marker.watch_root = options_.root;
          marker.path = std::string(core::kEventQueueOverflow);
          marker.cookie = ordinal;
          marker.timestamp = now_tp();
          marker.source = "inotify";
          callback_(std::move(marker));
        }
        continue;
      }
      std::string dir;
      {
        std::lock_guard lock(mu_);
        auto it = watches_.find(raw->wd);
        if (it == watches_.end()) continue;
        dir = it->second;
      }
      if (raw->mask & IN_IGNORED) continue;
      const std::string child =
          raw->len > 0 ? dir + "/" + std::string(raw->name) : dir;
      const bool is_dir = (raw->mask & IN_ISDIR) != 0;

      StdEvent event;
      event.path = child;
      event.is_dir = is_dir;
      event.cookie = raw->cookie;
      event.timestamp = now_tp();
      event.source = "inotify";
      bool emit = true;
      if (raw->mask & IN_CREATE) {
        event.kind = EventKind::kCreate;
        // New subdirectory: extend coverage (the recursive-monitoring
        // capability inotify itself lacks).
        if (is_dir && options_.recursive) {
          if (auto s = add_watch(child); !s.is_ok()) FSMON_WARN("inotify", s.to_string());
        }
      } else if (raw->mask & IN_MODIFY) {
        event.kind = EventKind::kModify;
      } else if (raw->mask & IN_ATTRIB) {
        event.kind = EventKind::kAttrib;
      } else if (raw->mask & IN_CLOSE_WRITE) {
        event.kind = EventKind::kClose;
      } else if (raw->mask & IN_DELETE) {
        event.kind = EventKind::kDelete;
      } else if (raw->mask & IN_MOVED_FROM) {
        event.kind = EventKind::kMovedFrom;
      } else if (raw->mask & IN_MOVED_TO) {
        event.kind = EventKind::kMovedTo;
        if (is_dir && options_.recursive) {
          if (auto s = add_watch(child); !s.is_ok()) FSMON_WARN("inotify", s.to_string());
        }
      } else {
        emit = false;  // IN_DELETE_SELF etc.: watch bookkeeping only
      }
      if (emit && callback_) callback_(std::move(event));
    }
  }
}

}  // namespace fsmon::localfs
