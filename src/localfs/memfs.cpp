#include "src/localfs/memfs.hpp"

#include "src/common/string_util.hpp"

namespace fsmon::localfs {

using common::ErrorCode;
using common::Status;

std::string_view to_string(FsOpKind kind) {
  switch (kind) {
    case FsOpKind::kCreate: return "create";
    case FsOpKind::kMkdir: return "mkdir";
    case FsOpKind::kModify: return "modify";
    case FsOpKind::kOpen: return "open";
    case FsOpKind::kClose: return "close";
    case FsOpKind::kDelete: return "delete";
    case FsOpKind::kRmdir: return "rmdir";
    case FsOpKind::kRename: return "rename";
    case FsOpKind::kAttrib: return "attrib";
  }
  return "?";
}

MemFs::MemFs() = default;

void MemFs::add_listener(Listener listener) { listeners_.push_back(std::move(listener)); }

void MemFs::emit(FsOpKind kind, const std::string& path, bool is_dir,
                 const std::string& dest) {
  FsAction action;
  action.kind = kind;
  action.path = path;
  action.dest_path = dest;
  action.is_dir = is_dir;
  action.sequence = next_sequence_++;
  for (const auto& listener : listeners_) listener(action);
}

Status MemFs::check_parent(const std::string& path) const {
  const std::string parent = common::parent_path(path);
  if (parent == "/") return Status::ok();
  auto it = entries_.find(parent);
  if (it == entries_.end()) return Status(ErrorCode::kNotFound, "parent: " + parent);
  if (!it->second.is_dir) return Status(ErrorCode::kNotADirectory, parent);
  return Status::ok();
}

Status MemFs::create(const std::string& path) {
  const std::string norm = common::normalize_path(path);
  if (norm == "/") return Status(ErrorCode::kInvalid, "create on root");
  if (entries_.count(norm) != 0) return Status(ErrorCode::kAlreadyExists, norm);
  if (auto s = check_parent(norm); !s.is_ok()) return s;
  entries_.emplace(norm, Entry{false, 0644});
  emit(FsOpKind::kCreate, norm, false);
  return Status::ok();
}

Status MemFs::mkdir(const std::string& path) {
  const std::string norm = common::normalize_path(path);
  if (norm == "/") return Status(ErrorCode::kAlreadyExists, norm);
  if (entries_.count(norm) != 0) return Status(ErrorCode::kAlreadyExists, norm);
  if (auto s = check_parent(norm); !s.is_ok()) return s;
  entries_.emplace(norm, Entry{true, 0755});
  emit(FsOpKind::kMkdir, norm, true);
  return Status::ok();
}

Status MemFs::write(const std::string& path) {
  const std::string norm = common::normalize_path(path);
  auto it = entries_.find(norm);
  if (it == entries_.end()) return Status(ErrorCode::kNotFound, norm);
  if (it->second.is_dir) return Status(ErrorCode::kIsADirectory, norm);
  emit(FsOpKind::kModify, norm, false);
  return Status::ok();
}

Status MemFs::open(const std::string& path) {
  const std::string norm = common::normalize_path(path);
  auto it = entries_.find(norm);
  if (it == entries_.end()) return Status(ErrorCode::kNotFound, norm);
  emit(FsOpKind::kOpen, norm, it->second.is_dir);
  return Status::ok();
}

Status MemFs::close(const std::string& path) {
  const std::string norm = common::normalize_path(path);
  auto it = entries_.find(norm);
  if (it == entries_.end()) return Status(ErrorCode::kNotFound, norm);
  emit(FsOpKind::kClose, norm, it->second.is_dir);
  return Status::ok();
}

Status MemFs::remove(const std::string& path) {
  const std::string norm = common::normalize_path(path);
  auto it = entries_.find(norm);
  if (it == entries_.end()) return Status(ErrorCode::kNotFound, norm);
  if (it->second.is_dir) return Status(ErrorCode::kIsADirectory, norm);
  entries_.erase(it);
  emit(FsOpKind::kDelete, norm, false);
  return Status::ok();
}

Status MemFs::rmdir(const std::string& path) {
  const std::string norm = common::normalize_path(path);
  auto it = entries_.find(norm);
  if (it == entries_.end()) return Status(ErrorCode::kNotFound, norm);
  if (!it->second.is_dir) return Status(ErrorCode::kNotADirectory, norm);
  // Non-empty check: any entry strictly under norm?
  auto next = entries_.upper_bound(norm);
  if (next != entries_.end() && common::is_under(next->first, norm))
    return Status(ErrorCode::kNotEmpty, norm);
  entries_.erase(it);
  emit(FsOpKind::kRmdir, norm, true);
  return Status::ok();
}

Status MemFs::rename(const std::string& from, const std::string& to) {
  const std::string src = common::normalize_path(from);
  const std::string dst = common::normalize_path(to);
  auto it = entries_.find(src);
  if (it == entries_.end()) return Status(ErrorCode::kNotFound, src);
  if (entries_.count(dst) != 0) return Status(ErrorCode::kAlreadyExists, dst);
  if (auto s = check_parent(dst); !s.is_ok()) return s;
  const bool is_dir = it->second.is_dir;
  Entry entry = it->second;
  entries_.erase(it);
  entries_.emplace(dst, entry);
  if (is_dir) {
    // Move all children under the new prefix.
    std::map<std::string, Entry> moved;
    for (auto child = entries_.upper_bound(src); child != entries_.end();) {
      if (!common::is_under(child->first, src)) break;
      moved.emplace(dst + child->first.substr(src.size()), child->second);
      child = entries_.erase(child);
    }
    entries_.merge(moved);
  }
  emit(FsOpKind::kRename, src, is_dir, dst);
  return Status::ok();
}

Status MemFs::chmod(const std::string& path, std::uint32_t mode) {
  const std::string norm = common::normalize_path(path);
  auto it = entries_.find(norm);
  if (it == entries_.end()) return Status(ErrorCode::kNotFound, norm);
  it->second.mode = mode;
  emit(FsOpKind::kAttrib, norm, it->second.is_dir);
  return Status::ok();
}

bool MemFs::exists(const std::string& path) const {
  const std::string norm = common::normalize_path(path);
  return norm == "/" || entries_.count(norm) != 0;
}

std::vector<std::pair<std::string, bool>> MemFs::list(const std::string& dir) const {
  const std::string norm = common::normalize_path(dir);
  std::vector<std::pair<std::string, bool>> out;
  const std::string prefix = norm == "/" ? "/" : norm + "/";
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (!common::starts_with(it->first, prefix)) break;
    const std::string rest = it->first.substr(prefix.size());
    if (rest.find('/') != std::string::npos) continue;  // deeper than a child
    out.emplace_back(rest, it->second.is_dir);
  }
  return out;
}

bool MemFs::is_directory(const std::string& path) const {
  const std::string norm = common::normalize_path(path);
  if (norm == "/") return true;
  auto it = entries_.find(norm);
  return it != entries_.end() && it->second.is_dir;
}

}  // namespace fsmon::localfs
