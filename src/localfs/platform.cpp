#include "src/localfs/platform.hpp"

namespace fsmon::localfs {
namespace {

using std::chrono::nanoseconds;

constexpr std::uint64_t kGiB = 1ull << 30;

}  // namespace

// Calibration: service latency = 1 / reported-rate (Table III) when the
// monitor is the bottleneck; CPU per event = CPU% / reported-rate
// (Table IV). FSWatch's deficit on macOS comes from FSEvents' userspace
// daemon path; inotifywait's slight edge over FSMonitor on Linux is
// FSMonitor's interface-layer path parsing (Section V-C2).

PlatformProfile PlatformProfile::macos() {
  PlatformProfile p;
  p.name = "macOS";
  p.other_tool = "FSWatch";
  p.generation_rate = 4503;
  p.fsmonitor_event_cost = nanoseconds(223900);  // -> ~4467 ev/s saturated
  p.other_event_cost = nanoseconds(332900);      // -> ~3004 ev/s
  p.fsmonitor_event_cpu = nanoseconds(224);      // 0.1% CPU at 4467 ev/s
  p.other_event_cpu = nanoseconds(333);          // 0.1% at 3004 ev/s
  p.ram_bytes = 16 * kGiB;
  p.fsmonitor_rss_bytes = p.ram_bytes / 10000;  // 0.01%
  p.other_rss_bytes = p.ram_bytes / 10000;
  return p;
}

PlatformProfile PlatformProfile::ubuntu() {
  PlatformProfile p;
  p.name = "Ubuntu";
  p.other_tool = "inotifywait";
  p.generation_rate = 4007;
  p.fsmonitor_event_cost = nanoseconds(250900);  // -> ~3985 ev/s
  p.other_event_cost = nanoseconds(250200);      // -> ~3997 ev/s
  p.fsmonitor_event_cpu = nanoseconds(1004);     // 0.4% at 3985 ev/s
  p.other_event_cpu = nanoseconds(750);          // 0.3% at 3997 ev/s
  p.ram_bytes = 64 * kGiB;
  p.fsmonitor_rss_bytes = p.ram_bytes / 10000;
  p.other_rss_bytes = p.ram_bytes / 10000;
  return p;
}

PlatformProfile PlatformProfile::centos() {
  PlatformProfile p;
  p.name = "CentOS";
  p.other_tool = "inotifywait";
  p.generation_rate = 3894;
  p.fsmonitor_event_cost = nanoseconds(258100);  // -> ~3875 ev/s
  p.other_event_cost = nanoseconds(257900);      // -> ~3878 ev/s
  p.fsmonitor_event_cpu = nanoseconds(516);      // 0.2% at 3875 ev/s
  p.other_event_cpu = nanoseconds(774);          // 0.3% at 3878 ev/s
  p.ram_bytes = 16 * kGiB;
  p.fsmonitor_rss_bytes = p.ram_bytes / 10000;
  p.other_rss_bytes = p.ram_bytes / 10000;
  return p;
}

}  // namespace fsmon::localfs
