#include "src/localfs/sim_dsi.hpp"

#include "src/common/string_util.hpp"

namespace fsmon::localfs {

using core::EventKind;
using core::StdEvent;

namespace {

StdEvent make_event(EventKind kind, std::string path, bool is_dir, common::TimePoint ts,
                    std::string source, std::uint64_t cookie = 0) {
  StdEvent event;
  event.kind = kind;
  event.path = std::move(path);
  event.is_dir = is_dir;
  event.timestamp = ts;
  event.source = std::move(source);
  event.cookie = cookie;
  return event;
}

}  // namespace

std::vector<StdEvent> standardize_inotify(const NativeEvent& event) {
  const bool is_dir = (event.flags & kInIsDir) != 0;
  const std::uint32_t kind_bits = event.flags & ~kInIsDir;
  std::vector<StdEvent> out;
  auto add = [&](EventKind kind) {
    out.push_back(make_event(kind, event.path, is_dir, event.timestamp, "inotify",
                             event.cookie));
  };
  if (kind_bits & kInCreate) add(EventKind::kCreate);
  if (kind_bits & kInModify) add(EventKind::kModify);
  if (kind_bits & kInAttrib) add(EventKind::kAttrib);
  if (kind_bits & kInCloseWrite) add(EventKind::kClose);
  if (kind_bits & kInOpen) add(EventKind::kOpen);
  if (kind_bits & kInDelete) add(EventKind::kDelete);
  if (kind_bits & kInMovedFrom) add(EventKind::kMovedFrom);
  if (kind_bits & kInMovedTo) add(EventKind::kMovedTo);
  return out;
}

std::vector<StdEvent> standardize_fsevents(const NativeEvent& event,
                                           std::uint64_t rename_cookie) {
  const bool is_dir = (event.flags & kFseIsDir) != 0;
  std::vector<StdEvent> out;
  // A single FSEvents record can carry several flags after coalescing;
  // emit one standardized event per flag in causal order.
  auto add = [&](EventKind kind, std::uint64_t cookie = 0) {
    out.push_back(make_event(kind, event.path, is_dir, event.timestamp, "fsevents", cookie));
  };
  if (event.flags & kFseCreated) add(EventKind::kCreate);
  if (event.flags & kFseModified) add(EventKind::kModify);
  if (event.flags & kFseInodeMetaMod) add(EventKind::kAttrib);
  if (event.flags & kFseRenamed) {
    // FSEvents reports renames as two per-path records; the caller pairs
    // adjacent ones with a shared cookie and alternating FROM/TO.
    add(rename_cookie % 2 == 1 ? EventKind::kMovedFrom : EventKind::kMovedTo,
        (rename_cookie + 1) / 2);
  }
  if (event.flags & kFseRemoved) add(EventKind::kDelete);
  return out;
}

std::vector<StdEvent> standardize_fsw(const NativeEvent& event,
                                      std::uint64_t rename_cookie) {
  std::vector<StdEvent> out;
  switch (event.flags) {
    case kFswCreated:
      out.push_back(make_event(EventKind::kCreate, event.path, false, event.timestamp,
                               "filesystemwatcher"));
      break;
    case kFswChanged:
      out.push_back(make_event(EventKind::kModify, event.path, false, event.timestamp,
                               "filesystemwatcher"));
      break;
    case kFswDeleted:
      out.push_back(make_event(EventKind::kDelete, event.path, false, event.timestamp,
                               "filesystemwatcher"));
      break;
    case kFswRenamed:
      // RenamedEventArgs carries both paths in one record.
      out.push_back(make_event(EventKind::kMovedFrom, event.path, false, event.timestamp,
                               "filesystemwatcher", rename_cookie));
      out.push_back(make_event(EventKind::kMovedTo, event.dest_path, false, event.timestamp,
                               "filesystemwatcher", rename_cookie));
      break;
    default: break;
  }
  return out;
}

SimDsiBase::SimDsiBase(MemFs& fs, common::Clock& clock, std::string name)
    : fs_(fs), clock_(clock), name_(std::move(name)) {}

common::Status SimDsiBase::start(EventCallback callback) {
  callback_ = std::move(callback);
  if (!listener_installed_) {
    // MemFs listeners are permanent; gate on running_ so stop() works.
    fs_.add_listener([this](const FsAction& action) {
      if (!running_.load(std::memory_order_acquire) || !callback_) return;
      for (auto& event : translate(action)) callback_(std::move(event));
    });
    listener_installed_ = true;
  }
  running_.store(true, std::memory_order_release);
  return common::Status::ok();
}

void SimDsiBase::stop() { running_.store(false, std::memory_order_release); }

std::vector<StdEvent> SimInotifyDsi::translate(const FsAction& action) {
  std::vector<StdEvent> out;
  for (const auto& native : emitter_.on_action(action, clock_.now())) {
    auto events = standardize_inotify(native);
    out.insert(out.end(), events.begin(), events.end());
  }
  for (auto& event : out) event.source = "sim-inotify";
  return out;
}

void SimKqueueDsi::diff_directory(const std::string& dir, std::vector<StdEvent>& out) {
  auto& snapshot = snapshots_[dir];
  std::map<std::string, bool> current;
  for (const auto& [name, is_dir] : fs_.list(dir)) current.emplace(name, is_dir);
  const std::string prefix = dir == "/" ? "/" : dir + "/";
  for (const auto& [name, is_dir] : current) {
    if (snapshot.count(name) == 0) {
      out.push_back(make_event(EventKind::kCreate, prefix + name, is_dir, clock_.now(),
                               "sim-kqueue"));
    }
  }
  for (const auto& [name, is_dir] : snapshot) {
    if (current.count(name) == 0) {
      out.push_back(make_event(EventKind::kDelete, prefix + name, is_dir, clock_.now(),
                               "sim-kqueue"));
    }
  }
  snapshot = std::move(current);
}

std::vector<StdEvent> SimKqueueDsi::translate(const FsAction& action) {
  std::vector<StdEvent> out;
  for (const auto& native : emitter_.on_action(action, clock_.now())) {
    if (native.flags & kNoteRename) {
      const std::uint64_t cookie = next_cookie_++;
      const bool is_dir = fs_.is_directory(native.dest_path);
      out.push_back(make_event(EventKind::kMovedFrom, native.path, is_dir, native.timestamp,
                               "sim-kqueue", cookie));
      out.push_back(make_event(EventKind::kMovedTo, native.dest_path, is_dir,
                               native.timestamp, "sim-kqueue", cookie));
      // Refresh the affected directory snapshots without re-reporting.
      auto& src_snap = snapshots_[common::parent_path(native.path)];
      src_snap.erase(common::base_name(native.path));
      snapshots_[common::parent_path(native.dest_path)]
          .emplace(common::base_name(native.dest_path), is_dir);
      continue;
    }
    const bool subject_is_dir = fs_.is_directory(native.path);
    if (subject_is_dir && (native.flags & (kNoteWrite | kNoteLink))) {
      diff_directory(native.path, out);
      continue;
    }
    if (native.flags & kNoteWrite)
      out.push_back(make_event(EventKind::kModify, native.path, false, native.timestamp,
                               "sim-kqueue"));
    if (native.flags & kNoteAttrib)
      out.push_back(make_event(EventKind::kAttrib, native.path, subject_is_dir,
                               native.timestamp, "sim-kqueue"));
    if (native.flags & (kNoteClose | kNoteCloseWrite))
      out.push_back(make_event(EventKind::kClose, native.path, subject_is_dir,
                               native.timestamp, "sim-kqueue"));
    if (native.flags & kNoteOpen)
      out.push_back(make_event(EventKind::kOpen, native.path, subject_is_dir,
                               native.timestamp, "sim-kqueue"));
    // NOTE_DELETE on the node itself: the parent diff already reports the
    // deletion by name; nothing further to emit here.
  }
  return out;
}

std::vector<StdEvent> SimFsEventsDsi::translate(const FsAction& action) {
  std::vector<StdEvent> out;
  for (const auto& native : emitter_.on_action(action, clock_.now())) {
    std::uint64_t cookie = 0;
    if (native.flags & kFseRenamed) cookie = next_cookie_++;
    auto events = standardize_fsevents(native, cookie);
    for (auto& event : events) event.source = "sim-fsevents";
    out.insert(out.end(), events.begin(), events.end());
  }
  return out;
}

std::vector<StdEvent> SimFswDsi::translate(const FsAction& action) {
  // FileSystemWatcher buffers then delivers; the simulated DSI drains
  // synchronously, so loss happens only via emitter overflow (tested
  // directly on the emitter).
  if (!emitter_.on_action(action, clock_.now())) return {};
  std::vector<StdEvent> out;
  for (const auto& native : emitter_.drain()) {
    std::uint64_t cookie = 0;
    if (native.flags == kFswRenamed) cookie = next_cookie_++;
    auto events = standardize_fsw(native, cookie);
    for (auto& event : events) {
      // The drain is synchronous with the action, so the action's subject
      // type applies to every event produced by it.
      event.is_dir = action.is_dir;
      event.source = "sim-filesystemwatcher";
    }
    out.insert(out.end(), events.begin(), events.end());
  }
  return out;
}

void register_sim_dsis(core::DsiRegistry& registry, MemFs& fs, common::Clock& clock) {
  registry.register_dsi("sim-inotify", [&fs, &clock](const core::StorageDescriptor&) {
    return common::Result<std::unique_ptr<core::DsiBase>>(
        std::make_unique<SimInotifyDsi>(fs, clock));
  });
  registry.register_dsi("sim-kqueue", [&fs, &clock](const core::StorageDescriptor&) {
    return common::Result<std::unique_ptr<core::DsiBase>>(
        std::make_unique<SimKqueueDsi>(fs, clock));
  });
  registry.register_dsi("sim-fsevents", [&fs, &clock](const core::StorageDescriptor& d) {
    const auto window_us = d.params.get_int("fsevents.latency_us", 0);
    return common::Result<std::unique_ptr<core::DsiBase>>(std::make_unique<SimFsEventsDsi>(
        fs, clock, std::chrono::microseconds(window_us)));
  });
  registry.register_dsi("sim-filesystemwatcher",
                        [&fs, &clock](const core::StorageDescriptor& d) {
                          const auto buffer = d.params.get_int("fsw.buffer_bytes", 8192);
                          return common::Result<std::unique_ptr<core::DsiBase>>(
                              std::make_unique<SimFswDsi>(fs, clock,
                                                          static_cast<std::size_t>(buffer)));
                        });
}

}  // namespace fsmon::localfs
