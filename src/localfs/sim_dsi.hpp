// Simulated local-platform DSIs.
//
// Four DSIs standardize the four native dialects over a MemFs backend:
//   sim-inotify          — mask bits + rename cookies
//   sim-kqueue           — per-vnode flags; child create/delete recovered
//                          by diffing a directory snapshot (what real
//                          kqueue monitors like watchdog must do)
//   sim-fsevents         — per-path flag words, possibly coalesced;
//                          rename pairing reconstructed from adjacency
//   sim-filesystemwatcher — Created/Changed/Deleted/Renamed
//
// Each converts native events to StdEvent — the same translation code a
// real macOS/BSD/Windows backend would run — and feeds the FSMonitor
// callback synchronously from the MemFs mutation.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/common/clock.hpp"
#include "src/core/dsi.hpp"
#include "src/localfs/memfs.hpp"
#include "src/localfs/native.hpp"

namespace fsmon::localfs {

/// Standardizers (pure; unit-tested directly). Each maps one native
/// event to zero or more StdEvents (without ids / watch roots — the
/// resolution layer fills those in).
std::vector<core::StdEvent> standardize_inotify(const NativeEvent& event);
std::vector<core::StdEvent> standardize_fsevents(const NativeEvent& event,
                                                 std::uint64_t rename_cookie);
std::vector<core::StdEvent> standardize_fsw(const NativeEvent& event,
                                            std::uint64_t rename_cookie);

/// Common plumbing for the simulated DSIs.
class SimDsiBase : public core::DsiBase {
 public:
  SimDsiBase(MemFs& fs, common::Clock& clock, std::string name);

  std::string name() const override { return name_; }
  common::Status start(EventCallback callback) override;
  void stop() override;
  bool running() const override { return running_.load(); }

 protected:
  /// Dialect-specific: turn one MemFs action into standardized events.
  virtual std::vector<core::StdEvent> translate(const FsAction& action) = 0;

  MemFs& fs_;
  common::Clock& clock_;

 private:
  std::string name_;
  std::atomic<bool> running_{false};
  bool listener_installed_ = false;
  EventCallback callback_;
};

class SimInotifyDsi final : public SimDsiBase {
 public:
  SimInotifyDsi(MemFs& fs, common::Clock& clock)
      : SimDsiBase(fs, clock, "sim-inotify") {}

 protected:
  std::vector<core::StdEvent> translate(const FsAction& action) override;

 private:
  InotifyEmitter emitter_;
};

class SimKqueueDsi final : public SimDsiBase {
 public:
  SimKqueueDsi(MemFs& fs, common::Clock& clock)
      : SimDsiBase(fs, clock, "sim-kqueue") {}

 protected:
  std::vector<core::StdEvent> translate(const FsAction& action) override;

 private:
  /// Diff the directory against its snapshot, emitting CREATE/DELETE for
  /// appeared/vanished children, then refresh the snapshot.
  void diff_directory(const std::string& dir, std::vector<core::StdEvent>& out);

  KqueueEmitter emitter_;
  std::map<std::string, std::map<std::string, bool>> snapshots_;  // dir -> name -> is_dir
  std::uint64_t next_cookie_ = 1;
};

class SimFsEventsDsi final : public SimDsiBase {
 public:
  SimFsEventsDsi(MemFs& fs, common::Clock& clock, common::Duration latency_window = {})
      : SimDsiBase(fs, clock, "sim-fsevents"), emitter_(latency_window) {}

  const FsEventsEmitter& emitter() const { return emitter_; }

 protected:
  std::vector<core::StdEvent> translate(const FsAction& action) override;

 private:
  FsEventsEmitter emitter_;
  std::uint64_t next_cookie_ = 1;
};

class SimFswDsi final : public SimDsiBase {
 public:
  SimFswDsi(MemFs& fs, common::Clock& clock, std::size_t buffer_bytes = 8192)
      : SimDsiBase(fs, clock, "sim-filesystemwatcher"), emitter_(buffer_bytes) {}

  std::uint64_t overflows() const { return emitter_.overflows(); }

 protected:
  std::vector<core::StdEvent> translate(const FsAction& action) override;

 private:
  FswEmitter emitter_;
  std::uint64_t next_cookie_ = 1;
};

/// Bind the four simulated DSIs to `fs` and register them with
/// `registry` under their scheme names.
void register_sim_dsis(core::DsiRegistry& registry, MemFs& fs, common::Clock& clock);

}  // namespace fsmon::localfs
