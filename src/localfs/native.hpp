// Native event dialects and emitters.
//
// Each platform's monitoring facility reports raw events in its own
// vocabulary (paper Section II-A). The emitters here translate MemFs
// actions into those raw dialects — with real flag values — so the
// simulated DSIs exercise exactly the standardization work a real
// backend performs: inotify masks, kqueue per-vnode NOTE_* flags that
// require directory diffing to name the changed child, FSEvents flag
// coalescing within a latency window, and FileSystemWatcher's four event
// types with a bounded, overflowable buffer.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/localfs/memfs.hpp"

namespace fsmon::localfs {

// Real inotify mask bits (linux/inotify.h).
inline constexpr std::uint32_t kInAccess = 0x001;
inline constexpr std::uint32_t kInModify = 0x002;
inline constexpr std::uint32_t kInAttrib = 0x004;
inline constexpr std::uint32_t kInCloseWrite = 0x008;
inline constexpr std::uint32_t kInOpen = 0x020;
inline constexpr std::uint32_t kInMovedFrom = 0x040;
inline constexpr std::uint32_t kInMovedTo = 0x080;
inline constexpr std::uint32_t kInCreate = 0x100;
inline constexpr std::uint32_t kInDelete = 0x200;
inline constexpr std::uint32_t kInIsDir = 0x40000000;

// Real kqueue EVFILT_VNODE fflags (sys/event.h).
inline constexpr std::uint32_t kNoteDelete = 0x001;
inline constexpr std::uint32_t kNoteWrite = 0x002;
inline constexpr std::uint32_t kNoteExtend = 0x004;
inline constexpr std::uint32_t kNoteAttrib = 0x008;
inline constexpr std::uint32_t kNoteLink = 0x010;
inline constexpr std::uint32_t kNoteRename = 0x020;
inline constexpr std::uint32_t kNoteOpen = 0x080;
inline constexpr std::uint32_t kNoteClose = 0x100;
inline constexpr std::uint32_t kNoteCloseWrite = 0x200;

// Real FSEvents stream flags (FSEvents.h).
inline constexpr std::uint32_t kFseCreated = 0x00000100;
inline constexpr std::uint32_t kFseRemoved = 0x00000200;
inline constexpr std::uint32_t kFseInodeMetaMod = 0x00000400;
inline constexpr std::uint32_t kFseRenamed = 0x00000800;
inline constexpr std::uint32_t kFseModified = 0x00001000;
inline constexpr std::uint32_t kFseIsFile = 0x00010000;
inline constexpr std::uint32_t kFseIsDir = 0x00020000;

// .NET WatcherChangeTypes values.
inline constexpr std::uint32_t kFswCreated = 1;
inline constexpr std::uint32_t kFswDeleted = 2;
inline constexpr std::uint32_t kFswChanged = 4;
inline constexpr std::uint32_t kFswRenamed = 8;

/// A raw event as the native facility would deliver it.
struct NativeEvent {
  std::uint32_t flags = 0;
  std::string path;       ///< Event subject (dialect-specific meaning).
  std::string dest_path;  ///< Rename destination where the dialect has one.
  std::uint32_t cookie = 0;  ///< inotify rename-pair cookie.
  common::TimePoint timestamp{};
};

/// inotify: one watch per directory; events name the child via the
/// record's name field — here folded into `path`.
class InotifyEmitter {
 public:
  std::vector<NativeEvent> on_action(const FsAction& action, common::TimePoint now);

 private:
  std::uint32_t next_cookie_ = 1;
};

/// kqueue: per-vnode flags. Child create/delete appears only as
/// NOTE_WRITE on the parent directory vnode — the consumer must diff the
/// directory to learn what changed.
class KqueueEmitter {
 public:
  std::vector<NativeEvent> on_action(const FsAction& action, common::TimePoint now);
};

/// FSEvents: per-path flag words, coalesced within a latency window
/// (the `latency` parameter of FSEventStreamCreate). A window of zero
/// disables coalescing.
class FsEventsEmitter {
 public:
  explicit FsEventsEmitter(common::Duration latency_window = {})
      : window_(latency_window) {}

  /// May emit previously held (coalesced) events that have aged out.
  std::vector<NativeEvent> on_action(const FsAction& action, common::TimePoint now);

  /// Emit every held event regardless of age.
  std::vector<NativeEvent> flush(common::TimePoint now);

  std::uint64_t coalesced() const { return coalesced_; }

 private:
  struct Pending {
    std::uint32_t flags = 0;
    common::TimePoint first;
  };

  std::vector<NativeEvent> age_out(common::TimePoint now);

  common::Duration window_;
  std::map<std::string, Pending> pending_;  // path -> accumulated flags
  std::deque<std::string> order_;           // flush order (by first touch)
  std::uint64_t coalesced_ = 0;
};

/// FileSystemWatcher: four change types delivered through a fixed-size
/// internal buffer; overflow loses events (paper Section II-A).
class FswEmitter {
 public:
  explicit FswEmitter(std::size_t buffer_bytes = 8192) : capacity_(buffer_bytes) {}

  /// Returns true when the event was buffered; false on overflow (the
  /// event is lost and the overflow counter ticks).
  bool on_action(const FsAction& action, common::TimePoint now);

  /// Consumer side: drain buffered events (frees buffer space).
  std::vector<NativeEvent> drain(std::size_t max_events = SIZE_MAX);

  std::uint64_t overflows() const { return overflows_; }
  std::size_t buffered_bytes() const { return used_; }

 private:
  static std::size_t event_cost(const NativeEvent& event);

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::deque<NativeEvent> buffer_;
  std::uint64_t overflows_ = 0;
};

}  // namespace fsmon::localfs
