// Collector service: one per MDS (paper Section IV "Detection").
//
// Registers a changelog user on its MDS, reads records in batches,
// processes them through Algorithm 1 (EventProcessor + LRU fid2path
// cache), publishes the resolved events to the aggregator through the
// pub/sub queue, and purges the changelog up to the last processed
// record ("a pointer is maintained to the most recently processed event
// tuple and all previous events are cleared").
//
// With resolver_threads > 1 the per-record resolution fans out to a
// worker pool: records are submitted in changelog order (applying
// delete/rename cache invalidations at their ordered position), workers
// resolve concurrently, and a sequence-numbered reorder buffer
// re-assembles completions in changelog order before publish — the
// published per-MDT stream keeps exactly the serial ordering guarantee.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "src/common/clock.hpp"
#include "src/common/rate_meter.hpp"
#include "src/common/thread_pool.hpp"
#include "src/lustre/filesystem.hpp"
#include "src/lustre/profiles.hpp"
#include "src/msgq/pubsub.hpp"
#include "src/scalable/processor.hpp"
#include "src/scalable/reorder_buffer.hpp"

namespace fsmon::scalable {

struct CollectorOptions {
  std::size_t batch_size = 512;
  /// Max resolved events per published batch frame. Each changelog batch
  /// is chunked to this size; 1 degenerates to the old frame-per-event
  /// path (used by tests and the ablation bench baseline).
  std::size_t publish_batch = 512;
  /// Poll delay when the changelog is empty.
  common::Duration poll_interval = std::chrono::milliseconds(1);
  /// fid2path cache size; 0 disables caching (the paper's baseline).
  std::size_t cache_size = 5000;
  /// Resolver worker threads. 1 (default) preserves the serial path
  /// exactly; >1 resolves records on a pool with in-order publish.
  std::size_t resolver_threads = 1;
  /// Modeled per-record costs; zero for pure-throughput threaded runs.
  ProcessorCosts costs;
  lustre::FidResolverOptions resolver;
  /// Events are published under topic_prefix + "mdt<i>".
  std::string topic_prefix = "fsmon/";
  /// Observability registry; null = uninstrumented (zero overhead).
  /// Registers collector.* / fid2path.* / fidcache.* labelled mdt=<i>.
  obs::MetricsRegistry* metrics = nullptr;
};

class Collector {
 public:
  Collector(lustre::LustreFs& fs, std::uint32_t mds_index,
            std::shared_ptr<msgq::Publisher> publisher, CollectorOptions options,
            common::Clock& clock);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  common::Status start();
  void stop();
  bool running() const { return running_.load(); }

  /// Drain whatever is currently in the changelog synchronously (used by
  /// deterministic tests instead of the polling thread). Returns records
  /// processed.
  std::size_t drain_once();

  std::uint32_t mds_index() const { return mds_index_; }
  ProcessorStats processor_stats() const { return processor_.stats(); }
  std::optional<common::LruStats> cache_stats() const {
    if (cache_ == nullptr) return std::nullopt;
    return cache_->stats();
  }
  std::size_t resolver_threads() const {
    return pool_ == nullptr ? 1 : pool_->thread_count();
  }
  std::uint64_t records_processed() const { return records_.load(); }
  std::uint64_t events_published() const { return published_.load(); }
  double report_rate() const { return meter_.average_rate(); }

 private:
  void run(std::stop_token stop);
  std::size_t process_batch();
  std::size_t run_batch_serial(const std::vector<lustre::ChangelogRecord>& records);
  std::size_t run_batch_parallel(const std::vector<lustre::ChangelogRecord>& records);
  void publish_events(core::EventBatch& batch);

  lustre::LustreFs& fs_;
  std::uint32_t mds_index_;
  std::shared_ptr<msgq::Publisher> publisher_;
  CollectorOptions options_;
  common::Clock& clock_;
  std::string user_id_;
  std::string topic_;
  lustre::FidResolver resolver_;
  std::unique_ptr<EventProcessor::FidCache> cache_;
  EventProcessor processor_;
  common::RateMeter meter_;
  ReorderBuffer<EventProcessor::Output> reorder_;
  std::jthread worker_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> records_{0};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::int64_t> inflight_{0};
  obs::Counter* batches_counter_ = nullptr;
  obs::Counter* records_counter_ = nullptr;
  obs::Counter* published_counter_ = nullptr;
  obs::HistogramMetric* batch_size_hist_ = nullptr;
  obs::HistogramMetric* batch_bytes_hist_ = nullptr;
  obs::Gauge* publish_rate_gauge_ = nullptr;
  obs::Gauge* inflight_gauge_ = nullptr;
  obs::Gauge* reorder_depth_gauge_ = nullptr;
  /// Declared last: destroyed first, so pool workers join while every
  /// member they touch (reorder_, processor_, cache_) is still alive.
  std::unique_ptr<common::ThreadPool> pool_;
};

}  // namespace fsmon::scalable
