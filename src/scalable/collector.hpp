// Collector service: one per MDS (paper Section IV "Detection").
//
// Registers a changelog user on its MDS, reads records in batches,
// processes them through Algorithm 1 (EventProcessor + LRU fid2path
// cache), publishes the resolved events to the aggregator through the
// pub/sub queue, and purges the changelog up to the *acknowledged*
// record: the aggregator acks each MDT's watermark once the events are
// durably in its custody, and only then does the collector issue
// changelog_clear ("a pointer is maintained to the most recently
// processed event tuple and all previous events are cleared"). A read
// cursor runs ahead of the cleared index, so a crash between publish
// and persist re-reads exactly the unacknowledged suffix on restart.
//
// With resolver_threads > 1 the per-record resolution fans out to a
// worker pool: records are submitted in changelog order (applying
// delete/rename cache invalidations at their ordered position), workers
// resolve concurrently, and a sequence-numbered reorder buffer
// re-assembles completions in changelog order before publish — the
// published per-MDT stream keeps exactly the serial ordering guarantee.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "src/common/clock.hpp"
#include "src/common/rate_meter.hpp"
#include "src/common/thread_pool.hpp"
#include "src/lustre/filesystem.hpp"
#include "src/lustre/profiles.hpp"
#include "src/msgq/pubsub.hpp"
#include "src/scalable/clear_guard.hpp"
#include "src/scalable/processor.hpp"
#include "src/scalable/reorder_buffer.hpp"
#include "src/transport/transport.hpp"

namespace fsmon::scalable {

class ShardRouter;

struct CollectorOptions {
  std::size_t batch_size = 512;
  /// Max resolved events per published batch frame. Each changelog batch
  /// is chunked to this size; 1 degenerates to the old frame-per-event
  /// path (used by tests and the ablation bench baseline).
  std::size_t publish_batch = 512;
  /// Poll delay when the changelog is empty.
  common::Duration poll_interval = std::chrono::milliseconds(1);
  /// fid2path cache size; 0 disables caching (the paper's baseline).
  std::size_t cache_size = 5000;
  /// Resolver worker threads. 1 (default) preserves the serial path
  /// exactly; >1 resolves records on a pool with in-order publish.
  std::size_t resolver_threads = 1;
  /// Modeled per-record costs; zero for pure-throughput threaded runs.
  ProcessorCosts costs;
  lustre::FidResolverOptions resolver;
  /// Events are published under topic_prefix + "mdt<i>".
  std::string topic_prefix = "fsmon/";
  /// How long a stopping collector waits for the aggregator's persistence
  /// acks to catch up with its last published record before giving up on
  /// clearing the changelog (the records stay retained and are re-read on
  /// restart — safe, just not tidy).
  common::Duration stop_flush_timeout = std::chrono::seconds(2);
  /// Observability registry; null = uninstrumented (zero overhead).
  /// Registers collector.* / fid2path.* / fidcache.* labelled mdt=<i>.
  obs::MetricsRegistry* metrics = nullptr;
};

class Collector {
 public:
  /// Transport-agnostic form: the collector publishes through `sender`
  /// and never learns which transport (in-proc bus, shm ring, TCP) the
  /// hop rides on.
  Collector(lustre::LustreFs& fs, std::uint32_t mds_index,
            std::shared_ptr<transport::Sender> sender, CollectorOptions options,
            common::Clock& clock);
  /// Bus compat: wraps the publisher in an InProcSender.
  Collector(lustre::LustreFs& fs, std::uint32_t mds_index,
            std::shared_ptr<msgq::Publisher> publisher, CollectorOptions options,
            common::Clock& clock);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  common::Status start();
  void stop();
  bool running() const { return running_.load(); }

  /// Publish through a shard router instead of the raw publisher: each
  /// frame is routed (synchronously, on this collector's thread) to the
  /// aggregator shard owning its source, preserving the refused-publish
  /// rewind signal. Null (default) keeps the direct publisher path.
  /// Not thread-safe; set before start().
  void set_router(ShardRouter* router) { router_ = router; }

  /// Drain whatever is currently in the changelog synchronously (used by
  /// deterministic tests instead of the polling thread). Returns records
  /// processed.
  std::size_t drain_once();

  /// The aggregator acknowledged durable custody of every record of this
  /// MDT up to `record_index` (persisted to the store, or fanned out when
  /// no store is configured). Raises the clear watermark; the collector
  /// thread applies the actual changelog_clear. Any thread.
  void on_persist_ack(std::uint64_t record_index);

  /// Request/retry the changelog_clear up to the acked watermark. Called
  /// by the collector thread each poll and by deterministic drains after
  /// the aggregator has been pumped. Returns false while a clear is still
  /// pending (server failure — retried on the next call).
  bool apply_acked_clear();

  /// Fail-stop this collector as a crash harness would: the polling
  /// thread exits without the graceful final drain or ack wait, and all
  /// in-memory progress (read cursor, pending acks) is considered lost.
  void crash();
  /// Restart after crash(): rewind the read cursor to the server-side
  /// cleared index (everything unacknowledged is re-read and
  /// re-published; the aggregator dedupes) and start the polling thread.
  common::Status restart();
  /// Rewind the read cursor to the server-side cleared index. Used when
  /// the *aggregator* crashed: frames it never persisted are gone, so
  /// unacked records must be re-published. Safe while running (the
  /// rewind is applied by the collector thread before its next read).
  void rewind_to_cleared();
  bool crashed() const { return crashed_.load(); }

  /// Highest record index acknowledged as durable by the aggregator.
  std::uint64_t acked_record_index() const { return acked_.load(); }
  std::uint64_t clear_failures() const { return clear_guard_->failures(); }
  /// Records re-read (and re-published) after a rewind.
  std::uint64_t replayed_records() const { return replayed_records_.load(); }

  std::uint32_t mds_index() const { return mds_index_; }
  ProcessorStats processor_stats() const { return processor_.stats(); }
  std::optional<common::LruStats> cache_stats() const {
    if (cache_ == nullptr) return std::nullopt;
    return cache_->stats();
  }
  std::size_t resolver_threads() const {
    return pool_ == nullptr ? 1 : pool_->thread_count();
  }
  std::uint64_t records_processed() const { return records_.load(); }
  std::uint64_t events_published() const { return published_.load(); }
  double report_rate() const { return meter_.average_rate(); }

 private:
  void run(std::stop_token stop);
  std::size_t process_batch();
  std::size_t run_batch_serial(const std::vector<lustre::ChangelogRecord>& records);
  std::size_t run_batch_parallel(const std::vector<lustre::ChangelogRecord>& records);
  void publish_events(core::EventBatch& batch);
  void apply_rewind();

  lustre::LustreFs& fs_;
  std::uint32_t mds_index_;
  std::shared_ptr<transport::Sender> sender_;
  ShardRouter* router_ = nullptr;  ///< Optional; see set_router().
  CollectorOptions options_;
  common::Clock& clock_;
  std::string user_id_;
  std::string topic_;
  lustre::FidResolver resolver_;
  std::unique_ptr<EventProcessor::FidCache> cache_;
  EventProcessor processor_;
  common::RateMeter meter_;
  ReorderBuffer<EventProcessor::Output> reorder_;
  std::jthread worker_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> records_{0};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::int64_t> inflight_{0};
  /// Read-ahead cursor: index of the last record read. Decoupled from the
  /// server-side cleared index, which lags at the acked watermark.
  /// Collector-thread-only.
  std::uint64_t read_cursor_ = 0;
  /// Highest record index ever read; re-reading below it is a replay.
  std::uint64_t max_read_index_ = 0;
  std::unique_ptr<ClearGuard> clear_guard_;
  std::atomic<std::uint64_t> acked_{0};
  std::atomic<std::uint64_t> last_published_index_{0};
  std::atomic<std::uint64_t> replayed_records_{0};
  std::atomic<bool> crashed_{false};
  std::atomic<bool> rewind_requested_{false};
  obs::Counter* clear_failures_counter_ = nullptr;
  obs::Counter* replayed_counter_ = nullptr;
  obs::Counter* batches_counter_ = nullptr;
  obs::Counter* records_counter_ = nullptr;
  obs::Counter* published_counter_ = nullptr;
  obs::HistogramMetric* batch_size_hist_ = nullptr;
  obs::HistogramMetric* batch_bytes_hist_ = nullptr;
  obs::Gauge* publish_rate_gauge_ = nullptr;
  obs::Gauge* inflight_gauge_ = nullptr;
  obs::Gauge* reorder_depth_gauge_ = nullptr;
  /// Declared last: destroyed first, so pool workers join while every
  /// member they touch (reorder_, processor_, cache_) is still alive.
  std::unique_ptr<common::ThreadPool> pool_;
};

}  // namespace fsmon::scalable
