#include "src/scalable/sharded_aggregator.hpp"

#include "src/transport/inproc.hpp"

namespace fsmon::scalable {

using common::Result;
using common::Status;

ShardedAggregator::ShardedAggregator(msgq::Bus& bus, const std::string& name,
                                     ShardedAggregatorOptions options,
                                     common::Clock& clock)
    : map_(options.shards) {
  if (options.transport != nullptr) {
    transport_ = options.transport;
  } else {
    owned_transport_ = std::make_unique<transport::InProcTransport>(bus);
    transport_ = owned_transport_.get();
  }
  if (options.aggregator.metrics != nullptr)
    transport_->attach_metrics(options.aggregator.metrics);
  const std::size_t n = map_.shards();
  shards_.reserve(n);
  topics_.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    AggregatorOptions shard_options = options.aggregator;
    shard_options.transport = transport_;
    std::string shard_name = name;
    if (n > 1) {
      const std::string suffix = "shard" + std::to_string(k);
      shard_name += "/" + suffix;
      shard_options.output_topic += "/" + suffix;
      if (shard_options.store)
        shard_options.store->directory /= suffix;
      shard_options.labels.emplace("shard", std::to_string(k));
      shard_options.fault_scope = "aggregator." + suffix + ".";
    }
    topics_.push_back(shard_options.output_topic);
    shards_.push_back(std::make_unique<Aggregator>(bus, std::move(shard_name),
                                                   std::move(shard_options), clock));
  }
  // One router sender per shard, wired straight to that shard's fan-in
  // receiver. The router hands each frame to exactly one of these; the
  // handoff cost is whatever the transport makes it (a refcount bump
  // in-proc, one ring write over shm).
  std::vector<std::shared_ptr<transport::Sender>> senders;
  senders.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    auto sender = transport_->make_sender(name + "/router/shard" + std::to_string(k));
    sender->connect(shards_[k]->input());
    senders.push_back(std::move(sender));
  }
  router_ = std::make_unique<ShardRouter>(map_, std::move(senders), clock,
                                          options.aggregator.metrics);
}

Status ShardedAggregator::start() {
  for (auto& shard : shards_) {
    if (auto s = shard->start(); !s.is_ok()) return s;
  }
  return Status::ok();
}

void ShardedAggregator::stop() {
  for (auto& shard : shards_) shard->stop();
}

void ShardedAggregator::set_ack_callback(Aggregator::AckCallback callback) {
  for (auto& shard : shards_) shard->set_ack_callback(callback);
}

void ShardedAggregator::set_nack_callback(Aggregator::NackCallback callback) {
  for (auto& shard : shards_) shard->set_nack_callback(callback);
}

Result<std::vector<core::StdEvent>> ShardedAggregator::events_since(
    VectorCursor& cursor, std::size_t max_events) const {
  const std::size_t n = shards_.size();
  cursor.ensure(n);
  std::vector<core::StdEvent> out;
  if (max_events == 0) return out;

  // One buffered page per shard; refilled independently as heads drain,
  // so an arbitrarily deep merged backlog materializes at most
  // n * chunk events at a time. No store lock is held between fetches —
  // each events_since call pages out of the store and returns.
  const std::size_t chunk =
      std::min<std::size_t>(4096, std::max<std::size_t>(max_events / n, 1));
  struct Head {
    std::vector<core::StdEvent> page;
    std::size_t pos = 0;
    bool exhausted = false;
  };
  std::vector<Head> heads(n);
  auto refill = [&](std::size_t k) -> Status {
    Head& head = heads[k];
    head.page.clear();
    head.pos = 0;
    auto events = shards_[k]->events_since(cursor.last_ids[k], chunk);
    if (!events) return events.status();
    head.page = std::move(events.value());
    if (head.page.size() < chunk) head.exhausted = true;
    return Status::ok();
  };
  for (std::size_t k = 0; k < n; ++k) {
    if (auto s = refill(k); !s.is_ok()) return s;
  }

  while (out.size() < max_events) {
    // Pop the smallest (timestamp, shard) head. Head comparison only:
    // within a shard the store order (its id order) is never disturbed,
    // so the merged stream restricted to one shard IS that shard's
    // replay — the permutation-free contract.
    std::size_t best = n;
    for (std::size_t k = 0; k < n; ++k) {
      const Head& head = heads[k];
      if (head.pos >= head.page.size()) continue;
      if (best == n ||
          head.page[head.pos].timestamp < heads[best].page[heads[best].pos].timestamp)
        best = k;
    }
    if (best == n) break;  // every shard drained
    core::StdEvent& event = heads[best].page[heads[best].pos++];
    cursor.last_ids[best] = event.id;
    out.push_back(std::move(event));
    if (heads[best].pos >= heads[best].page.size() && !heads[best].exhausted) {
      if (auto s = refill(best); !s.is_ok()) return s;
    }
  }
  return out;
}

void ShardedAggregator::acknowledge(const VectorCursor& cursor) {
  const std::size_t n = std::min(cursor.size(), shards_.size());
  for (std::size_t k = 0; k < n; ++k) {
    if (cursor.last_ids[k] > 0) shards_[k]->acknowledge(cursor.last_ids[k]);
  }
}

std::size_t ShardedAggregator::purge() {
  std::size_t purged = 0;
  for (auto& shard : shards_) purged += shard->purge();
  return purged;
}

std::uint64_t ShardedAggregator::last_event_id_sum() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->last_event_id();
  return total;
}

std::uint64_t ShardedAggregator::aggregated() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->aggregated();
  return total;
}

std::uint64_t ShardedAggregator::persisted() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->persisted();
  return total;
}

bool ShardedAggregator::any_crashed() const {
  for (const auto& shard : shards_) {
    if (shard->crashed()) return true;
  }
  return false;
}

}  // namespace fsmon::scalable
