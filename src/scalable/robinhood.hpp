// Robinhood-style baseline (paper Sections II-B2 and V-D5).
//
// "A Robinhood server runs on the Lustre client and queries each MDS for
// events by querying the Changelogs. It then saves the events in a
// database on the Lustre client. For multiple MDSs, Robinhood polls all
// MDSs one at a time in a round robin fashion."
//
// This baseline implements exactly that architecture: a single
// client-side poller visiting MDSs round-robin, processing records
// client-side (its own Algorithm 1 processor and cache), and appending
// the resolved events to a client-side store. The contrast with
// FSMonitor — per-MDS parallel collectors pushing to an MGS aggregator —
// is the Section V-D5 experiment.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/clock.hpp"
#include "src/common/rate_meter.hpp"
#include "src/lustre/filesystem.hpp"
#include "src/scalable/clear_guard.hpp"
#include "src/scalable/processor.hpp"

namespace fsmon::scalable {

struct RobinhoodOptions {
  std::size_t batch_size = 2000;
  std::size_t cache_size = 5000;
  common::Duration poll_interval = std::chrono::milliseconds(1);
  ProcessorCosts costs;
  lustre::FidResolverOptions resolver;
  /// Observability registry; null = uninstrumented. Registers
  /// robinhood.clear_failures labelled mds=<i>.
  obs::MetricsRegistry* metrics = nullptr;
};

class RobinhoodPoller {
 public:
  RobinhoodPoller(lustre::LustreFs& fs, RobinhoodOptions options, common::Clock& clock);
  ~RobinhoodPoller();

  RobinhoodPoller(const RobinhoodPoller&) = delete;
  RobinhoodPoller& operator=(const RobinhoodPoller&) = delete;

  common::Status start();
  void stop();

  /// One full round-robin sweep over all MDSs, synchronously; returns
  /// records processed (deterministic tests).
  std::size_t sweep_once();

  std::uint64_t records_processed() const { return records_.load(); }
  std::uint64_t records_from_mds(std::uint32_t mds) const {
    return per_mds_.at(mds)->load();
  }
  /// Failed changelog_clear attempts (each is retried on a later poll).
  std::uint64_t clear_failures() const;
  double process_rate() const { return meter_.average_rate(); }
  const std::vector<core::StdEvent>& database() const { return database_; }
  ProcessorStats processor_stats() const { return processor_.stats(); }

 private:
  void run(std::stop_token stop);
  std::size_t poll_mds(std::uint32_t index);

  lustre::LustreFs& fs_;
  RobinhoodOptions options_;
  common::Clock& clock_;
  std::vector<std::string> user_ids_;
  /// Client-side read cursors, ahead of the server cleared indices: a
  /// failed clear must not make the poller re-process records it has
  /// already stored (that would duplicate them in the database).
  std::vector<std::uint64_t> cursors_;
  std::vector<std::unique_ptr<ClearGuard>> clear_guards_;
  lustre::FidResolver resolver_;
  std::unique_ptr<EventProcessor::FidCache> cache_;
  EventProcessor processor_;
  common::RateMeter meter_;
  std::vector<core::StdEvent> database_;  // client-side event DB
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> per_mds_;
  std::jthread worker_;
  std::atomic<std::uint64_t> records_{0};
  std::atomic<bool> running_{false};
};

}  // namespace fsmon::scalable
