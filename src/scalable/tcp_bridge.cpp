#include "src/scalable/tcp_bridge.hpp"

#include <algorithm>
#include <charconv>

#include "src/chaos/fault.hpp"
#include "src/common/logging.hpp"

namespace fsmon::scalable {

using common::Status;

namespace {

/// Events per frame when streaming a replay; bounds peak frame size.
constexpr std::size_t kReplayChunk = 256;

/// Shard index from a frame topic's "/shard<k>" suffix; 0 when absent
/// (one-shard deployments publish under the bare base topic).
std::size_t shard_of_topic(const std::string& topic) {
  const auto pos = topic.rfind("/shard");
  if (pos == std::string::npos) return 0;
  std::size_t shard = 0;
  bool digits = false;
  for (std::size_t i = pos + 6; i < topic.size(); ++i) {
    const char c = topic[i];
    if (c < '0' || c > '9') return 0;
    shard = shard * 10 + static_cast<std::size_t>(c - '0');
    digits = true;
  }
  return digits ? shard : 0;
}

}  // namespace

AggregatorTcpBridge::AggregatorTcpBridge(ShardedAggregator& aggregator, msgq::Bus& bus)
    : aggregator_(aggregator) {
  (void)bus;  // kept for API stability; the tap rides the tier's transport
  tap_ = aggregator_.transport().make_receiver("tcp-bridge-tap", 1 << 16,
                                               transport::OverflowPolicy::kBlock);
  tap_->subscribe("");
  // One tap across every shard output: frames keep their per-shard
  // topics, so remote consumers can attribute each frame to its shard.
  for (std::size_t k = 0; k < aggregator_.shard_count(); ++k)
    aggregator_.shard(k).connect_output(tap_);
  tcp_.set_control_handler(
      [this](const msgq::Message& request,
             const std::shared_ptr<msgq::TcpConnection>& connection) {
        if (request.topic == std::string(1, msgq::kControlPrefix) + "replay")
          serve_replay(request, connection);
      });
}

AggregatorTcpBridge::~AggregatorTcpBridge() { stop(); }

Status AggregatorTcpBridge::start(std::uint16_t port) {
  if (running_.load()) return Status::ok();
  if (auto s = tcp_.start(port); !s.is_ok()) return s;
  running_.store(true);
  pump_ = std::jthread([this](std::stop_token stop) { pump_loop(stop); });
  return Status::ok();
}

void AggregatorTcpBridge::stop() {
  if (!running_.exchange(false)) return;
  tap_->close();
  if (pump_.joinable()) {
    pump_.request_stop();
    pump_.join();
  }
  tcp_.stop();
}

void AggregatorTcpBridge::pump_loop(std::stop_token) {
  for (;;) {
    auto frame = tap_->recv();
    if (!frame) break;  // closed and drained
    // Chaos: a dropped frame models the network losing an entire batch
    // in flight — consumers must detect the id gap and replay.
    if (auto outcome = chaos::fault("tcp.drop");
        outcome && outcome.action == chaos::FaultAction::kDrop) {
      dropped_frames_.fetch_add(1);
      continue;
    }
    // Hand the shared frame bytes straight to the TCP fan-out: the
    // publisher scatter-gathers header + payload from the FrameRef, so
    // the bridge never assembles (or copies) a wire buffer.
    msgq::Message message;
    message.topic = std::move(frame->topic);
    message.frame = std::move(frame->payload);
    tcp_.publish(message);
    // Frames are forwarded opaquely; count the events inside so the
    // counter stays comparable across batch sizes.
    auto view = core::view_batch(message.byte_span(), /*verify_crc=*/false);
    forwarded_.fetch_add(view ? view.value().count : 1);
  }
}

void AggregatorTcpBridge::serve_replay(const msgq::Message& request,
                                       const std::shared_ptr<msgq::TcpConnection>& connection) {
  // Vector-cursor payload: "id0,id1,...". A single number is a one-shard
  // cursor (the historic wire format); a shorter vector than the shard
  // count replays the missing shards from the start (safe over-replay —
  // the consumer's dedup window collapses it).
  auto cursor = VectorCursor::decode(
      std::string_view(request.payload.data(), request.payload.size()));
  if (!cursor) {
    FSMON_WARN("tcp-bridge", "malformed replay request payload: ", request.payload);
    return;
  }
  cursor->ensure(aggregator_.shard_count());
  // Stream shard by shard in bounded chunks on the requesting connection
  // only — other subscribers never see another consumer's catch-up
  // traffic. Each chunk is paged out of the shard's store in turn, so an
  // arbitrarily deep backlog never materializes in bridge memory. Every
  // reply carries the shard's topic, so the consumer advances the right
  // cursor slot; per-shard contiguity is preserved (merging is the
  // receiver's concern, same as for live traffic).
  for (std::size_t k = 0; k < aggregator_.shard_count(); ++k) {
    common::EventId after = cursor->at(k);
    for (;;) {
      auto events = aggregator_.shard(k).events_since(after, kReplayChunk);
      if (!events) {
        FSMON_WARN("tcp-bridge", "replay shard ", k, " after ", after,
                   " failed: ", events.status().to_string());
        return;
      }
      if (events.value().empty()) break;
      core::EventBatch chunk;
      chunk.events = std::move(events.value());
      after = chunk.events.back().id;
      auto frame = core::encode_batch(chunk);
      msgq::Message reply{aggregator_.output_topic(k),
                          std::string(reinterpret_cast<const char*>(frame.data()), frame.size())};
      if (!connection->send(reply).is_ok()) return;  // requester vanished
      replayed_.fetch_add(chunk.size());
      if (chunk.size() < kReplayChunk) break;
    }
  }
}

RemoteConsumer::~RemoteConsumer() { stop(); }

Status RemoteConsumer::connect(const std::string& host, std::uint16_t port) {
  // After a reconnect the frames sent while the link was down are gone:
  // ask the bridge to replay everything after the per-shard cursor. Runs
  // on the transport reader thread, before any new live frame is read.
  subscriber_.set_reconnect_callback([this] { (void)request_replay(); });
  if (auto s = subscriber_.connect(host, port); !s.is_ok()) return s;
  if (auto s = subscriber_.subscribe(options_.topic); !s.is_ok()) return s;
  worker_ = std::jthread([this](std::stop_token stop) { run(stop); });
  return Status::ok();
}

Status RemoteConsumer::request_replay() {
  std::string cursor;
  {
    std::lock_guard lock(cursor_mu_);
    cursor = last_seen_.encode();
  }
  return subscriber_.send_control(
      msgq::Message{std::string(1, msgq::kControlPrefix) + "replay", std::move(cursor)});
}

Status RemoteConsumer::request_replay(common::EventId after_id) {
  VectorCursor cursor;
  {
    std::lock_guard lock(cursor_mu_);
    cursor = last_seen_;
  }
  cursor.ensure(1);
  cursor.last_ids[0] = after_id;
  return subscriber_.send_control(msgq::Message{
      std::string(1, msgq::kControlPrefix) + "replay", cursor.encode()});
}

void RemoteConsumer::stop() {
  subscriber_.disconnect();
  if (worker_.joinable()) {
    worker_.request_stop();
    worker_.join();
  }
}

bool RemoteConsumer::matches(const core::StdEvent& event) const {
  return compiled_.matches(event);
}

void RemoteConsumer::run(std::stop_token) {
  for (;;) {
    auto message = subscriber_.recv();
    if (!message) break;
    auto batch = core::decode_batch(
        std::as_bytes(std::span(message->payload.data(), message->payload.size())));
    if (!batch) {
      FSMON_WARN("remote-consumer", "corrupt batch frame: ", batch.status().to_string());
      continue;
    }
    if (batch.value().empty()) continue;
    const auto& events = batch.value().events;
    // Each frame belongs to one shard (its topic carries the shard
    // suffix); shard id sequences are independent, so gap detection and
    // the cursor are per shard. A jump in a shard's dense id sequence
    // means frames were lost in flight (dropped, or sent while the link
    // was down): fetch the hole from the reliable store. The replayed
    // frames overlap what already arrived; the dedup window keeps
    // delivery exactly-once.
    const std::size_t shard = shard_of_topic(message->topic);
    common::EventId previous = 0;
    VectorCursor replay_cursor;
    bool gap = false;
    {
      std::lock_guard lock(cursor_mu_);
      previous = last_seen_.at(shard);
      gap = previous > 0 && events.front().id > previous + 1;
      if (gap) {
        // Snapshot the cursor BEFORE advancing past the hole: the
        // replay must start at the pre-gap watermark of this shard.
        replay_cursor = last_seen_;
        replay_cursor.ensure(shard + 1);
        replay_cursor.last_ids[shard] = previous;
      }
      if (events.back().id > previous) last_seen_.advance(shard, events.back().id);
      last_seen_sum_.store(last_seen_.sum());
    }
    if (gap) {
      (void)subscriber_.send_control(msgq::Message{
          std::string(1, msgq::kControlPrefix) + "replay", replay_cursor.encode()});
    }
    // Whole-batch dedup decisions first (a rename pair shares a cookie
    // and travels in one frame), then mark — mirrors Consumer.
    std::vector<bool> deliverable(events.size(), true);
    for (std::size_t i = 0; i < events.size(); ++i) {
      const core::StdEvent& event = events[i];
      if (event.cookie == 0 || event.source.empty()) continue;
      auto it = dedup_.find(event.source);
      if (it != dedup_.end() && !it->second.fresh(event.cookie)) {
        deliverable[i] = false;
        duplicates_.fetch_add(1);
      }
    }
    for (const core::StdEvent& event : events) {
      if (event.cookie == 0 || event.source.empty()) continue;
      dedup_[event.source].mark(event.cookie);
    }
    core::EventBatch matched;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (!deliverable[i]) continue;
      const core::StdEvent& event = events[i];
      if (!matches(event)) {
        filtered_.fetch_add(1);
        continue;
      }
      delivered_.fetch_add(1);
      if (batch_callback_)
        matched.events.push_back(event);
      else if (callback_)
        callback_(event);
    }
    if (batch_callback_ && !matched.empty()) batch_callback_(matched);
  }
}

}  // namespace fsmon::scalable
