#include "src/scalable/tcp_bridge.hpp"

#include "src/common/logging.hpp"

namespace fsmon::scalable {

using common::Status;

AggregatorTcpBridge::AggregatorTcpBridge(Aggregator& aggregator, msgq::Bus& bus)
    : aggregator_(aggregator) {
  tap_ = bus.make_subscriber("tcp-bridge-tap", 1 << 16);
  tap_->subscribe("");
  aggregator_.output()->connect(tap_);
}

AggregatorTcpBridge::~AggregatorTcpBridge() { stop(); }

Status AggregatorTcpBridge::start(std::uint16_t port) {
  if (running_.load()) return Status::ok();
  if (auto s = tcp_.start(port); !s.is_ok()) return s;
  running_.store(true);
  pump_ = std::jthread([this](std::stop_token stop) { pump_loop(stop); });
  return Status::ok();
}

void AggregatorTcpBridge::stop() {
  if (!running_.exchange(false)) return;
  tap_->close();
  if (pump_.joinable()) {
    pump_.request_stop();
    pump_.join();
  }
  tcp_.stop();
}

void AggregatorTcpBridge::pump_loop(std::stop_token) {
  for (;;) {
    auto message = tap_->recv();
    if (!message) break;  // closed and drained
    tcp_.publish(*message);
    // Frames are forwarded opaquely; count the events inside so the
    // counter stays comparable across batch sizes.
    auto view = core::view_batch(
        std::as_bytes(std::span(message->payload.data(), message->payload.size())),
        /*verify_crc=*/false);
    forwarded_.fetch_add(view ? view.value().count : 1);
  }
}

RemoteConsumer::~RemoteConsumer() { stop(); }

Status RemoteConsumer::connect(const std::string& host, std::uint16_t port) {
  if (auto s = subscriber_.connect(host, port); !s.is_ok()) return s;
  if (auto s = subscriber_.subscribe(options_.topic); !s.is_ok()) return s;
  worker_ = std::jthread([this](std::stop_token stop) { run(stop); });
  return Status::ok();
}

void RemoteConsumer::stop() {
  subscriber_.disconnect();
  if (worker_.joinable()) {
    worker_.request_stop();
    worker_.join();
  }
}

bool RemoteConsumer::matches(const core::StdEvent& event) const {
  if (options_.rules.empty()) return true;
  for (const auto& rule : options_.rules) {
    if (rule.matches(event)) return true;
  }
  return false;
}

void RemoteConsumer::run(std::stop_token) {
  for (;;) {
    auto message = subscriber_.recv();
    if (!message) break;
    auto batch = core::decode_batch(
        std::as_bytes(std::span(message->payload.data(), message->payload.size())));
    if (!batch) {
      FSMON_WARN("remote-consumer", "corrupt batch frame: ", batch.status().to_string());
      continue;
    }
    if (batch.value().empty()) continue;
    last_seen_.store(batch.value().events.back().id);
    core::EventBatch matched;
    for (const core::StdEvent& event : batch.value().events) {
      if (!matches(event)) {
        filtered_.fetch_add(1);
        continue;
      }
      delivered_.fetch_add(1);
      if (batch_callback_)
        matched.events.push_back(event);
      else if (callback_)
        callback_(event);
    }
    if (batch_callback_ && !matched.empty()) batch_callback_(matched);
  }
}

}  // namespace fsmon::scalable
