#include "src/scalable/sim_driver.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <vector>

#include "src/common/histogram.hpp"
#include "src/common/random.hpp"
#include "src/lustre/fid_resolver.hpp"
#include "src/scalable/processor.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/service_station.hpp"

namespace fsmon::scalable {

using common::Duration;
using common::TimePoint;

std::string_view to_string(SimWorkload workload) {
  switch (workload) {
    case SimWorkload::kMixed: return "mixed";
    case SimWorkload::kCreateDelete: return "create+delete";
    case SimWorkload::kCreateModify: return "create+modify";
    case SimWorkload::kCreateOnly: return "create-only";
    case SimWorkload::kModifyOnly: return "modify-only";
    case SimWorkload::kDeleteOnly: return "delete-only";
  }
  return "?";
}

namespace {

constexpr double kBytesPerMb = 1024.0 * 1024.0;

/// One client stream: its own directory and a rotating window of files.
struct Stream {
  std::string dir;
  bool dir_created = false;
  std::deque<std::string> live;  // oldest first
  std::uint64_t next_file = 0;
  int phase = 0;  // cycles through the workload's op sequence
};

/// Drives Evaluate_Performance_Script-style load onto the LustreFs.
class WorkloadDriver {
 public:
  /// When `target_mdt` is >= 0, every stream directory is chosen (by
  /// probing DNE placement) to land on that MDT, reproducing the paper's
  /// balanced per-MDS generation ("events are generated from all four
  /// MDSs", Section V-D1).
  WorkloadDriver(lustre::LustreFs& fs, const SimConfig& config, int target_mdt = -1)
      : fs_(fs),
        config_(config),
        rng_(config.seed + static_cast<std::uint64_t>(target_mdt + 1) * 7919),
        zipf_(std::max<std::size_t>(1, config.profile.dir_pool),
              config.profile.dir_zipf_skew) {
    const std::string base =
        target_mdt < 0 ? "/perf" : "/perf" + std::to_string(target_mdt);
    fs_.mkdir(base);
    streams_.resize(zipf_.size());
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      std::string dir = base + "/d" + std::to_string(i);
      if (target_mdt >= 0) {
        // Probe salted names until DNE placement lands on the target.
        for (std::uint32_t salt = 0;; ++salt) {
          auto placement = fs_.preview_dir_placement(dir);
          if (placement && *placement == static_cast<std::uint32_t>(target_mdt)) break;
          dir = base + "/d" + std::to_string(i) + "s" + std::to_string(salt);
        }
      }
      streams_[i].dir = std::move(dir);
    }
  }

  /// Execute one metadata operation; returns true when an event-producing
  /// operation actually ran.
  bool step() {
    Stream& stream = streams_[zipf_.sample(rng_)];
    if (!stream.dir_created) {
      // Directory setup is not counted as a workload event (it runs once
      // per stream, like the script's setup phase) but it does appear in
      // the changelog like any other operation.
      fs_.mkdir(stream.dir);
      stream.dir_created = true;
    }
    switch (config_.workload) {
      case SimWorkload::kMixed:
        switch (stream.phase) {
          case 0: do_create(stream); break;
          case 1: do_modify(stream); break;
          default: do_delete(stream); break;
        }
        stream.phase = (stream.phase + 1) % 3;
        return true;
      case SimWorkload::kCreateDelete:
        if (stream.phase == 0) {
          do_create(stream);
        } else {
          do_delete(stream);
        }
        stream.phase ^= 1;
        return true;
      case SimWorkload::kCreateModify:
        // Bound the live set: rotate create/modify over the window.
        if (stream.phase == 0 && stream.live.size() < config_.files_per_stream) {
          do_create(stream);
        } else {
          do_modify(stream);
        }
        stream.phase ^= 1;
        return true;
      case SimWorkload::kCreateOnly: do_create(stream); return true;
      case SimWorkload::kModifyOnly:
        if (stream.live.empty()) do_create(stream);  // seed, still an event
        do_modify(stream);
        return true;
      case SimWorkload::kDeleteOnly:
        if (stream.live.empty()) do_create(stream);
        do_delete(stream);
        return true;
    }
    return false;
  }

 private:
  void do_create(Stream& stream) {
    const std::string path = stream.dir + "/f" + std::to_string(stream.next_file++);
    if (fs_.create(path).is_ok()) stream.live.push_back(path);
  }

  void do_modify(Stream& stream) {
    if (stream.live.empty()) {
      do_create(stream);
      return;
    }
    fs_.modify(stream.live.back(), 4096);
  }

  void do_delete(Stream& stream) {
    // Delete the oldest file once the window is full; otherwise keep
    // growing the window (so early deletes do not starve the stream).
    if (stream.live.size() < std::max<std::size_t>(1, config_.files_per_stream)) {
      if (stream.live.empty()) {
        do_create(stream);
        return;
      }
    }
    const std::string victim = stream.live.front();
    stream.live.pop_front();
    fs_.unlink(victim);
  }

  lustre::LustreFs& fs_;
  const SimConfig& config_;
  common::Rng rng_;
  common::ZipfSampler zipf_;
  std::vector<Stream> streams_;
};

/// Collector state in the simulation: real processor + cache, virtual
/// time accounting.
struct SimCollector {
  std::unique_ptr<lustre::FidResolver> resolver;
  std::unique_ptr<EventProcessor::FidCache> cache;
  std::unique_ptr<EventProcessor> processor;
  std::string user_id;
  common::ModeledUsage usage;
  std::uint64_t processed = 0;
  std::size_t peak_backlog = 0;
  std::uint64_t peak_memory_bytes = 0;
  /// Robinhood mode: processed events waiting for the client poller.
  std::deque<core::StdEvent> outbox;
  std::size_t peak_outbox = 0;
  bool busy = false;
};

struct SimState {
  const SimConfig& config;
  sim::Engine engine;
  std::unique_ptr<lustre::LustreFs> fs;
  std::vector<std::unique_ptr<WorkloadDriver>> drivers;  // one per MDS
  std::vector<SimCollector> collectors;
  std::uint64_t generated = 0;
  std::uint64_t reported = 0;
  std::uint64_t per_mds_reported[16] = {};
  // Aggregator / consumer as serial stations.
  std::unique_ptr<sim::ServiceStation> aggregator;
  std::unique_ptr<sim::ServiceStation> consumer;
  common::Histogram latency_ns;  ///< Operation time -> consumer delivery.
  std::size_t aggregator_peak_queue = 0;
  std::size_t consumer_peak_queue = 0;
  obs::Counter* generated_counter = nullptr;
  obs::Counter* reported_counter = nullptr;
  obs::HistogramMetric* delivery_latency_hist = nullptr;
  obs::Gauge* aggregator_peak_gauge = nullptr;
  obs::Gauge* consumer_peak_gauge = nullptr;
  obs::HistogramMetric* batch_size_hist = nullptr;

  explicit SimState(const SimConfig& cfg) : config(cfg) {
    lustre::LustreFsOptions fs_options = cfg.profile.fs_options;
    fs_options.mdt_count = std::max<std::uint32_t>(1, cfg.mds_count);
    fs = std::make_unique<lustre::LustreFs>(fs_options, engine.clock());
    if (fs_options.mdt_count == 1) {
      drivers.push_back(std::make_unique<WorkloadDriver>(*fs, cfg));
    } else {
      // Balanced per-MDS load, as in the paper's multi-MDS experiment.
      for (std::uint32_t m = 0; m < fs_options.mdt_count; ++m)
        drivers.push_back(std::make_unique<WorkloadDriver>(*fs, cfg, static_cast<int>(m)));
    }

    lustre::FidResolverOptions resolver_options;
    resolver_options.base_cost = cfg.profile.fid2path_cost;
    resolver_options.per_component_cost = Duration::zero();

    ProcessorCosts costs;
    costs.base_latency = cfg.profile.collector_base_cost;
    costs.base_cpu = cfg.profile.collector_base_cpu;
    costs.fid2path_cpu = cfg.profile.fid2path_cpu;
    costs.cache_lookup_coeff = cfg.profile.cache_lookup_coeff;

    collectors.resize(fs_options.mdt_count);
    for (std::uint32_t i = 0; i < fs_options.mdt_count; ++i) {
      auto& c = collectors[i];
      c.resolver = std::make_unique<lustre::FidResolver>(*fs, resolver_options, nullptr);
      if (cfg.cache_size > 0)
        c.cache = std::make_unique<EventProcessor::FidCache>(cfg.cache_size);
      c.processor = std::make_unique<EventProcessor>(*c.resolver, c.cache.get(), costs,
                                                     "lustre:MDT" + std::to_string(i));
      c.user_id = fs->mds(i).register_changelog_user();
    }
    aggregator = std::make_unique<sim::ServiceStation>(engine, "aggregator");
    consumer = std::make_unique<sim::ServiceStation>(engine, "consumer");

    if (cfg.metrics != nullptr) {
      auto& registry = *cfg.metrics;
      fs->attach_metrics(registry);
      for (std::uint32_t i = 0; i < fs_options.mdt_count; ++i) {
        const obs::Labels labels{{"mdt", std::to_string(i)}};
        collectors[i].resolver->attach_metrics(registry, labels);
        collectors[i].processor->attach_metrics(registry, labels);
      }
      generated_counter = &registry.counter(
          "sim.events_generated", {}, "Metadata operations generated by the workload",
          "events");
      reported_counter = &registry.counter(
          "sim.events_reported", {}, "Events delivered to the simulated consumer",
          "events");
      delivery_latency_hist = &registry.histogram(
          "consumer.delivery_latency_us", {},
          "Operation time to consumer delivery (virtual time)", "us");
      aggregator_peak_gauge = &registry.gauge("aggregator.queue_depth_peak", {},
                                              "High-water mark of the fan-in backlog",
                                              "events");
      consumer_peak_gauge = &registry.gauge("consumer.queue_depth_peak", {},
                                            "High-water mark of the consumer inbox",
                                            "events");
      batch_size_hist = &registry.histogram(
          "aggregator.batch_size", {},
          "Events per batch frame pumped through the aggregator", "events");
    }
  }

  double per_mds_rate() const {
    return config.rate_override > 0 ? config.rate_override
                                    : config.profile.mixed_event_rate;
  }

  void schedule_generation() {
    // One deterministic arrival process per driver, phase-offset so
    // multi-MDS arrivals interleave rather than burst.
    const auto interval = common::from_seconds(1.0 / per_mds_rate());
    for (std::size_t d = 0; d < drivers.size(); ++d) {
      auto arrival = std::make_shared<std::function<void()>>();
      WorkloadDriver* driver = drivers[d].get();
      *arrival = [this, interval, arrival, driver] {
        if (engine.now().time_since_epoch() >= config.duration) return;
        if (driver->step()) {
          ++generated;
          if (generated_counter != nullptr) generated_counter->inc();
        }
        engine.schedule(interval, *arrival);
      };
      engine.schedule(interval * static_cast<std::int64_t>(d) /
                          static_cast<std::int64_t>(drivers.size()),
                      *arrival);
    }
  }

  void sample_collector_memory(std::uint32_t i) {
    auto& c = collectors[i];
    const std::size_t backlog = fs->mds(i).mdt().changelog().retained() + c.outbox.size();
    c.peak_backlog = std::max(c.peak_backlog, backlog);
    const std::uint64_t mem =
        config.profile.collector_base_bytes +
        static_cast<std::uint64_t>(backlog) * config.profile.event_bytes +
        static_cast<std::uint64_t>(c.cache ? c.cache->size() : 0) *
            config.profile.cache_entry_bytes;
    c.peak_memory_bytes = std::max(c.peak_memory_bytes, mem);
  }

  /// Deliver one event into the aggregator -> consumer chain.
  void submit_downstream(std::uint32_t mds_index, common::TimePoint op_time) {
    aggregator->usage().charge_busy(config.profile.aggregator_event_cpu);
    aggregator->submit(config.profile.aggregator_event_cost, [this, mds_index, op_time] {
      consumer->usage().charge_busy(config.profile.consumer_event_cpu);
      consumer->submit(config.profile.consumer_event_cost, [this, mds_index, op_time] {
        if (engine.now().time_since_epoch() <= config.duration) {
          ++reported;
          ++per_mds_reported[mds_index % 16];
          const auto lag_ns = (engine.now() - op_time).count();
          latency_ns.record(static_cast<std::uint64_t>(lag_ns));
          if (reported_counter != nullptr) {
            reported_counter->inc();
            delivery_latency_hist->record(static_cast<std::uint64_t>(lag_ns / 1000));
          }
        }
      });
      consumer_peak_queue = std::max(consumer_peak_queue, consumer->queue_depth());
      if (consumer_peak_gauge != nullptr)
        consumer_peak_gauge->set_max(static_cast<std::int64_t>(consumer->queue_depth()));
    });
    aggregator_peak_queue = std::max(aggregator_peak_queue, aggregator->queue_depth());
    if (aggregator_peak_gauge != nullptr)
      aggregator_peak_gauge->set_max(static_cast<std::int64_t>(aggregator->queue_depth()));
  }

  /// Collector tick: batch-read, process (charging serial latency), then
  /// hand off and reschedule.
  void collector_tick(std::uint32_t i, std::size_t batch, Duration poll_interval,
                      bool robinhood_mode) {
    auto& c = collectors[i];
    if (c.busy) return;
    sample_collector_memory(i);
    if (engine.now().time_since_epoch() >= config.duration &&
        fs->mds(i).mdt().changelog().retained() == 0)
      return;  // run is over and nothing left to do
    auto records = fs->mds(i).changelog_read(c.user_id, batch);
    if (!records || records.value().empty()) {
      engine.schedule(poll_interval, [this, i, batch, poll_interval, robinhood_mode] {
        collector_tick(i, batch, poll_interval, robinhood_mode);
      });
      return;
    }
    Duration total_latency = config.changelog_read_overhead;
    std::vector<core::StdEvent> outputs;
    outputs.reserve(records.value().size());
    for (const auto& record : records.value()) {
      auto out = c.processor->process(record);
      total_latency += out.latency;
      c.usage.charge_busy(out.cpu);
      for (auto& event : out.events) outputs.push_back(std::move(event));
    }
    const std::uint64_t last_index = records.value().back().index;
    const std::size_t n = records.value().size();
    c.busy = true;
    engine.schedule(total_latency, [this, i, batch, poll_interval, robinhood_mode,
                                    last_index, n,
                                    outputs = std::move(outputs)]() mutable {
      auto& col = collectors[i];
      col.busy = false;
      col.processed += n;
      fs->mds(i).changelog_clear(col.user_id, last_index);
      if (robinhood_mode) {
        for (auto& event : outputs) col.outbox.push_back(std::move(event));
        col.peak_outbox = std::max(col.peak_outbox, col.outbox.size());
      } else {
        if (batch_size_hist != nullptr && !outputs.empty())
          batch_size_hist->record(outputs.size());
        for (auto& event : outputs) submit_downstream(i, event.timestamp);
      }
      sample_collector_memory(i);
      collector_tick(i, batch, poll_interval, robinhood_mode);
    });
  }

  SimReport report() const {
    SimReport r;
    const double seconds = common::to_seconds(config.duration);
    r.generated = generated;
    r.reported = reported;
    r.generated_rate = generated / seconds;
    r.reported_rate = reported / seconds;
    for (int i = 0; i < 16; ++i) r.per_mds_reported[i] = per_mds_reported[i];

    double cpu_sum = 0;
    double mem_max = 0;
    std::uint64_t hits = 0, lookups = 0;
    for (const auto& c : collectors) {
      cpu_sum += c.usage.cpu_percent(config.duration);
      mem_max = std::max(mem_max, static_cast<double>(c.peak_memory_bytes) / kBytesPerMb);
      r.fid2path_calls += c.processor->stats().fid2path_calls;
      r.fid2path_failures += c.processor->stats().fid2path_failures;
      r.unresolved += c.processor->stats().unresolved;
      hits += c.processor->stats().cache_hits;
      lookups += c.processor->stats().cache_hits + c.processor->stats().cache_misses;
      r.peak_backlog_records = std::max(r.peak_backlog_records, c.peak_backlog);
    }
    r.collector.cpu_percent = cpu_sum / static_cast<double>(collectors.size());
    r.collector.memory_mb = mem_max;
    r.cache_hit_rate = lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;

    r.aggregator.cpu_percent = aggregator->usage().cpu_percent(config.duration);
    r.aggregator.memory_mb =
        (config.profile.aggregator_base_bytes +
         static_cast<double>(aggregator_peak_queue) * config.profile.event_bytes) /
        kBytesPerMb;
    r.consumer.cpu_percent = consumer->usage().cpu_percent(config.duration);
    r.consumer.memory_mb =
        (config.profile.consumer_base_bytes +
         static_cast<double>(consumer_peak_queue) * config.profile.event_bytes) /
        kBytesPerMb;
    r.latency_p50_ms = latency_ns.quantile(0.5) / 1e6;
    r.latency_p99_ms = latency_ns.quantile(0.99) / 1e6;
    r.latency_max_ms = static_cast<double>(latency_ns.max()) / 1e6;
    return r;
  }
};

}  // namespace

SimReport run_pipeline_sim(const SimConfig& config) {
  SimState state(config);
  state.schedule_generation();
  const Duration poll = std::chrono::milliseconds(1);
  for (std::uint32_t i = 0; i < state.collectors.size(); ++i)
    state.collector_tick(i, config.collector_batch, poll, /*robinhood_mode=*/false);
  // Run generation plus a bounded drain window.
  state.engine.run_until(TimePoint{} + config.duration + std::chrono::seconds(2));
  return state.report();
}

SimReport run_robinhood_sim(const SimConfig& config) {
  SimState state(config);
  state.schedule_generation();
  const Duration poll = std::chrono::milliseconds(1);
  for (std::uint32_t i = 0; i < state.collectors.size(); ++i)
    state.collector_tick(i, config.collector_batch, poll, /*robinhood_mode=*/true);

  // Client-side round-robin poller: per visit pay an RPC round trip,
  // then ingest up to robinhood_batch events at the per-event cost.
  auto poller = std::make_shared<std::function<void(std::uint32_t)>>();
  auto& engine = state.engine;
  const auto& profile = config.profile;
  *poller = [&state, &engine, &profile, poller, &config](std::uint32_t index) {
    if (engine.now().time_since_epoch() >= config.duration + std::chrono::seconds(2)) return;
    auto& c = state.collectors[index];
    const std::size_t n = std::min(c.outbox.size(), profile.robinhood_batch);
    for (std::size_t k = 0; k < n; ++k) c.outbox.pop_front();
    const Duration visit_cost =
        profile.robinhood_poll_rtt +
        profile.robinhood_event_cost * static_cast<std::int64_t>(n);
    const std::uint32_t next = (index + 1) % static_cast<std::uint32_t>(state.collectors.size());
    engine.schedule(visit_cost, [&state, poller, next, n, index, &config] {
      if (state.engine.now().time_since_epoch() <= config.duration) {
        state.reported += n;
        state.per_mds_reported[index % 16] += n;
      }
      (*poller)(next);
    });
  };
  engine.schedule(Duration::zero(), [poller] { (*poller)(0); });
  state.engine.run_until(TimePoint{} + config.duration + std::chrono::seconds(2));
  return state.report();
}

}  // namespace fsmon::scalable
