#include "src/scalable/collector.hpp"

#include "src/common/logging.hpp"

namespace fsmon::scalable {

using common::Status;

Collector::Collector(lustre::LustreFs& fs, std::uint32_t mds_index,
                     std::shared_ptr<msgq::Publisher> publisher, CollectorOptions options,
                     common::Clock& clock)
    : fs_(fs),
      mds_index_(mds_index),
      publisher_(std::move(publisher)),
      options_(std::move(options)),
      clock_(clock),
      topic_(options_.topic_prefix + "mdt" + std::to_string(mds_index)),
      resolver_(fs, options_.resolver, /*clock=*/nullptr),
      cache_(options_.cache_size > 0
                 ? std::make_unique<EventProcessor::FidCache>(options_.cache_size)
                 : nullptr),
      processor_(resolver_, cache_.get(), options_.costs,
                 "lustre:MDT" + std::to_string(mds_index)),
      meter_(clock) {
  user_id_ = fs_.mds(mds_index_).register_changelog_user();
  if (options_.metrics != nullptr) {
    auto& registry = *options_.metrics;
    const obs::Labels labels{{"mdt", std::to_string(mds_index_)}};
    batches_counter_ = &registry.counter("collector.batches", labels,
                                         "Non-empty changelog batches processed", "batches");
    records_counter_ = &registry.counter("collector.records_processed", labels,
                                         "Changelog records run through Algorithm 1",
                                         "records");
    published_counter_ =
        &registry.counter("collector.records_published", labels,
                          "Resolved events published to the aggregator", "events");
    batch_size_hist_ = &registry.histogram("collector.batch_size", labels,
                                           "Records per changelog_read batch", "records");
    batch_bytes_hist_ = &registry.histogram("collector.batch_bytes", labels,
                                            "Encoded bytes per published batch frame",
                                            "bytes");
    publish_rate_gauge_ = &registry.gauge("collector.publish_rate", labels,
                                          "Lifetime average records/second processed",
                                          "records/s");
    resolver_.attach_metrics(registry, labels);
    processor_.attach_metrics(registry, labels);
  }
}

Collector::~Collector() {
  stop();
  fs_.mds(mds_index_).deregister_changelog_user(user_id_);
}

Status Collector::start() {
  if (running_.load()) return Status::ok();
  running_.store(true);
  worker_ = std::jthread([this](std::stop_token stop) { run(stop); });
  return Status::ok();
}

void Collector::stop() {
  if (worker_.joinable()) {
    worker_.request_stop();
    worker_.join();
  }
  running_.store(false);
}

void Collector::publish_events(core::EventBatch& batch) {
  if (batch.empty()) return;
  const auto bytes = core::encode_batch(batch);
  publisher_->publish(topic_, std::string(reinterpret_cast<const char*>(bytes.data()),
                                          bytes.size()));
  if (batch_bytes_hist_ != nullptr) batch_bytes_hist_->record(bytes.size());
  batch.events.clear();
}

std::size_t Collector::process_batch() {
  auto records = fs_.mds(mds_index_).changelog_read(user_id_, options_.batch_size);
  if (!records || records.value().empty()) return 0;
  const std::size_t publish_batch = std::max<std::size_t>(1, options_.publish_batch);
  std::uint64_t last_index = 0;
  std::size_t events = 0;
  core::EventBatch pending;
  for (const auto& record : records.value()) {
    auto output = processor_.process(record);
    // Threaded mode pays modeled latency for real when configured.
    if (output.latency.count() > 0 && options_.costs.base_latency.count() > 0)
      clock_.sleep_for(output.latency);
    for (auto& event : output.events) {
      pending.events.push_back(std::move(event));
      ++events;
      if (pending.size() >= publish_batch) publish_events(pending);
    }
    last_index = record.index;
  }
  publish_events(pending);
  records_.fetch_add(records.value().size());
  published_.fetch_add(events);
  meter_.record(records.value().size());
  if (batches_counter_ != nullptr) {
    batches_counter_->inc();
    records_counter_->inc(records.value().size());
    published_counter_->inc(events);
    batch_size_hist_->record(records.value().size());
    publish_rate_gauge_->set(static_cast<std::int64_t>(meter_.snapshot().average_rate));
  }
  // Purge processed records (lfs changelog_clear).
  if (auto s = fs_.mds(mds_index_).changelog_clear(user_id_, last_index); !s.is_ok())
    FSMON_WARN("collector", "changelog_clear failed: ", s.to_string());
  return records.value().size();
}

std::size_t Collector::drain_once() {
  std::size_t total = 0;
  for (;;) {
    const std::size_t n = process_batch();
    if (n == 0) break;
    total += n;
  }
  return total;
}

void Collector::run(std::stop_token stop) {
  while (!stop.stop_requested()) {
    if (process_batch() == 0) clock_.sleep_for(options_.poll_interval);
  }
  // Final drain so no event is stranded in the changelog at shutdown.
  process_batch();
}

}  // namespace fsmon::scalable
