#include "src/scalable/collector.hpp"

#include <algorithm>

#include "src/chaos/fault.hpp"
#include "src/common/logging.hpp"
#include "src/scalable/shard_router.hpp"
#include "src/transport/inproc.hpp"

namespace fsmon::scalable {

using common::Status;

namespace {

/// Shards for the fid cache: enough to spread `threads` workers with
/// headroom, capped so tiny caches don't fragment.
std::size_t shard_count_for(std::size_t threads) {
  if (threads <= 1) return 1;
  std::size_t shards = 1;
  while (shards < threads * 4 && shards < 64) shards <<= 1;
  return shards;
}

}  // namespace

Collector::Collector(lustre::LustreFs& fs, std::uint32_t mds_index,
                     std::shared_ptr<msgq::Publisher> publisher, CollectorOptions options,
                     common::Clock& clock)
    : Collector(fs, mds_index,
                std::make_shared<transport::InProcSender>(std::move(publisher)),
                std::move(options), clock) {}

Collector::Collector(lustre::LustreFs& fs, std::uint32_t mds_index,
                     std::shared_ptr<transport::Sender> sender, CollectorOptions options,
                     common::Clock& clock)
    : fs_(fs),
      mds_index_(mds_index),
      sender_(std::move(sender)),
      options_(std::move(options)),
      clock_(clock),
      topic_(options_.topic_prefix + "mdt" + std::to_string(mds_index)),
      resolver_(fs, options_.resolver, /*clock=*/nullptr),
      cache_(options_.cache_size > 0
                 ? std::make_unique<EventProcessor::FidCache>(
                       options_.cache_size, shard_count_for(options_.resolver_threads))
                 : nullptr),
      processor_(resolver_, cache_.get(), options_.costs,
                 "lustre:MDT" + std::to_string(mds_index)),
      meter_(clock) {
  user_id_ = fs_.mds(mds_index_).register_changelog_user();
  if (options_.resolver_threads > 1)
    pool_ = std::make_unique<common::ThreadPool>(options_.resolver_threads);
  if (options_.metrics != nullptr) {
    clear_failures_counter_ = &options_.metrics->counter(
        "collector.clear_failures", {{"mdt", std::to_string(mds_index_)}},
        "changelog_clear attempts that failed and were queued for retry", "calls");
    replayed_counter_ = &options_.metrics->counter(
        "recovery.replayed_records", {{"mdt", std::to_string(mds_index_)}},
        "Changelog records re-read after a crash/rewind", "records");
  }
  clear_guard_ = std::make_unique<ClearGuard>(fs_.mds(mds_index_), user_id_,
                                              "collector.clear", clear_failures_counter_);
  clear_guard_->reset_from_server();
  read_cursor_ = clear_guard_->cleared();
  max_read_index_ = read_cursor_;
  acked_.store(read_cursor_);
  last_published_index_.store(read_cursor_);
  if (options_.metrics != nullptr) {
    auto& registry = *options_.metrics;
    const obs::Labels labels{{"mdt", std::to_string(mds_index_)}};
    batches_counter_ = &registry.counter("collector.batches", labels,
                                         "Non-empty changelog batches processed", "batches");
    records_counter_ = &registry.counter("collector.records_processed", labels,
                                         "Changelog records run through Algorithm 1",
                                         "records");
    published_counter_ =
        &registry.counter("collector.records_published", labels,
                          "Resolved events published to the aggregator", "events");
    batch_size_hist_ = &registry.histogram("collector.batch_size", labels,
                                           "Records per changelog_read batch", "records");
    batch_bytes_hist_ = &registry.histogram("collector.batch_bytes", labels,
                                            "Encoded bytes per published batch frame",
                                            "bytes");
    publish_rate_gauge_ = &registry.gauge("collector.publish_rate", labels,
                                          "Lifetime average records/second processed",
                                          "records/s");
    inflight_gauge_ = &registry.gauge("collector.resolver_inflight", labels,
                                      "Records currently fanned out to the resolver pool",
                                      "records");
    reorder_depth_gauge_ =
        &registry.gauge("collector.reorder_depth", labels,
                        "Peak completions parked out of order before in-order publish",
                        "records");
    resolver_.attach_metrics(registry, labels);
    processor_.attach_metrics(registry, labels);
  }
}

Collector::~Collector() {
  stop();
  fs_.mds(mds_index_).deregister_changelog_user(user_id_);
}

Status Collector::start() {
  if (running_.load()) return Status::ok();
  running_.store(true);
  worker_ = std::jthread([this](std::stop_token stop) { run(stop); });
  return Status::ok();
}

void Collector::stop() {
  if (worker_.joinable()) {
    worker_.request_stop();
    worker_.join();
  }
  running_.store(false);
}

void Collector::publish_events(core::EventBatch& batch) {
  if (batch.empty()) return;
  if (crashed_.load(std::memory_order_relaxed) ||
      rewind_requested_.load(std::memory_order_relaxed)) {
    // A pending rewind means everything from the cleared index forward
    // will be re-read; publishing ahead of it now could land frames past
    // a delivery hole and open a gap above the aggregator's watermark.
    batch.events.clear();
    return;
  }
  if (auto outcome = chaos::fault("collector.before_publish")) {
    if (outcome.action == chaos::FaultAction::kCrash) {
      crashed_.store(true);
      batch.events.clear();
      return;
    }
    if (outcome.action == chaos::FaultAction::kDelay) clock_.sleep_for(outcome.delay);
  }
  // Serialize once; from here the encoded bytes ride a ref-counted
  // FrameRef through every downstream hop — handoffs bump a refcount,
  // they never duplicate the frame.
  auto bytes = core::encode_batch(batch);
  const std::size_t frame_bytes = bytes.size();
  auto frame = transport::FrameRef::adopt(std::move(bytes));
  std::size_t accepted = 0;
  std::size_t subscribers = 0;
  if (router_ != nullptr) {
    // Routed path: the router picks the owning shard and sends into its
    // inbox synchronously, so refusal detection below still observes
    // the real downstream state.
    const auto routed = router_->route(topic_, std::move(frame));
    accepted = routed.accepted;
    subscribers = routed.subscribers;
  } else {
    const auto sent = sender_->send(topic_, std::move(frame));
    accepted = sent.accepted;
    subscribers = std::max<std::size_t>(sent.receivers, sender_->receiver_count());
  }
  if (accepted == 0 && subscribers > 0) {
    // The inbox refused the frame — it is closed across a downstream
    // crash window. The records are not lost (they stay unacked in the
    // changelog), but any later frame that does get through would start
    // past this hole; rewind so the run replays contiguously once the
    // downstream is back.
    rewind_requested_.store(true);
    batch.events.clear();
    return;
  }
  if (batch_bytes_hist_ != nullptr) batch_bytes_hist_->record(frame_bytes);
  batch.events.clear();
}

std::size_t Collector::run_batch_serial(const std::vector<lustre::ChangelogRecord>& records) {
  const std::size_t publish_batch = std::max<std::size_t>(1, options_.publish_batch);
  std::size_t events = 0;
  core::EventBatch pending;
  for (const auto& record : records) {
    auto output = processor_.process(record);
    // Threaded mode pays modeled latency for real when configured.
    if (output.latency.count() > 0 && options_.costs.base_latency.count() > 0)
      clock_.sleep_for(output.latency);
    for (auto& event : output.events) {
      pending.events.push_back(std::move(event));
      ++events;
    }
    // Flush at record boundaries only: a record's events (a rename's
    // MOVED_FROM/MOVED_TO pair) always travel in one frame, which the
    // recovery path's per-record dedup relies on.
    if (pending.size() >= publish_batch) publish_events(pending);
  }
  publish_events(pending);
  return events;
}

std::size_t Collector::run_batch_parallel(
    const std::vector<lustre::ChangelogRecord>& records) {
  const std::size_t publish_batch = std::max<std::size_t>(1, options_.publish_batch);
  const bool pay_latency = options_.costs.base_latency.count() > 0;
  reorder_.reset(0);
  // Phase 1 — ordered submission. Delete/rename invalidations are applied
  // here, at the record's changelog position, so a late-completing earlier
  // record can never resurrect a path a delete already killed.
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& record = records[i];
    if (cache_ != nullptr) {
      using lustre::ChangelogType;
      if (record.type == ChangelogType::kUnlnk || record.type == ChangelogType::kRmdir)
        cache_->invalidate(record.target, record.index);
      else if (record.type == ChangelogType::kRenme)
        cache_->invalidate(record.rename_old.value_or(record.target), record.index);
    }
    const auto inflight = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (inflight_gauge_ != nullptr) inflight_gauge_->set(inflight);
    pool_->submit([this, &record, i, pay_latency] {
      auto output = processor_.process(record, EventProcessor::ResolveMode::kConcurrent);
      // The worker pays the record's modeled latency, so resolution cost
      // overlaps across workers — this is the whole point of the pool.
      if (pay_latency && output.latency.count() > 0) clock_.sleep_for(output.latency);
      const auto left = inflight_.fetch_sub(1, std::memory_order_relaxed) - 1;
      if (inflight_gauge_ != nullptr) inflight_gauge_->set(left);
      reorder_.push(i, std::move(output));
    });
  }
  // Phase 2 — in-order publish: pop completions in changelog order.
  std::size_t events = 0;
  core::EventBatch pending;
  for (std::size_t i = 0; i < records.size(); ++i) {
    auto output = reorder_.pop();
    for (auto& event : output.events) {
      pending.events.push_back(std::move(event));
      ++events;
    }
    // Record-boundary flush (see run_batch_serial).
    if (pending.size() >= publish_batch) publish_events(pending);
  }
  publish_events(pending);
  // Every record of the batch is published: retire the invalidation
  // guards and refresh the cache gauges from this (single) thread.
  if (cache_ != nullptr) cache_->retire(records.back().index);
  processor_.publish_cache_metrics();
  if (reorder_depth_gauge_ != nullptr)
    reorder_depth_gauge_->set_max(static_cast<std::int64_t>(reorder_.max_depth()));
  return events;
}

std::size_t Collector::process_batch() {
  apply_rewind();
  apply_acked_clear();
  if (crashed_.load(std::memory_order_relaxed)) return 0;
  // Read ahead of the cleared index: clearing waits for the aggregator's
  // persistence ack, but reading must not.
  auto records =
      fs_.mds(mds_index_).changelog_read(user_id_, options_.batch_size, read_cursor_);
  if (!records || records.value().empty()) return 0;
  const auto& batch = records.value();
  std::uint64_t replays = 0;
  for (const auto& record : batch)
    if (record.index <= max_read_index_) ++replays;
  const std::size_t events =
      pool_ != nullptr ? run_batch_parallel(batch) : run_batch_serial(batch);
  if (crashed_.load(std::memory_order_relaxed)) return 0;  // died mid-batch
  read_cursor_ = batch.back().index;
  if (read_cursor_ > max_read_index_) max_read_index_ = read_cursor_;
  last_published_index_.store(read_cursor_, std::memory_order_release);
  if (replays > 0) {
    replayed_records_.fetch_add(replays);
    if (replayed_counter_ != nullptr) replayed_counter_->inc(replays);
  }
  records_.fetch_add(batch.size());
  published_.fetch_add(events);
  meter_.record(batch.size());
  if (batches_counter_ != nullptr) {
    batches_counter_->inc();
    records_counter_->inc(batch.size());
    published_counter_->inc(events);
    batch_size_hist_->record(batch.size());
    publish_rate_gauge_->set(static_cast<std::int64_t>(meter_.snapshot().average_rate));
  }
  // Clear whatever the aggregator has acked by now (lfs changelog_clear
  // up to the durable watermark, not the read cursor).
  apply_acked_clear();
  return batch.size();
}

void Collector::on_persist_ack(std::uint64_t record_index) {
  auto current = acked_.load(std::memory_order_relaxed);
  while (record_index > current &&
         !acked_.compare_exchange_weak(current, record_index,
                                       std::memory_order_release)) {
  }
}

bool Collector::apply_acked_clear() {
  if (auto outcome = chaos::fault("collector.before_clear")) {
    if (outcome.action == chaos::FaultAction::kCrash) {
      crashed_.store(true);
      return false;
    }
    if (outcome.action == chaos::FaultAction::kDelay) clock_.sleep_for(outcome.delay);
  }
  clear_guard_->request(acked_.load(std::memory_order_acquire));
  return clear_guard_->advance();
}

void Collector::apply_rewind() {
  if (!rewind_requested_.exchange(false)) return;
  clear_guard_->reset_from_server();
  read_cursor_ = clear_guard_->cleared();
  // acked_ stays: an ack certifies durability, which a rewind (an
  // aggregator restart recovering its store) does not revoke.
}

void Collector::crash() {
  crashed_.store(true);
  if (worker_.joinable()) {
    worker_.request_stop();
    worker_.join();
  }
  running_.store(false);
}

Status Collector::restart() {
  // A fault-injected self-crash exits the worker loop but leaves
  // running_ set; finish the fail-stop teardown before resuming.
  if (crashed_.load() && running_.load()) crash();
  if (running_.load()) return Status::ok();
  // In-memory progress died with the stage: resume from the server-side
  // cleared index. Unacked records are re-read and re-published; the
  // aggregator's (source, record-index) dedup keeps delivery exactly-once.
  clear_guard_->reset_from_server();
  read_cursor_ = clear_guard_->cleared();
  acked_.store(read_cursor_);
  last_published_index_.store(read_cursor_);
  rewind_requested_.store(false);
  crashed_.store(false);
  return start();
}

void Collector::rewind_to_cleared() {
  rewind_requested_.store(true);
  if (!running_.load()) apply_rewind();
}

std::size_t Collector::drain_once() {
  std::size_t total = 0;
  for (;;) {
    const std::size_t n = process_batch();
    if (n == 0) break;
    total += n;
  }
  return total;
}

void Collector::run(std::stop_token stop) {
  while (!stop.stop_requested() && !crashed_.load(std::memory_order_relaxed)) {
    if (process_batch() == 0) clock_.sleep_for(options_.poll_interval);
  }
  if (crashed_.load(std::memory_order_relaxed)) return;  // no graceful flush
  // Final drain so no event is stranded in the changelog at shutdown,
  // then wait (bounded) for the aggregator's acks so the clear watermark
  // catches up with the last published record.
  process_batch();
  const auto slice = std::chrono::milliseconds(1);
  auto remaining = options_.stop_flush_timeout;
  while (remaining.count() > 0 && !crashed_.load(std::memory_order_relaxed)) {
    if (apply_acked_clear() &&
        clear_guard_->cleared() >= last_published_index_.load(std::memory_order_acquire))
      break;
    clock_.sleep_for(slice);
    remaining -= slice;
  }
}

}  // namespace fsmon::scalable
