#include "src/scalable/collector.hpp"

#include "src/common/logging.hpp"

namespace fsmon::scalable {

using common::Status;

namespace {

/// Shards for the fid cache: enough to spread `threads` workers with
/// headroom, capped so tiny caches don't fragment.
std::size_t shard_count_for(std::size_t threads) {
  if (threads <= 1) return 1;
  std::size_t shards = 1;
  while (shards < threads * 4 && shards < 64) shards <<= 1;
  return shards;
}

}  // namespace

Collector::Collector(lustre::LustreFs& fs, std::uint32_t mds_index,
                     std::shared_ptr<msgq::Publisher> publisher, CollectorOptions options,
                     common::Clock& clock)
    : fs_(fs),
      mds_index_(mds_index),
      publisher_(std::move(publisher)),
      options_(std::move(options)),
      clock_(clock),
      topic_(options_.topic_prefix + "mdt" + std::to_string(mds_index)),
      resolver_(fs, options_.resolver, /*clock=*/nullptr),
      cache_(options_.cache_size > 0
                 ? std::make_unique<EventProcessor::FidCache>(
                       options_.cache_size, shard_count_for(options_.resolver_threads))
                 : nullptr),
      processor_(resolver_, cache_.get(), options_.costs,
                 "lustre:MDT" + std::to_string(mds_index)),
      meter_(clock) {
  user_id_ = fs_.mds(mds_index_).register_changelog_user();
  if (options_.resolver_threads > 1)
    pool_ = std::make_unique<common::ThreadPool>(options_.resolver_threads);
  if (options_.metrics != nullptr) {
    auto& registry = *options_.metrics;
    const obs::Labels labels{{"mdt", std::to_string(mds_index_)}};
    batches_counter_ = &registry.counter("collector.batches", labels,
                                         "Non-empty changelog batches processed", "batches");
    records_counter_ = &registry.counter("collector.records_processed", labels,
                                         "Changelog records run through Algorithm 1",
                                         "records");
    published_counter_ =
        &registry.counter("collector.records_published", labels,
                          "Resolved events published to the aggregator", "events");
    batch_size_hist_ = &registry.histogram("collector.batch_size", labels,
                                           "Records per changelog_read batch", "records");
    batch_bytes_hist_ = &registry.histogram("collector.batch_bytes", labels,
                                            "Encoded bytes per published batch frame",
                                            "bytes");
    publish_rate_gauge_ = &registry.gauge("collector.publish_rate", labels,
                                          "Lifetime average records/second processed",
                                          "records/s");
    inflight_gauge_ = &registry.gauge("collector.resolver_inflight", labels,
                                      "Records currently fanned out to the resolver pool",
                                      "records");
    reorder_depth_gauge_ =
        &registry.gauge("collector.reorder_depth", labels,
                        "Peak completions parked out of order before in-order publish",
                        "records");
    resolver_.attach_metrics(registry, labels);
    processor_.attach_metrics(registry, labels);
  }
}

Collector::~Collector() {
  stop();
  fs_.mds(mds_index_).deregister_changelog_user(user_id_);
}

Status Collector::start() {
  if (running_.load()) return Status::ok();
  running_.store(true);
  worker_ = std::jthread([this](std::stop_token stop) { run(stop); });
  return Status::ok();
}

void Collector::stop() {
  if (worker_.joinable()) {
    worker_.request_stop();
    worker_.join();
  }
  running_.store(false);
}

void Collector::publish_events(core::EventBatch& batch) {
  if (batch.empty()) return;
  const auto bytes = core::encode_batch(batch);
  publisher_->publish(topic_, std::string(reinterpret_cast<const char*>(bytes.data()),
                                          bytes.size()));
  if (batch_bytes_hist_ != nullptr) batch_bytes_hist_->record(bytes.size());
  batch.events.clear();
}

std::size_t Collector::run_batch_serial(const std::vector<lustre::ChangelogRecord>& records) {
  const std::size_t publish_batch = std::max<std::size_t>(1, options_.publish_batch);
  std::size_t events = 0;
  core::EventBatch pending;
  for (const auto& record : records) {
    auto output = processor_.process(record);
    // Threaded mode pays modeled latency for real when configured.
    if (output.latency.count() > 0 && options_.costs.base_latency.count() > 0)
      clock_.sleep_for(output.latency);
    for (auto& event : output.events) {
      pending.events.push_back(std::move(event));
      ++events;
      if (pending.size() >= publish_batch) publish_events(pending);
    }
  }
  publish_events(pending);
  return events;
}

std::size_t Collector::run_batch_parallel(
    const std::vector<lustre::ChangelogRecord>& records) {
  const std::size_t publish_batch = std::max<std::size_t>(1, options_.publish_batch);
  const bool pay_latency = options_.costs.base_latency.count() > 0;
  reorder_.reset(0);
  // Phase 1 — ordered submission. Delete/rename invalidations are applied
  // here, at the record's changelog position, so a late-completing earlier
  // record can never resurrect a path a delete already killed.
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& record = records[i];
    if (cache_ != nullptr) {
      using lustre::ChangelogType;
      if (record.type == ChangelogType::kUnlnk || record.type == ChangelogType::kRmdir)
        cache_->invalidate(record.target, record.index);
      else if (record.type == ChangelogType::kRenme)
        cache_->invalidate(record.rename_old.value_or(record.target), record.index);
    }
    const auto inflight = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (inflight_gauge_ != nullptr) inflight_gauge_->set(inflight);
    pool_->submit([this, &record, i, pay_latency] {
      auto output = processor_.process(record, EventProcessor::ResolveMode::kConcurrent);
      // The worker pays the record's modeled latency, so resolution cost
      // overlaps across workers — this is the whole point of the pool.
      if (pay_latency && output.latency.count() > 0) clock_.sleep_for(output.latency);
      const auto left = inflight_.fetch_sub(1, std::memory_order_relaxed) - 1;
      if (inflight_gauge_ != nullptr) inflight_gauge_->set(left);
      reorder_.push(i, std::move(output));
    });
  }
  // Phase 2 — in-order publish: pop completions in changelog order.
  std::size_t events = 0;
  core::EventBatch pending;
  for (std::size_t i = 0; i < records.size(); ++i) {
    auto output = reorder_.pop();
    for (auto& event : output.events) {
      pending.events.push_back(std::move(event));
      ++events;
      if (pending.size() >= publish_batch) publish_events(pending);
    }
  }
  publish_events(pending);
  // Every record of the batch is published: retire the invalidation
  // guards and refresh the cache gauges from this (single) thread.
  if (cache_ != nullptr) cache_->retire(records.back().index);
  processor_.publish_cache_metrics();
  if (reorder_depth_gauge_ != nullptr)
    reorder_depth_gauge_->set_max(static_cast<std::int64_t>(reorder_.max_depth()));
  return events;
}

std::size_t Collector::process_batch() {
  auto records = fs_.mds(mds_index_).changelog_read(user_id_, options_.batch_size);
  if (!records || records.value().empty()) return 0;
  const auto& batch = records.value();
  const std::size_t events =
      pool_ != nullptr ? run_batch_parallel(batch) : run_batch_serial(batch);
  records_.fetch_add(batch.size());
  published_.fetch_add(events);
  meter_.record(batch.size());
  if (batches_counter_ != nullptr) {
    batches_counter_->inc();
    records_counter_->inc(batch.size());
    published_counter_->inc(events);
    batch_size_hist_->record(batch.size());
    publish_rate_gauge_->set(static_cast<std::int64_t>(meter_.snapshot().average_rate));
  }
  // Purge processed records (lfs changelog_clear).
  if (auto s = fs_.mds(mds_index_).changelog_clear(user_id_, batch.back().index); !s.is_ok())
    FSMON_WARN("collector", "changelog_clear failed: ", s.to_string());
  return batch.size();
}

std::size_t Collector::drain_once() {
  std::size_t total = 0;
  for (;;) {
    const std::size_t n = process_batch();
    if (n == 0) break;
    total += n;
  }
  return total;
}

void Collector::run(std::stop_token stop) {
  while (!stop.stop_requested()) {
    if (process_batch() == 0) clock_.sleep_for(options_.poll_interval);
  }
  // Final drain so no event is stranded in the changelog at shutdown.
  process_batch();
}

}  // namespace fsmon::scalable
