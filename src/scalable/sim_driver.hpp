// Discrete-event simulation of the scalable monitoring pipeline.
//
// The paper's Lustre experiments (Tables V-VIII, the 4-MDS aggregate of
// Section V-D2, and the Robinhood comparison of Section V-D5) run here
// in virtual time: clients generate metadata operations against the
// simulated LustreFs at the testbed profile's calibrated rates, per-MDS
// collector processes execute the real EventProcessor (Algorithm 1 with
// the real LRU cache) and charge its modeled latency/CPU to virtual
// ServiceStations, and the aggregator/consumer stations forward events
// downstream. Every number reported is deterministic for a given seed.
//
// Two pipeline shapes are provided:
//  - run_pipeline_sim: FSMonitor's architecture — parallel collectors on
//    the MDSs pushing concurrently to the MGS aggregator.
//  - run_robinhood_sim: the baseline — the same MDS-side publishers, but
//    a single client poller visiting them one at a time round-robin
//    (paying a per-visit RPC round trip), with no aggregator.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/types.hpp"
#include "src/lustre/profiles.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::scalable {

enum class SimWorkload {
  kMixed,         ///< Evaluate_Performance_Script: create, modify, delete.
  kCreateDelete,  ///< Variant without modification (Section V-D3).
  kCreateModify,  ///< Variant without deletion (Section V-D3).
  kCreateOnly,    ///< Single-op loops for Table V's per-op rows.
  kModifyOnly,
  kDeleteOnly,
};

std::string_view to_string(SimWorkload workload);

struct SimConfig {
  lustre::TestbedProfile profile;
  /// fid2path cache entries per collector; 0 disables caching.
  std::size_t cache_size = 5000;
  /// Virtual run length (generation window; rates measured over it).
  common::Duration duration = std::chrono::seconds(30);
  /// Active MDSs (1 for Tables V/VI/VIII; 4 for the aggregate & V-D5).
  std::uint32_t mds_count = 1;
  SimWorkload workload = SimWorkload::kMixed;
  /// Per-MDS generation rate; 0 = profile.mixed_event_rate.
  double rate_override = 0;
  std::uint64_t seed = 42;
  /// Files each client stream keeps alive (create k / modify k / delete
  /// k-W rotation) — controls how often records outlive their subject.
  std::size_t files_per_stream = 4;
  /// Records fetched per changelog read; the read itself costs
  /// `changelog_read_overhead` (an RPC round trip), which batching
  /// amortizes — the subject of the batching ablation bench.
  std::size_t collector_batch = 512;
  common::Duration changelog_read_overhead = std::chrono::microseconds(100);
  /// Observability registry; null = uninstrumented. The sim registers
  /// the same changelog.* / fid2path.* / fidcache.* instruments as the
  /// threaded pipeline plus sim.* totals, so benches can report straight
  /// from a snapshot.
  obs::MetricsRegistry* metrics = nullptr;
};

struct ComponentReport {
  double cpu_percent = 0;  ///< Of one core, busy/elapsed.
  double memory_mb = 0;    ///< Peak modeled resident set.
};

struct SimReport {
  double generated_rate = 0;  ///< Metadata events generated / second.
  double reported_rate = 0;   ///< Events delivered to the consumer / second.
  std::uint64_t generated = 0;
  std::uint64_t reported = 0;
  std::uint64_t per_mds_reported[16] = {};

  ComponentReport collector;  ///< Averaged across MDSs.
  ComponentReport aggregator;
  ComponentReport consumer;

  double cache_hit_rate = 0;
  std::uint64_t fid2path_calls = 0;
  std::uint64_t fid2path_failures = 0;
  std::uint64_t unresolved = 0;
  std::size_t peak_backlog_records = 0;  ///< Max changelog+queue backlog.

  /// End-to-end event latency (operation time -> consumer delivery):
  /// the quantified form of the paper's "no overall loss of events;
  /// events are queued and simply processed at a lower rate" (§V-D2).
  double latency_p50_ms = 0;
  double latency_p99_ms = 0;
  double latency_max_ms = 0;
};

SimReport run_pipeline_sim(const SimConfig& config);
SimReport run_robinhood_sim(const SimConfig& config);

}  // namespace fsmon::scalable
