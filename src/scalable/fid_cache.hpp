// FID -> path cache for Algorithm 1, safe for a resolver worker pool.
//
// Wraps common::ShardedLruCache with the two things concurrent resolution
// needs on top of plain LRU semantics:
//
//  1. Shared immutable values: paths are stored as
//     shared_ptr<const string>, so a hit hands out a reference instead of
//     heap-copying the path for every event.
//  2. Sequence-guarded invalidation. With workers completing records out
//     of order, "erase on UNLNK" at completion time is wrong twice over:
//     a delete completing early would starve earlier in-flight records of
//     a mapping they were entitled to see, and an earlier record's late
//     put() could resurrect a path after the delete erased it. Instead
//     the collector applies invalidate(fid, seq) at the record's ordered
//     position (submission happens in changelog order): existing entries
//     get a tombstone sequence rather than being erased, and the fid is
//     remembered in a pending-invalidation table. A versioned get(fid, seq)
//     only returns entries whose [write_seq, tombstone_seq) window covers
//     the reader's sequence — records ordered before the delete still hit
//     the mapping, records at or after it miss. A versioned put(fid, seq)
//     consults the pending table so a late insert lands already
//     tombstoned instead of resurrecting the path. retire(seq) sweeps
//     guards once the publish pointer passes the delete, erasing entries
//     that are dead for every future sequence.
//
// The serial (unversioned) get/put/erase entry points preserve the exact
// single-threaded Algorithm 1 semantics the property tests pin down; a
// collector uses one protocol or the other, never both.
//
// Also hosts the single-flight table so concurrent misses on one FID
// issue exactly one fid2path call (fid2path.coalesced counts the savings).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/sharded_lru_cache.hpp"
#include "src/common/single_flight.hpp"
#include "src/common/types.hpp"
#include "src/lustre/fid.hpp"

namespace fsmon::scalable {

/// Immutable shared path value handed out by the cache.
using PathPtr = std::shared_ptr<const std::string>;

/// Result shared between coalesced resolvers: the resolved path (null on
/// failure) and the modeled fid2path cost the leader paid.
struct FlightResult {
  PathPtr path;
  common::Duration cost{};
};

class FidPathCache {
 public:
  /// `capacity` as in LruCache; `shards` independently-locked shards
  /// (1 for serial collectors, more under a resolver pool).
  explicit FidPathCache(std::size_t capacity, std::size_t shards = 1);

  // --- Serial protocol: exact single-threaded LRU semantics. ---
  PathPtr get(const lustre::Fid& fid);
  PathPtr peek(const lustre::Fid& fid) const;
  void put(const lustre::Fid& fid, std::string path);
  void put(const lustre::Fid& fid, PathPtr path);
  bool erase(const lustre::Fid& fid);

  // --- Versioned protocol: resolver-pool mode. `seq` is the changelog
  // record index (monotonic per MDT). ---

  /// Hit only when `seq` falls inside the entry's validity window.
  PathPtr get(const lustre::Fid& fid, std::uint64_t seq);

  /// Insert the mapping as written by record `seq`; lands tombstoned (or
  /// is superseded) when an ordered invalidation or a newer write already
  /// covers this fid.
  void put(const lustre::Fid& fid, PathPtr path, std::uint64_t seq);

  /// Apply record `seq`'s deletion of `fid` at its ordered position:
  /// tombstones the current entry (if any) and guards future puts from
  /// records ordered before `seq`.
  void invalidate(const lustre::Fid& fid, std::uint64_t seq);

  /// Drop invalidation guards with sequence <= `seq` (the publish pointer
  /// has passed them, so no in-flight record can still put an older
  /// mapping) and erase entries those guards left permanently dead.
  void retire(std::uint64_t seq);

  // --- Introspection (both protocols). ---
  bool contains(const lustre::Fid& fid) const;
  void clear();
  std::size_t size() const;
  std::size_t capacity() const;
  std::size_t shard_count() const;
  std::size_t max_shard_size() const;
  /// Aggregated over shards. In versioned mode an entry found but outside
  /// the reader's validity window counts as a shard-level hit though the
  /// caller sees a miss; the processor's fidcache.hits/misses counters
  /// are the semantically exact series.
  common::LruStats stats() const;
  void reset_stats();

  /// Single-flight table for coalescing concurrent fid2path misses.
  common::SingleFlight<lustre::Fid, FlightResult>& flight() { return flight_; }

 private:
  static constexpr std::uint64_t kNoTombstone = ~std::uint64_t{0};

  struct Entry {
    PathPtr path;
    std::uint64_t write_seq = 0;
    std::uint64_t tombstone_seq = kNoTombstone;
  };

  common::ShardedLruCache<lustre::Fid, Entry> shards_;
  /// Pending ordered invalidations, fid -> delete sequence; slot i is
  /// only accessed under shard i's lock (via with_shard/with_shard_index).
  std::vector<std::unordered_map<lustre::Fid, std::uint64_t>> pending_;
  common::SingleFlight<lustre::Fid, FlightResult> flight_;
};

}  // namespace fsmon::scalable
