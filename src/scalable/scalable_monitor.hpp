// ScalableMonitor: the assembled scalable Lustre DSI (paper Figure 4).
//
// Wires one Collector per MDS, the Aggregator on the MGS, and any number
// of Consumers over the pub/sub bus. Also provides ScalableDsi, the
// core::DsiBase adapter that lets the FsMonitor facade treat an entire
// Lustre deployment as just another storage backend (scheme "lustre").
#pragma once

#include <memory>
#include <vector>

#include "src/core/dsi.hpp"
#include "src/scalable/collector.hpp"
#include "src/scalable/consumer.hpp"
#include "src/scalable/sharded_aggregator.hpp"

namespace fsmon::scalable {

struct ScalableMonitorOptions {
  CollectorOptions collector;
  AggregatorOptions aggregator;
  /// Aggregator shard count. 1 (default) is the historic single
  /// aggregator, byte-for-byte; N partitions the tier by event source
  /// through the ShardRouter (see docs/ARCHITECTURE.md).
  std::size_t shards = 1;
  /// Transport every pipeline hop rides on (collector senders, shard
  /// inboxes/outputs, consumer receivers). Null (default) = in-process
  /// over the monitor's bus. Must outlive the monitor.
  transport::Transport* transport = nullptr;
  /// Create a FanOutHub on the aggregator tier and subscribe every
  /// make_consumer() through it: one shared receiver, one decode and one
  /// index evaluation per batch, credit-based flow control per consumer.
  /// Off (default) keeps the legacy per-consumer topology.
  bool fanout_hub = false;
  /// Flow-control tuning for the hub (used when fanout_hub is true; the
  /// metrics field is overridden by the aggregator's registry).
  FlowControlOptions flow;
};

class ScalableMonitor {
 public:
  ScalableMonitor(lustre::LustreFs& fs, ScalableMonitorOptions options,
                  common::Clock& clock);

  common::Status start();
  void stop();

  /// Create (and start, if the monitor is running) a consumer attached to
  /// this monitor's aggregator.
  std::unique_ptr<Consumer> make_consumer(std::string name, ConsumerOptions options,
                                          Consumer::EventCallback callback);
  /// Batch-aware variant: the callback receives each matching batch once.
  std::unique_ptr<Consumer> make_consumer(std::string name, ConsumerOptions options,
                                          Consumer::BatchCallback callback);

  /// Shard 0 — with the default single shard, exactly the historic
  /// aggregator accessor. Sharded callers use sharded().
  Aggregator& aggregator() { return sharded_->shard(0); }
  ShardedAggregator& sharded() { return *sharded_; }
  /// The shared fan-out hub; null unless options.fanout_hub was set.
  FanOutHub* hub() { return hub_.get(); }
  Collector& collector(std::size_t i) { return *collectors_.at(i); }
  std::size_t collector_count() const { return collectors_.size(); }
  msgq::Bus& bus() { return bus_; }

  /// Synchronously pump every collector once (deterministic tests):
  /// collectors publish, the aggregator is drained (when not running) so
  /// acks flow, then the acked changelog clears are applied.
  std::size_t drain_collectors_once();

  std::uint64_t total_records_processed() const;

  /// Crash-recovery harness: fail-stop / restart individual stages.
  void crash_collector(std::size_t i) { collectors_.at(i)->crash(); }
  common::Status restart_collector(std::size_t i) {
    return collectors_.at(i)->restart();
  }
  /// Crash every aggregator shard (the whole tier fails together).
  void crash_aggregator() {
    for (std::size_t k = 0; k < sharded_->shard_count(); ++k) sharded_->shard(k).crash();
  }
  /// Restart the aggregator tier and rewind every collector to its
  /// cleared index: frames buffered in the dead shards are gone, so
  /// unacked records must be re-published (the dedup watermark absorbs
  /// overlap).
  common::Status restart_aggregator();

  /// Fail-stop / restart a single shard. Restart rewinds only the
  /// collectors whose source the shard map assigns to that shard — the
  /// other shards (and their collectors) keep flowing undisturbed.
  void crash_aggregator_shard(std::size_t k) { sharded_->shard(k).crash(); }
  common::Status restart_aggregator_shard(std::size_t k);

 private:
  /// Source string collector i publishes under (the shard-map key).
  static std::string collector_source(std::size_t i) {
    return "lustre:MDT" + std::to_string(i);
  }

  lustre::LustreFs& fs_;
  ScalableMonitorOptions options_;
  common::Clock& clock_;
  msgq::Bus bus_;
  std::unique_ptr<ShardedAggregator> sharded_;
  std::unique_ptr<FanOutHub> hub_;
  std::vector<std::unique_ptr<Collector>> collectors_;
  bool running_ = false;
};

/// core::DsiBase adapter: monitors the whole Lustre store and forwards
/// every aggregated event to the FSMonitor callback via an internal
/// consumer.
class ScalableDsi final : public core::DsiBase {
 public:
  ScalableDsi(lustre::LustreFs& fs, ScalableMonitorOptions options, common::Clock& clock);

  std::string name() const override { return "lustre"; }
  common::Status start(EventCallback callback) override;
  void stop() override;
  bool running() const override { return running_; }

  ScalableMonitor& monitor() { return monitor_; }

 private:
  ScalableMonitor monitor_;
  std::unique_ptr<Consumer> consumer_;
  bool running_ = false;
};

/// Register the "lustre" scheme against a specific simulated deployment.
void register_lustre_dsi(core::DsiRegistry& registry, lustre::LustreFs& fs,
                         common::Clock& clock,
                         ScalableMonitorOptions options = {});

}  // namespace fsmon::scalable
