// Sequence-numbered reorder buffer.
//
// The resolver pool completes records in arbitrary order; the paper's
// per-MDT ordering guarantee ("events are reported in the order the MDS
// serviced them") requires the collector to publish them in changelog
// order. Workers push (sequence, result) pairs as they finish; the
// collector thread pops strictly in sequence, blocking until the next
// expected sequence arrives. Completions that arrive early wait in the
// buffer — its peak depth is exported as collector.reorder_depth.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

namespace fsmon::scalable {

template <typename T>
class ReorderBuffer {
 public:
  explicit ReorderBuffer(std::uint64_t first_seq = 0) : head_(first_seq) {}

  /// Restart at `first_seq` for a new batch. The buffer must be empty
  /// (every pushed completion popped); the peak-depth high-water mark is
  /// kept across batches.
  void reset(std::uint64_t first_seq) {
    std::lock_guard lock(mu_);
    head_ = first_seq;
  }

  /// Deliver the completion for `seq` (each sequence exactly once, any
  /// order at or after the current head).
  void push(std::uint64_t seq, T value) {
    {
      std::lock_guard lock(mu_);
      slots_.emplace(seq, std::move(value));
      max_depth_ = std::max(max_depth_, slots_.size());
    }
    cv_.notify_one();
  }

  /// Block until the completion for the current head sequence is
  /// available, return it, and advance the head.
  T pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] { return !slots_.empty() && slots_.begin()->first == head_; });
    auto node = slots_.extract(slots_.begin());
    ++head_;
    return std::move(node.mapped());
  }

  /// Next sequence pop() will wait for.
  std::uint64_t head() const {
    std::lock_guard lock(mu_);
    return head_;
  }

  /// Completions currently parked out of order.
  std::size_t buffered() const {
    std::lock_guard lock(mu_);
    return slots_.size();
  }

  /// Most completions ever parked at once (lifetime high-water mark).
  std::size_t max_depth() const {
    std::lock_guard lock(mu_);
    return max_depth_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, T> slots_;
  std::uint64_t head_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace fsmon::scalable
