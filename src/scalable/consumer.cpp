#include "src/scalable/consumer.hpp"

#include <algorithm>

#include "src/common/logging.hpp"

namespace fsmon::scalable {

using common::Result;
using common::Status;

Consumer::Consumer(msgq::Bus& bus, ShardedAggregator& aggregator, std::string name,
                   ConsumerOptions options, EventCallback callback)
    : Consumer(bus, aggregator, std::move(name), std::move(options), std::move(callback),
               BatchCallback{}) {}

Consumer::Consumer(msgq::Bus& bus, ShardedAggregator& aggregator, std::string name,
                   ConsumerOptions options, BatchCallback callback)
    : Consumer(bus, aggregator, std::move(name), std::move(options), EventCallback{},
               std::move(callback)) {}

Consumer::Consumer(msgq::Bus& bus, ShardedAggregator& aggregator, std::string name,
                   ConsumerOptions options, EventCallback callback,
                   BatchCallback batch_callback)
    : bus_(bus),
      aggregator_(aggregator),
      name_(std::move(name)),
      options_(std::move(options)),
      callback_(std::move(callback)),
      batch_callback_(std::move(batch_callback)),
      receiver_(options.hub != nullptr
                    ? nullptr
                    : aggregator.transport().make_receiver(
                          name_, options.high_water_mark,
                          options.overflow_policy == common::OverflowPolicy::kDropNewest
                              ? transport::OverflowPolicy::kDropNewest
                              : transport::OverflowPolicy::kBlock)),
      seen_(aggregator.shard_count()),
      acked_(aggregator.shard_count()),
      ack_floor_(aggregator.shard_count()) {
  if (receiver_ != nullptr) {
    receiver_->subscribe("");  // receive everything; filter locally
    // One inbox fed by every shard: frames from different shards
    // interleave at the queue, but each frame is whole, so per-shard order
    // is preserved (each shard's sender pushes in its id order).
    for (std::size_t k = 0; k < aggregator_.shard_count(); ++k)
      aggregator_.shard(k).connect_output(receiver_);
  }
  if (options_.metrics != nullptr) {
    auto& registry = *options_.metrics;
    const obs::Labels labels{{"consumer", name_}};
    filter_metrics_ = core::FilterMetrics::create(registry, labels);
    delivered_counter_ = &registry.counter("consumer.events_delivered", labels,
                                           "Matching events handed to the callback",
                                           "events");
    replayed_counter_ = &registry.counter(
        "consumer.events_replayed", labels,
        "Events re-delivered from the reliable store (fault recovery)", "events");
    delivery_lag_gauge_ = &registry.gauge(
        "consumer.delivery_lag_events", labels,
        "Sum of shard head ids minus events seen by this consumer", "events");
    overflow_dropped_gauge_ = &registry.gauge(
        "consumer.overflow_dropped", labels,
        "Events lost to the high-water mark (kDropNewest only)", "events");
    batch_size_hist_ = &registry.histogram("consumer.batch_size", labels,
                                           "Events per batch received by this consumer",
                                           "events");
  }
  // Compile the rule set once at subscription: normalized roots, kind
  // masks, and the filter.* counters bound up front so the delivery hot
  // path never does a labelled-counter lookup or a per-rule path
  // normalization per event.
  compiled_ = core::CompiledRuleSet(options_.rules, filter_metrics_);
  if (options_.hub != nullptr)
    hub_sub_ = options_.hub->subscribe(name_, compiled_.rules());
}

Consumer::~Consumer() {
  stop();
  if (hub_sub_ != nullptr) options_.hub->unsubscribe(*hub_sub_);
}

bool Consumer::matches(const core::StdEvent& event) const {
  return compiled_.matches(event);
}

FlowState Consumer::flow_state() const {
  if (hub_sub_ == nullptr) return FlowState::kLive;
  return options_.hub->state(*hub_sub_);
}

VectorCursor Consumer::seen_cursor() const {
  std::lock_guard lock(deliver_mu_);
  return seen_;
}

void Consumer::deliver_batch(const core::EventBatch& batch, bool dedup_filter,
                             bool already_filtered) {
  if (batch.empty()) return;
  std::lock_guard lock(deliver_mu_);
  // Record ownership for the duration of the callback so a reentrant
  // acknowledge_processed() (a checkpoint inside on_batch) can tell it
  // must not touch deliver_mu_ again on this thread.
  deliver_owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  struct OwnerScope {
    std::atomic<std::thread::id>& owner;
    ~OwnerScope() { owner.store(std::thread::id{}, std::memory_order_relaxed); }
  } owner_scope{deliver_owner_};
  // A live frame carries one shard's events; a merged replay page may
  // mix shards. Either way the owning shard is recomputed from the
  // event source through the shared map — the same rule the router
  // applied on the write path.
  const std::size_t shard_count = aggregator_.shard_count();
  for (const core::StdEvent& event : batch.events) {
    const std::size_t shard =
        shard_count == 1 ? 0 : aggregator_.map().shard_of(event.source);
    seen_.advance(shard, event.id);
  }
  last_seen_sum_.store(seen_.sum());
  if (delivery_lag_gauge_ != nullptr) {
    const auto head = aggregator_.last_event_id_sum();
    const auto seen = seen_.sum();
    delivery_lag_gauge_->set(head > seen ? static_cast<std::int64_t>(head - seen) : 0);
    // Hub mode has no private receiver (receiver_ is null): overflow is
    // the hub's credit window, not a transport high-water mark.
    overflow_dropped_gauge_->set(
        receiver_ != nullptr ? static_cast<std::int64_t>(receiver_->dropped()) : 0);
    batch_size_hist_->record(batch.size());
  }
  // Duplicate decisions are made for the whole batch before any marking:
  // a rename's MOVED_FROM/MOVED_TO halves share one cookie and always
  // travel in one frame, so both are fresh or both are duplicates.
  std::vector<bool> deliverable(batch.size(), true);
  if (dedup_filter) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const core::StdEvent& event = batch.events[i];
      if (event.cookie == 0 || event.source.empty()) continue;
      auto it = dedup_.find(event.source);
      if (it != dedup_.end() && !it->second.fresh(event.cookie)) {
        deliverable[i] = false;
        duplicates_.fetch_add(1);
      }
    }
  }
  for (const core::StdEvent& event : batch.events) {
    if (event.cookie == 0 || event.source.empty()) continue;
    dedup_[event.source].mark(event.cookie);
  }
  core::EventBatch matched;  // only materialized for batch callbacks
  std::size_t delivered = 0;
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!deliverable[i]) continue;
    const core::StdEvent& event = batch.events[i];
    if (!already_filtered && !compiled_.matches(event)) {
      ++dropped;
      filtered_.fetch_add(1);
      continue;
    }
    ++delivered;
    if (batch_callback_)
      matched.events.push_back(event);
    else if (callback_)
      callback_(event);
  }
  // One batched add per counter instead of 2-3 atomic increments per
  // event. Hub-delivered batches were matched by the shared index and
  // are not re-counted here.
  if (!already_filtered) filter_metrics_.count(delivered, dropped);
  if (delivered > 0) {
    delivered_.fetch_add(delivered);
    if (delivered_counter_ != nullptr) delivered_counter_->inc(delivered);
  }
  if (batch_callback_ && !matched.empty()) batch_callback_(matched);
  maybe_ack_locked();
}

void Consumer::maybe_ack_locked() {
  if (options_.manual_acks) {
    // Durability stays with the application: acknowledge only up to the
    // published floor, clamped to what was actually seen and never
    // regressing. Hub credits are still replenished every cadence so
    // flow control reflects processing, not durability.
    VectorCursor floor(seen_.size());
    bool dirty = false;
    {
      std::lock_guard lock(ack_floor_mu_);
      floor = ack_floor_;
      dirty = ack_floor_dirty_;
      ack_floor_dirty_ = false;
    }
    floor.ensure(seen_.size());
    for (std::size_t k = 0; k < seen_.size(); ++k) {
      floor.last_ids[k] = std::min(floor.at(k), seen_.at(k));
      floor.last_ids[k] = std::max(floor.at(k), acked_.at(k));
    }
    if (hub_sub_ != nullptr) {
      if (hub_processed_since_ack_ >= options_.ack_interval || dirty) {
        options_.hub->acknowledge(*hub_sub_, floor, hub_processed_since_ack_);
        hub_processed_since_ack_ = 0;
        acked_ = floor;
      }
    } else if (dirty) {
      aggregator_.acknowledge(floor);
      acked_ = floor;
    }
    return;
  }
  if (options_.ack_interval == 0 ||
      seen_.sum() - acked_.sum() < options_.ack_interval)
    return;
  if (hub_sub_ != nullptr) {
    options_.hub->acknowledge(*hub_sub_, seen_, hub_processed_since_ack_);
    hub_processed_since_ack_ = 0;
  } else {
    aggregator_.acknowledge(seen_);
  }
  acked_ = seen_;
}

void Consumer::acknowledge_processed(const VectorCursor& cursor) {
  if (!options_.manual_acks) return;
  {
    std::lock_guard lock(ack_floor_mu_);
    ack_floor_.ensure(cursor.size());
    for (std::size_t k = 0; k < cursor.size(); ++k)
      ack_floor_.advance(k, cursor.at(k));
    ack_floor_dirty_ = true;
  }
  // Reentry from inside the delivery callback: this thread already owns
  // deliver_mu_ (try_lock on an owned std::mutex is UB), and the batch
  // that invoked the callback runs its own ack check right after the
  // callback returns, which publishes the floor set above.
  if (deliver_owner_.load(std::memory_order_relaxed) == std::this_thread::get_id())
    return;
  // Foreign thread: push promptly when the delivery lock is free (e.g.
  // the caller checkpoints between batches); when a delivery is in
  // flight its ack check picks the floor up instead.
  if (deliver_mu_.try_lock()) {
    std::lock_guard lock(deliver_mu_, std::adopt_lock);
    maybe_ack_locked();
  }
}

Status Consumer::start() {
  if (running_.load()) return Status::ok();
  running_.store(true);
  worker_ = std::jthread([this](std::stop_token stop) { run(stop); });
  return Status::ok();
}

void Consumer::stop() {
  if (!running_.load()) return;
  if (receiver_ != nullptr) receiver_->close();
  if (worker_.joinable()) {
    worker_.request_stop();
    worker_.join();
  }
  running_.store(false);
}

void Consumer::crash() {
  if (!running_.load()) return;
  // Fail-stop: identical teardown to stop() except semantically abrupt —
  // frames queued in the inbox die with the process; nothing further is
  // acknowledged.
  if (receiver_ != nullptr) receiver_->close();
  if (worker_.joinable()) {
    worker_.request_stop();
    worker_.join();
  }
  running_.store(false);
}

Status Consumer::restart() {
  if (running_.load()) return Status::ok();
  if (receiver_ != nullptr) receiver_->reopen();
  VectorCursor resume;
  {
    std::lock_guard lock(deliver_mu_);
    resume = acked_;
  }
  // Replay BEFORE the worker starts: if a live frame arrived first it
  // would initialize the dedup watermark at a high index and the replayed
  // prefix would be misread as duplicates (lost events). Replaying first
  // seeds the window from the oldest unacked record.
  if (auto replayed = replay_historic(std::move(resume), /*rewind=*/true); !replayed) {
    return replayed.status();
  }
  return start();
}

void Consumer::run(std::stop_token stop) {
  if (hub_sub_ != nullptr) {
    run_hub(stop);
    return;
  }
  for (;;) {
    auto message = receiver_->recv();
    if (!message) break;
    // Decode straight out of the shared frame bytes — over shm this reads
    // the ring record in place; the FrameRef keeps it alive until here.
    auto batch = core::decode_batch(message->payload.bytes());
    if (!batch) {
      FSMON_WARN("consumer", "corrupt batch frame: ", batch.status().to_string());
      continue;
    }
    deliver_batch(batch.value());
  }
}

void Consumer::run_hub(std::stop_token stop) {
  while (!stop.stop_requested()) {
    auto item = options_.hub->pop(*hub_sub_, std::chrono::milliseconds(100));
    if (!item) {
      if (evicted_.load()) break;
      continue;  // timeout (or unsubscribe tearing down) — re-check stop
    }
    switch (item->kind) {
      case HubItem::Kind::kBatch:
        deliver_hub_item(*item);
        break;
      case HubItem::Kind::kDemoted:
        catch_up(stop);
        break;
      case HubItem::Kind::kEvicted:
        evicted_.store(true);
        return;
    }
  }
}

void Consumer::deliver_hub_item(const HubItem& item) {
  core::EventBatch batch;
  batch.events.reserve(item.indices.size());
  {
    std::lock_guard lock(deliver_mu_);
    // Seam insurance: anything at or below the seen watermark was already
    // delivered by a catch-up replay — duplicates are structurally
    // impossible with this guard even if a frame races a promotion.
    const common::EventId floor = seen_.at(item.shard);
    for (std::uint32_t index : item.indices) {
      const core::StdEvent& event = item.batch->events[index];
      if (event.id <= floor) continue;
      batch.events.push_back(event);
    }
    hub_processed_since_ack_ += item.indices.size();
  }
  deliver_batch(batch, /*dedup_filter=*/true, /*already_filtered=*/true);
  // Advance the watermark over the whole frame (matched or not) so acks
  // keep progressing for consumers whose rules match sparsely.
  std::lock_guard lock(deliver_mu_);
  seen_.advance(item.shard, item.last_id);
  last_seen_sum_.store(seen_.sum());
  maybe_ack_locked();
}

void Consumer::catch_up(std::stop_token stop) {
  // Demoted: live delivery stopped at the seen watermark. Page the
  // merged store replay through this consumer's own rules until within
  // promotion range of the live head, then finish to the promotion
  // watermark. The paging never runs under deliver_mu_.
  const std::size_t page = options_.replay_page > 0 ? options_.replay_page : 4096;
  std::size_t replayed = 0;
  auto backoff = std::chrono::milliseconds(1);
  while (!stop.stop_requested()) {
    if (options_.hub->state(*hub_sub_) == FlowState::kEvicted) {
      evicted_.store(true);
      return;
    }
    VectorCursor cursor = seen_cursor();
    auto events = aggregator_.events_since(cursor, page);
    if (!events) {
      // A transient store error (a shard mid-restart, a paged read
      // racing a purge) must not end catch-up: the hub sends the
      // kDemoted marker exactly once, so returning while still demoted
      // would strand this consumer — never promoted, pinning the
      // min-ack cursor forever. Back off and retry until stopped.
      FSMON_WARN("consumer", "catch-up replay failed (retrying): ",
                 events.status().to_string());
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, std::chrono::milliseconds(100));
      continue;
    }
    backoff = std::chrono::milliseconds(1);
    const std::size_t got = events.value().size();
    if (got > 0) {
      core::EventBatch batch;
      batch.events = std::move(events.value());
      replayed += got;
      deliver_batch(batch, /*dedup_filter=*/true, /*already_filtered=*/false);
    }
    if (got < page) {
      if (auto target = options_.hub->try_promote(*hub_sub_, seen_cursor())) {
        replay_to_watermark(*target, stop);
        if (replayed_counter_ != nullptr && replayed > 0)
          replayed_counter_->inc(replayed);
        return;
      }
      // Still too far behind (the head keeps moving), or the persister
      // has not yet caught up with the published head. Keep paging.
      if (got == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void Consumer::replay_to_watermark(const VectorCursor& target,
                                   std::stop_token stop) {
  // Promotion happened at `target`: frames matched after it are queued
  // live, so replaying exactly up to it closes the demotion gap with no
  // overlap. The store may trail the published head briefly (persistence
  // is async) — retry empty pages until the cursor reaches the target.
  const std::size_t page = options_.replay_page > 0 ? options_.replay_page : 4096;
  auto backoff = std::chrono::milliseconds(1);
  while (!stop.stop_requested()) {
    VectorCursor cursor = seen_cursor();
    bool reached = true;
    for (std::size_t k = 0; k < target.size(); ++k) {
      if (cursor.at(k) < target.at(k)) {
        reached = false;
        break;
      }
    }
    if (reached) return;
    auto events = aggregator_.events_since(cursor, page);
    if (!events) {
      // Giving up short of the promotion watermark would leave a silent
      // gap: the hub already resumed live delivery above `target`, so
      // the unreplayed remainder would never arrive. Retry — the seam
      // is only closed once the cursor reaches the target.
      FSMON_WARN("consumer", "promotion replay failed (retrying): ",
                 events.status().to_string());
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, std::chrono::milliseconds(100));
      continue;
    }
    backoff = std::chrono::milliseconds(1);
    if (events.value().empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    core::EventBatch batch;
    batch.events = std::move(events.value());
    deliver_batch(batch, /*dedup_filter=*/true, /*already_filtered=*/false);
  }
}

Result<std::size_t> Consumer::replay_historic(std::optional<common::EventId> after_id) {
  VectorCursor cursor(aggregator_.shard_count());
  if (after_id.has_value()) {
    for (auto& id : cursor.last_ids) id = *after_id;
    return replay_historic(std::move(cursor), /*rewind=*/true);
  }
  {
    std::lock_guard lock(deliver_mu_);
    cursor = acked_;
  }
  return replay_historic(std::move(cursor), /*rewind=*/false);
}

Result<std::size_t> Consumer::replay_historic(VectorCursor cursor, bool rewind) {
  // An intentional rewind resets the dedup window so the requested range
  // is delivered again, and bypasses the duplicate filter for the
  // replayed batches themselves. The batches still mark the window, so
  // live duplicates of the replayed range are suppressed afterwards.
  if (rewind) {
    std::lock_guard lock(deliver_mu_);
    dedup_.clear();
  }
  // Page through the merged view instead of materializing the whole
  // backlog: a consumer that lagged by millions of events replays in
  // `replay_page`-sized merged pages, each fetched (and freed) in turn.
  // The page fetch never runs under deliver_mu_ — the stores are paged
  // first, delivery locks second — so a slow callback can stall
  // delivery but never deadlock the store paging of any shard.
  const std::size_t page = options_.replay_page > 0 ? options_.replay_page : 4096;
  std::size_t count = 0;
  for (;;) {
    auto events = aggregator_.events_since(cursor, page);
    if (!events) return events.status();
    if (events.value().empty()) break;
    core::EventBatch batch;
    batch.events = std::move(events.value());
    count += batch.size();
    deliver_batch(batch, /*dedup_filter=*/!rewind);
    if (batch.size() < page) break;
  }
  if (replayed_counter_ != nullptr) replayed_counter_->inc(count);
  return count;
}

}  // namespace fsmon::scalable
