#include "src/scalable/consumer.hpp"

#include "src/common/logging.hpp"

namespace fsmon::scalable {

using common::Result;
using common::Status;

Consumer::Consumer(msgq::Bus& bus, ShardedAggregator& aggregator, std::string name,
                   ConsumerOptions options, EventCallback callback)
    : Consumer(bus, aggregator, std::move(name), std::move(options), std::move(callback),
               BatchCallback{}) {}

Consumer::Consumer(msgq::Bus& bus, ShardedAggregator& aggregator, std::string name,
                   ConsumerOptions options, BatchCallback callback)
    : Consumer(bus, aggregator, std::move(name), std::move(options), EventCallback{},
               std::move(callback)) {}

Consumer::Consumer(msgq::Bus& bus, ShardedAggregator& aggregator, std::string name,
                   ConsumerOptions options, EventCallback callback,
                   BatchCallback batch_callback)
    : bus_(bus),
      aggregator_(aggregator),
      name_(std::move(name)),
      options_(std::move(options)),
      callback_(std::move(callback)),
      batch_callback_(std::move(batch_callback)),
      receiver_(aggregator.transport().make_receiver(
          name_, options_.high_water_mark,
          options_.overflow_policy == common::OverflowPolicy::kDropNewest
              ? transport::OverflowPolicy::kDropNewest
              : transport::OverflowPolicy::kBlock)),
      seen_(aggregator.shard_count()),
      acked_(aggregator.shard_count()) {
  receiver_->subscribe("");  // receive everything; filter locally
  // One inbox fed by every shard: frames from different shards
  // interleave at the queue, but each frame is whole, so per-shard order
  // is preserved (each shard's sender pushes in its id order).
  for (std::size_t k = 0; k < aggregator_.shard_count(); ++k)
    aggregator_.shard(k).connect_output(receiver_);
  if (options_.metrics != nullptr) {
    auto& registry = *options_.metrics;
    const obs::Labels labels{{"consumer", name_}};
    filter_metrics_ = core::FilterMetrics::create(registry, labels);
    delivered_counter_ = &registry.counter("consumer.events_delivered", labels,
                                           "Matching events handed to the callback",
                                           "events");
    replayed_counter_ = &registry.counter(
        "consumer.events_replayed", labels,
        "Events re-delivered from the reliable store (fault recovery)", "events");
    delivery_lag_gauge_ = &registry.gauge(
        "consumer.delivery_lag_events", labels,
        "Sum of shard head ids minus events seen by this consumer", "events");
    overflow_dropped_gauge_ = &registry.gauge(
        "consumer.overflow_dropped", labels,
        "Events lost to the high-water mark (kDropNewest only)", "events");
    batch_size_hist_ = &registry.histogram("consumer.batch_size", labels,
                                           "Events per batch received by this consumer",
                                           "events");
  }
}

Consumer::~Consumer() { stop(); }

bool Consumer::matches(const core::StdEvent& event) const {
  return core::matches_any(options_.rules, event);
}

VectorCursor Consumer::seen_cursor() const {
  std::lock_guard lock(deliver_mu_);
  return seen_;
}

void Consumer::deliver_batch(const core::EventBatch& batch, bool dedup_filter) {
  if (batch.empty()) return;
  std::lock_guard lock(deliver_mu_);
  // A live frame carries one shard's events; a merged replay page may
  // mix shards. Either way the owning shard is recomputed from the
  // event source through the shared map — the same rule the router
  // applied on the write path.
  const std::size_t shard_count = aggregator_.shard_count();
  for (const core::StdEvent& event : batch.events) {
    const std::size_t shard =
        shard_count == 1 ? 0 : aggregator_.map().shard_of(event.source);
    seen_.advance(shard, event.id);
  }
  last_seen_sum_.store(seen_.sum());
  if (delivery_lag_gauge_ != nullptr) {
    const auto head = aggregator_.last_event_id_sum();
    const auto seen = seen_.sum();
    delivery_lag_gauge_->set(head > seen ? static_cast<std::int64_t>(head - seen) : 0);
    overflow_dropped_gauge_->set(static_cast<std::int64_t>(receiver_->dropped()));
    batch_size_hist_->record(batch.size());
  }
  // Duplicate decisions are made for the whole batch before any marking:
  // a rename's MOVED_FROM/MOVED_TO halves share one cookie and always
  // travel in one frame, so both are fresh or both are duplicates.
  std::vector<bool> deliverable(batch.size(), true);
  if (dedup_filter) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const core::StdEvent& event = batch.events[i];
      if (event.cookie == 0 || event.source.empty()) continue;
      auto it = dedup_.find(event.source);
      if (it != dedup_.end() && !it->second.fresh(event.cookie)) {
        deliverable[i] = false;
        duplicates_.fetch_add(1);
      }
    }
  }
  for (const core::StdEvent& event : batch.events) {
    if (event.cookie == 0 || event.source.empty()) continue;
    dedup_[event.source].mark(event.cookie);
  }
  core::EventBatch matched;  // only materialized for batch callbacks
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!deliverable[i]) continue;
    const core::StdEvent& event = batch.events[i];
    if (!core::matches_any(options_.rules, event,
                           filter_metrics_.evaluations != nullptr ? &filter_metrics_
                                                                  : nullptr)) {
      filtered_.fetch_add(1);
      continue;
    }
    ++delivered;
    if (batch_callback_)
      matched.events.push_back(event);
    else if (callback_)
      callback_(event);
  }
  if (delivered > 0) {
    delivered_.fetch_add(delivered);
    if (delivered_counter_ != nullptr) delivered_counter_->inc(delivered);
  }
  if (batch_callback_ && !matched.empty()) batch_callback_(matched);
  if (options_.ack_interval > 0 &&
      seen_.sum() - acked_.sum() >= options_.ack_interval) {
    aggregator_.acknowledge(seen_);
    acked_ = seen_;
  }
}

Status Consumer::start() {
  if (running_.load()) return Status::ok();
  running_.store(true);
  worker_ = std::jthread([this](std::stop_token stop) { run(stop); });
  return Status::ok();
}

void Consumer::stop() {
  if (!running_.load()) return;
  receiver_->close();
  if (worker_.joinable()) {
    worker_.request_stop();
    worker_.join();
  }
  running_.store(false);
}

void Consumer::crash() {
  if (!running_.load()) return;
  // Fail-stop: identical teardown to stop() except semantically abrupt —
  // frames queued in the inbox die with the process; nothing further is
  // acknowledged.
  receiver_->close();
  if (worker_.joinable()) {
    worker_.request_stop();
    worker_.join();
  }
  running_.store(false);
}

Status Consumer::restart() {
  if (running_.load()) return Status::ok();
  receiver_->reopen();
  VectorCursor resume;
  {
    std::lock_guard lock(deliver_mu_);
    resume = acked_;
  }
  // Replay BEFORE the worker starts: if a live frame arrived first it
  // would initialize the dedup watermark at a high index and the replayed
  // prefix would be misread as duplicates (lost events). Replaying first
  // seeds the window from the oldest unacked record.
  if (auto replayed = replay_historic(std::move(resume), /*rewind=*/true); !replayed) {
    return replayed.status();
  }
  return start();
}

void Consumer::run(std::stop_token) {
  for (;;) {
    auto message = receiver_->recv();
    if (!message) break;
    // Decode straight out of the shared frame bytes — over shm this reads
    // the ring record in place; the FrameRef keeps it alive until here.
    auto batch = core::decode_batch(message->payload.bytes());
    if (!batch) {
      FSMON_WARN("consumer", "corrupt batch frame: ", batch.status().to_string());
      continue;
    }
    deliver_batch(batch.value());
  }
}

Result<std::size_t> Consumer::replay_historic(std::optional<common::EventId> after_id) {
  VectorCursor cursor(aggregator_.shard_count());
  if (after_id.has_value()) {
    for (auto& id : cursor.last_ids) id = *after_id;
    return replay_historic(std::move(cursor), /*rewind=*/true);
  }
  {
    std::lock_guard lock(deliver_mu_);
    cursor = acked_;
  }
  return replay_historic(std::move(cursor), /*rewind=*/false);
}

Result<std::size_t> Consumer::replay_historic(VectorCursor cursor, bool rewind) {
  // An intentional rewind resets the dedup window so the requested range
  // is delivered again, and bypasses the duplicate filter for the
  // replayed batches themselves. The batches still mark the window, so
  // live duplicates of the replayed range are suppressed afterwards.
  if (rewind) {
    std::lock_guard lock(deliver_mu_);
    dedup_.clear();
  }
  // Page through the merged view instead of materializing the whole
  // backlog: a consumer that lagged by millions of events replays in
  // `replay_page`-sized merged pages, each fetched (and freed) in turn.
  // The page fetch never runs under deliver_mu_ — the stores are paged
  // first, delivery locks second — so a slow callback can stall
  // delivery but never deadlock the store paging of any shard.
  const std::size_t page = options_.replay_page > 0 ? options_.replay_page : 4096;
  std::size_t count = 0;
  for (;;) {
    auto events = aggregator_.events_since(cursor, page);
    if (!events) return events.status();
    if (events.value().empty()) break;
    core::EventBatch batch;
    batch.events = std::move(events.value());
    count += batch.size();
    deliver_batch(batch, /*dedup_filter=*/!rewind);
    if (batch.size() < page) break;
  }
  if (replayed_counter_ != nullptr) replayed_counter_->inc(count);
  return count;
}

}  // namespace fsmon::scalable
