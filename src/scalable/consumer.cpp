#include "src/scalable/consumer.hpp"

#include "src/common/logging.hpp"

namespace fsmon::scalable {

using common::Result;
using common::Status;

Consumer::Consumer(msgq::Bus& bus, Aggregator& aggregator, std::string name,
                   ConsumerOptions options, EventCallback callback)
    : bus_(bus),
      aggregator_(aggregator),
      name_(std::move(name)),
      options_(std::move(options)),
      callback_(std::move(callback)),
      subscriber_(bus_.make_subscriber(name_, options_.high_water_mark,
                                       options_.overflow_policy)) {
  subscriber_->subscribe("");  // receive everything; filter locally
  aggregator_.output()->connect(subscriber_);
  if (options_.metrics != nullptr) {
    auto& registry = *options_.metrics;
    const obs::Labels labels{{"consumer", name_}};
    filter_metrics_ = core::FilterMetrics::create(registry, labels);
    delivered_counter_ = &registry.counter("consumer.events_delivered", labels,
                                           "Matching events handed to the callback",
                                           "events");
    replayed_counter_ = &registry.counter(
        "consumer.events_replayed", labels,
        "Events re-delivered from the reliable store (fault recovery)", "events");
    delivery_lag_gauge_ = &registry.gauge(
        "consumer.delivery_lag_events", labels,
        "Aggregator head id minus last event seen by this consumer", "events");
    overflow_dropped_gauge_ = &registry.gauge(
        "consumer.overflow_dropped", labels,
        "Events lost to the high-water mark (kDropNewest only)", "events");
  }
}

Consumer::~Consumer() { stop(); }

bool Consumer::matches(const core::StdEvent& event) const {
  return core::matches_any(options_.rules, event);
}

void Consumer::deliver(const core::StdEvent& event) {
  last_seen_.store(event.id);
  if (delivery_lag_gauge_ != nullptr) {
    const auto head = aggregator_.last_event_id();
    delivery_lag_gauge_->set(
        head > event.id ? static_cast<std::int64_t>(head - event.id) : 0);
    overflow_dropped_gauge_->set(static_cast<std::int64_t>(subscriber_->dropped()));
  }
  if (!core::matches_any(options_.rules, event,
                         filter_metrics_.evaluations != nullptr ? &filter_metrics_
                                                                : nullptr)) {
    filtered_.fetch_add(1);
    return;
  }
  delivered_.fetch_add(1);
  if (delivered_counter_ != nullptr) delivered_counter_->inc();
  if (callback_) callback_(event);
  if (options_.ack_interval > 0 &&
      event.id - last_acked_.load() >= options_.ack_interval) {
    aggregator_.acknowledge(event.id);
    last_acked_.store(event.id);
  }
}

Status Consumer::start() {
  if (running_.load()) return Status::ok();
  running_.store(true);
  worker_ = std::jthread([this](std::stop_token stop) { run(stop); });
  return Status::ok();
}

void Consumer::stop() {
  if (!running_.load()) return;
  subscriber_->close();
  if (worker_.joinable()) {
    worker_.request_stop();
    worker_.join();
  }
  running_.store(false);
}

void Consumer::run(std::stop_token) {
  for (;;) {
    auto message = subscriber_->recv();
    if (!message) break;
    auto decoded = core::deserialize_event(
        std::as_bytes(std::span(message->payload.data(), message->payload.size())));
    if (!decoded) {
      FSMON_WARN("consumer", "corrupt event frame: ", decoded.status().to_string());
      continue;
    }
    deliver(decoded.value().first);
  }
}

Result<std::size_t> Consumer::replay_historic(std::optional<common::EventId> after_id) {
  const common::EventId from = after_id.value_or(last_acked_.load());
  auto events = aggregator_.events_since(from);
  if (!events) return events.status();
  std::size_t count = 0;
  for (const auto& event : events.value()) {
    deliver(event);
    ++count;
  }
  if (replayed_counter_ != nullptr) replayed_counter_->inc(count);
  return count;
}

}  // namespace fsmon::scalable
