#include "src/scalable/consumer.hpp"

#include "src/common/logging.hpp"

namespace fsmon::scalable {

using common::Result;
using common::Status;

Consumer::Consumer(msgq::Bus& bus, Aggregator& aggregator, std::string name,
                   ConsumerOptions options, EventCallback callback)
    : bus_(bus),
      aggregator_(aggregator),
      name_(std::move(name)),
      options_(std::move(options)),
      callback_(std::move(callback)),
      subscriber_(bus_.make_subscriber(name_, options_.high_water_mark,
                                       options_.overflow_policy)) {
  subscriber_->subscribe("");  // receive everything; filter locally
  aggregator_.output()->connect(subscriber_);
}

Consumer::~Consumer() { stop(); }

bool Consumer::matches(const core::StdEvent& event) const {
  if (options_.rules.empty()) return true;
  for (const auto& rule : options_.rules) {
    if (rule.matches(event)) return true;
  }
  return false;
}

void Consumer::deliver(const core::StdEvent& event) {
  last_seen_.store(event.id);
  if (!matches(event)) {
    filtered_.fetch_add(1);
    return;
  }
  delivered_.fetch_add(1);
  if (callback_) callback_(event);
  if (options_.ack_interval > 0 &&
      event.id - last_acked_.load() >= options_.ack_interval) {
    aggregator_.acknowledge(event.id);
    last_acked_.store(event.id);
  }
}

Status Consumer::start() {
  if (running_.load()) return Status::ok();
  running_.store(true);
  worker_ = std::jthread([this](std::stop_token stop) { run(stop); });
  return Status::ok();
}

void Consumer::stop() {
  if (!running_.load()) return;
  subscriber_->close();
  if (worker_.joinable()) {
    worker_.request_stop();
    worker_.join();
  }
  running_.store(false);
}

void Consumer::run(std::stop_token) {
  for (;;) {
    auto message = subscriber_->recv();
    if (!message) break;
    auto decoded = core::deserialize_event(
        std::as_bytes(std::span(message->payload.data(), message->payload.size())));
    if (!decoded) {
      FSMON_WARN("consumer", "corrupt event frame: ", decoded.status().to_string());
      continue;
    }
    deliver(decoded.value().first);
  }
}

Result<std::size_t> Consumer::replay_historic(std::optional<common::EventId> after_id) {
  const common::EventId from = after_id.value_or(last_acked_.load());
  auto events = aggregator_.events_since(from);
  if (!events) return events.status();
  std::size_t count = 0;
  for (const auto& event : events.value()) {
    deliver(event);
    ++count;
  }
  return count;
}

}  // namespace fsmon::scalable
