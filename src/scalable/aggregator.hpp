// Aggregator service: runs on the MGS (paper Section IV "Aggregation").
//
// Subscribes to every collector's sender (fan-in), assigns global event
// ids, and runs two worker threads exactly as the paper describes: "one
// thread is responsible for publishing the aggregated file system events
// to the subscribed consumers, and the other thread stores the events
// into a local database to enable fault tolerance." The database is the
// reliable event store; consumers replay from it via events_since().
//
// Both stage boundaries ride the transport::Transport interface: frames
// arrive on a Receiver and fan out through a Sender as immutable
// ref-counted FrameRefs, so the aggregator never copies the encoded
// batch — id patching happens in place and the persister shares the
// published bytes. By default the aggregator owns an InProcTransport
// over the bus it was given (byte-for-byte the historic topology);
// injecting AggregatorOptions::transport rebases the same pipeline onto
// shared-memory rings or TCP without the stage noticing.
//
// The persist path is an async group commit: the persist thread
// coalesces whatever batches are already queued (bounded by
// wal_group_commit_bytes, optionally waiting wal_group_commit_us for
// stragglers) and commits the whole group with one store append and one
// flush. Acks — including ack-only markers — are released strictly in
// queue order, and only after the group's commit, so the exactly-once
// acked-implies-durable invariant is untouched.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bounded_queue.hpp"
#include "src/common/clock.hpp"
#include "src/common/rate_meter.hpp"
#include "src/core/event.hpp"
#include "src/eventstore/store.hpp"
#include "src/msgq/pubsub.hpp"
#include "src/obs/metrics.hpp"
#include "src/transport/transport.hpp"

namespace fsmon::scalable {

struct AggregatorOptions {
  std::size_t inbox_high_water_mark = 1 << 16;
  std::size_t persist_queue_capacity = 1 << 16;
  /// Topic the aggregator publishes resolved events under.
  std::string output_topic = "fsmon/events";
  /// Transport the input/output endpoints are created on. Null (default)
  /// makes the aggregator own an InProcTransport over its bus — the
  /// historic in-process topology. The pointer must outlive the
  /// aggregator.
  transport::Transport* transport = nullptr;
  /// Reliable store configuration; nullopt disables fault tolerance.
  std::optional<eventstore::EventStoreOptions> store;
  /// Group-commit byte budget: the persist thread keeps coalescing
  /// already-queued batches into one commit group until the group holds
  /// this many frame bytes. 0 commits each batch individually (the
  /// pre-group-commit behaviour; the shard-scaling bench uses it so its
  /// modeled per-batch commit latency stays per batch).
  std::size_t wal_group_commit_bytes = 1 << 20;
  /// Group-commit time budget: how long the persist thread waits for
  /// further batches once it holds at least one and the byte budget is
  /// not yet full. 0 (default) only coalesces what is already queued —
  /// no added latency, deterministic for drains.
  common::Duration wal_group_commit_us{};
  /// Period of the automatic purge cycle removing acknowledged events
  /// ("events ... can be removed from the data store when next data
  /// purge cycle is initiated", Section IV). Zero disables the cycle;
  /// purge() can always be called manually.
  common::Duration purge_interval{};
  /// Observability registry; null = uninstrumented. Registers
  /// aggregator.* and (when a store is configured) wal.* / store.*.
  obs::MetricsRegistry* metrics = nullptr;
  /// Extra labels on every metric this aggregator (and its store)
  /// registers. A sharded deployment sets {{"shard", "<k>"}} so the N
  /// instances get distinct instruments instead of fighting over one.
  obs::Labels labels;
  /// Chaos fault-point scope, e.g. "aggregator.shard2.". When set, the
  /// publish/persist paths consult the scoped points
  /// (<scope>before_publish / <scope>before_persist) *in addition to*
  /// the generic aggregator.* points, so a fault plan can target one
  /// shard while fleet-wide plans keep working.
  std::string fault_scope;
  /// Modeled durable-commit latency per commit group (the paper's
  /// aggregator commits each batch to MySQL; this stands in for that
  /// round trip). Slept for real in the persist thread, once per group.
  /// Zero (default) for production paths; the shard scaling bench sets
  /// it (with group commit off) so the per-shard persist threads have
  /// genuine latency to overlap.
  common::Duration commit_latency{};
};

class Aggregator {
 public:
  /// Durable-custody acknowledgement: every event of `source` whose
  /// changelog record index is <= `record_index` is persisted (or, with
  /// no store configured, fanned out). The scalable monitor routes these
  /// back to the owning collector, which clears the changelog up to the
  /// acked index. Invoked from the persist thread (or the pump thread
  /// when storeless / on duplicate drops).
  using AckCallback = std::function<void(std::string_view source,
                                         std::uint64_t record_index)>;
  /// Negative acknowledgement: a frame from `source` started above
  /// `watermark + 1` and was refused (a gap means frames were lost in
  /// flight — dropped by a faulted or reconnecting transport). The
  /// refusal alone is invisible to the sender, whose transport-level
  /// send already succeeded; without a back-channel the gap wedges the
  /// pipeline forever (every later frame is also above the hole). The
  /// monitor routes nacks to the owning collector, which rewinds to the
  /// cleared index and re-publishes the unacked suffix. Invoked from
  /// the pump thread.
  using NackCallback = std::function<void(std::string_view source,
                                          std::uint64_t watermark)>;

  Aggregator(msgq::Bus& bus, std::string name, AggregatorOptions options,
             common::Clock& clock);
  ~Aggregator();

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Must be set before start() / drain_once(); not thread-safe.
  void set_ack_callback(AckCallback callback) { ack_callback_ = std::move(callback); }
  /// Must be set before start() / drain_once(); not thread-safe.
  void set_nack_callback(NackCallback callback) { nack_callback_ = std::move(callback); }

  common::Status start();
  void stop();

  /// Fail-stop as a crash harness would: worker threads exit immediately,
  /// buffered frames (inbox + persist queue) are lost exactly as a real
  /// process crash would lose them. Unpersisted events were never acked,
  /// so collectors re-publish them after restart().
  void crash();
  /// Restart after crash(): reopen the queues empty, recover the event
  /// store from disk (WAL torn-tail scan included), resume id assignment
  /// after the last durable id, rebuild the per-source dedup watermarks
  /// from the recovered events, and start the worker threads.
  common::Status restart();
  bool crashed() const { return crashed_.load(); }

  /// Synchronously pump whatever is buffered (deterministic tests; only
  /// valid while the worker threads are not running). Returns frames
  /// processed. Persists as groups of one so chaos schedules stay
  /// per-batch deterministic.
  std::size_t drain_once();

  /// Transport this aggregator's endpoints live on.
  transport::Transport& transport() { return *transport_; }
  /// Fan-in receiver — the shard router's senders connect here.
  const std::shared_ptr<transport::Receiver>& input() const { return input_; }
  /// Connect a downstream receiver (consumer, bridge tap) to the output.
  void connect_output(const std::shared_ptr<transport::Receiver>& receiver) {
    output_->connect(receiver);
    if (fanout_receivers_gauge_ != nullptr)
      fanout_receivers_gauge_->set(
          static_cast<std::int64_t>(output_->receiver_count()));
  }

  /// Bus-compat splice points (in-proc transport only; null otherwise).
  /// Tests use these to wire rogue publishers straight into the inbox.
  std::shared_ptr<msgq::Subscriber> inbox() const;
  std::shared_ptr<msgq::Publisher> output() const;

  /// Historic replay from the reliable store (consumer fault recovery).
  common::Result<std::vector<core::StdEvent>> events_since(
      common::EventId after_id, std::size_t max_events = SIZE_MAX) const;

  /// Consumers acknowledge delivery; acknowledged events are removed at
  /// the next purge cycle.
  void acknowledge(common::EventId up_to_id);
  std::size_t purge();

  common::EventId last_event_id() const { return next_id_.load() - 1; }
  std::uint64_t aggregated() const { return aggregated_.load(); }
  std::uint64_t persisted() const { return persisted_.load(); }
  std::uint64_t purge_cycles() const { return purge_cycles_.load(); }
  /// Replayed events dropped by the per-source (MDT, record-index) dedup.
  std::uint64_t deduped() const { return deduped_.load(); }
  /// Commit groups flushed by the persist thread.
  std::uint64_t commit_groups() const { return commit_groups_.load(); }
  double publish_rate() const { return meter_.average_rate(); }
  const eventstore::EventStore* store() const { return store_.get(); }

 private:
  /// An id-patched, already-encoded batch frame handed from the pump to
  /// the persister. The frame bytes are shared with the published copy —
  /// the persist path never re-serializes and never duplicates.
  /// `source`/`last_seq` carry the durability ack the persister owes the
  /// originating collector; an empty frame is an ack-only marker.
  struct PersistBatch {
    common::EventId first_id = 0;
    std::string source;
    std::uint64_t last_seq = 0;
    transport::FrameRef frame;
  };

  void pump_loop(std::stop_token stop);
  void persist_loop(std::stop_token stop);
  void purge_loop(std::stop_token stop);
  /// One pump iteration: dedup replays, assign ids, fan out, enqueue for
  /// persistence. Returns false if the frame was dropped (corrupt or
  /// fully duplicate) or the stage crashed.
  bool process_frame(transport::Frame& message);
  /// Commit one group: per-batch before_persist faults, one torn-group
  /// fault evaluation, one store append + flush for the whole group,
  /// then acks in queue order. Returns false when the stage crashed (no
  /// batch of the group was acked unless its prefix committed first).
  bool persist_group(std::span<PersistBatch> group);
  void ack(std::string_view source, std::uint64_t record_index);
  void rebuild_accepted_from_store();

  msgq::Bus& bus_;
  std::string name_;
  AggregatorOptions options_;
  common::Clock& clock_;
  /// Owned fallback when options_.transport is null. Declared before the
  /// endpoints it creates.
  std::unique_ptr<transport::Transport> owned_transport_;
  transport::Transport* transport_ = nullptr;
  std::shared_ptr<transport::Receiver> input_;
  std::shared_ptr<transport::Sender> output_;
  std::unique_ptr<eventstore::EventStore> store_;
  common::BoundedQueue<PersistBatch> persist_queue_;
  common::RateMeter meter_;
  std::jthread pump_thread_;
  std::jthread persist_thread_;
  std::jthread purge_thread_;
  std::atomic<common::EventId> next_id_{1};
  std::atomic<std::uint64_t> aggregated_{0};
  std::atomic<std::uint64_t> persisted_{0};
  std::atomic<std::uint64_t> purge_cycles_{0};
  std::atomic<std::uint64_t> deduped_{0};
  std::atomic<std::uint64_t> commit_groups_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> crashed_{false};
  AckCallback ack_callback_;
  NackCallback nack_callback_;
  /// Per-source highest accepted changelog record index. Replayed events
  /// at or below their source's watermark are duplicates of already-
  /// accepted (persisted) events and are trimmed before id assignment.
  /// Touched only by the pump thread (or drain_once when stopped).
  std::map<std::string, std::uint64_t, std::less<>> accepted_seq_;
  obs::Counter* deduped_counter_ = nullptr;
  obs::Counter* gapped_counter_ = nullptr;
  obs::Counter* publish_retried_counter_ = nullptr;
  obs::Counter* publish_abandoned_counter_ = nullptr;
  obs::Counter* aggregated_counter_ = nullptr;
  obs::Counter* persisted_counter_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* queue_depth_peak_gauge_ = nullptr;
  obs::Gauge* publish_rate_gauge_ = nullptr;
  obs::Gauge* fanout_receivers_gauge_ = nullptr;
  obs::HistogramMetric* fanout_lag_hist_ = nullptr;
  obs::HistogramMetric* batch_size_hist_ = nullptr;
  obs::HistogramMetric* batch_bytes_hist_ = nullptr;
  obs::HistogramMetric* group_size_hist_ = nullptr;
  obs::HistogramMetric* group_commit_latency_hist_ = nullptr;
};

}  // namespace fsmon::scalable
