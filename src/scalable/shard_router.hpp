// ShardRouter: routes each collector batch frame to exactly one
// aggregator shard.
//
// Sits logically between the collectors and the shard inboxes, but runs
// *synchronously on the collector's thread* — deliberately not a pump
// stage with its own queue. The collector's recovery protocol depends on
// the send call observing the target inbox directly: a closed inbox
// (shard crash window) must surface as "refused" so the collector
// rewinds to its cleared index. A queue in between would absorb the
// frame, report success, and lose it with the router's memory.
//
// The router is transport-agnostic: it holds one pre-connected
// transport::Sender per shard and never learns whether the hop is the
// in-process bus, a shared-memory ring, or a TCP link. Frames travel as
// immutable FrameRefs, so routing is a refcount bump, never a copy.
//
// Routing key: the frame's event source (all events in a frame share
// one source — collectors flush at record boundaries and each collector
// serves one MDT), resolved through the shared ShardMap.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.hpp"
#include "src/obs/metrics.hpp"
#include "src/scalable/shard_map.hpp"
#include "src/transport/transport.hpp"

namespace fsmon::scalable {

/// Outcome of routing one frame, shaped like the raw publisher call the
/// collector used to make: `accepted == 0 && subscribers > 0` is the
/// refusal signal that triggers a collector rewind.
struct RouteResult {
  std::size_t accepted = 0;
  std::size_t subscribers = 0;
  std::size_t shard = 0;
};

class ShardRouter {
 public:
  /// `senders[k]` is shard k's fan-in sender, already connected to that
  /// shard's input receiver by whoever assembled the tier.
  ShardRouter(const ShardMap& map,
              std::vector<std::shared_ptr<transport::Sender>> senders,
              common::Clock& clock, obs::MetricsRegistry* metrics = nullptr);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Route one encoded batch frame to its owning shard. Synchronous:
  /// returns only after the shard inbox accepted (or refused) the frame.
  /// The `router.before_route` fault point models the collector->shard
  /// link failing: drop/fail outcomes refuse the frame (the collector
  /// rewinds and replays contiguously — never a silent loss), delay
  /// stalls the publishing collector thread.
  RouteResult route(const std::string& topic, transport::FrameRef frame);
  /// String compat shim (tests exercise the router with raw payloads):
  /// adopts the string — a move, not a counted copy.
  RouteResult route(const std::string& topic, std::string payload) {
    return route(topic, transport::FrameRef::adopt(std::move(payload)));
  }

  const ShardMap& map() const { return map_; }
  std::uint64_t frames_routed() const { return frames_.load(); }
  std::uint64_t frames_refused() const { return refused_.load(); }

 private:
  const ShardMap& map_;
  common::Clock& clock_;
  std::vector<std::shared_ptr<transport::Sender>> senders_;
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::vector<obs::Counter*> frames_counters_;  ///< Per shard, label shard=<k>.
  std::vector<obs::Counter*> events_counters_;  ///< Per shard, label shard=<k>.
  obs::Counter* refused_counter_ = nullptr;
  obs::Counter* unroutable_counter_ = nullptr;
};

}  // namespace fsmon::scalable
