#include "src/scalable/flow_control.hpp"

#include <algorithm>

#include "src/common/logging.hpp"

namespace fsmon::scalable {

using common::Status;

namespace {
/// Pump frames between unsolicited min-ack forwards (covers the
/// nobody-is-acking case; every consumer ack still forwards eagerly).
constexpr std::size_t kIdleForwardInterval = 64;
}  // namespace

std::string_view to_string(FlowState state) {
  switch (state) {
    case FlowState::kLive: return "live";
    case FlowState::kDemoted: return "demoted";
    case FlowState::kEvicted: return "evicted";
  }
  return "unknown";
}

FlowMetrics FlowMetrics::create(obs::MetricsRegistry& registry,
                                const obs::Labels& labels) {
  FlowMetrics m;
  m.demotions = &registry.counter(
      "flow.demotions", labels,
      "Subscriptions demoted to store replay after exhausting credits",
      "demotions");
  m.promotions = &registry.counter(
      "flow.promotions", labels,
      "Subscriptions promoted back to live delivery after catch-up",
      "promotions");
  m.evictions = &registry.counter(
      "flow.evictions", labels,
      "Demoted subscriptions evicted for never draining", "evictions");
  m.live = &registry.gauge("flow.live_subscribers", labels,
                           "Subscriptions in live delivery", "subscribers");
  m.demoted = &registry.gauge("flow.demoted_subscribers", labels,
                              "Subscriptions catching up from the store",
                              "subscribers");
  return m;
}

FanOutHub::FanOutHub(ShardedAggregator& aggregator, FlowControlOptions options)
    : aggregator_(aggregator),
      options_(options),
      index_(options.metrics != nullptr
                 ? SubIndexMetrics::create(*options.metrics)
                 : SubIndexMetrics{}),
      heads_(aggregator.shard_count()),
      forwarded_(aggregator.shard_count()) {
  if (options_.credit_window == 0) options_.credit_window = 1;
  if (options_.promote_lag == 0)
    options_.promote_lag = std::max<std::uint64_t>(1, options_.credit_window / 4);
  if (options_.metrics != nullptr)
    metrics_ = FlowMetrics::create(*options_.metrics);
  receiver_ = aggregator_.transport().make_receiver(
      "fanout-hub", options_.high_water_mark, transport::OverflowPolicy::kBlock);
  receiver_->subscribe("");
  for (std::size_t k = 0; k < aggregator_.shard_count(); ++k)
    aggregator_.shard(k).connect_output(receiver_);
  // Start from the current live watermark: events published before a
  // subscription exists are historic, same as a legacy consumer that
  // connects late.
  heads_ = aggregator_.head_cursor();
}

FanOutHub::~FanOutHub() { stop(); }

Status FanOutHub::start() {
  if (running_.load()) return Status::ok();
  running_.store(true);
  pump_thread_ = std::jthread([this](std::stop_token stop) { pump(stop); });
  return Status::ok();
}

void FanOutHub::stop() {
  // Close unconditionally: the constructor already connected this
  // receiver to every shard, so a hub destroyed without start() (or
  // stopped twice) would otherwise leave a kBlock inbox open that can
  // fill up and wedge the shard senders. close() is idempotent.
  receiver_->close();
  if (!running_.load()) return;
  if (pump_thread_.joinable()) {
    pump_thread_.request_stop();
    pump_thread_.join();
  }
  running_.store(false);
}

std::shared_ptr<FanOutHub::Subscription> FanOutHub::subscribe(
    std::string name, std::span<const core::CompiledRule> rules) {
  auto sub = std::make_shared<Subscription>();
  std::lock_guard lock(mu_);
  sub->name_ = std::move(name);
  sub->id_ = index_.add_subscriber(rules);
  sub->state_ = FlowState::kLive;
  sub->credits_ = static_cast<std::int64_t>(options_.credit_window);
  sub->acked_ = heads_;
  // A frame the pump has already matched (without this subscriber in
  // the index) but not yet committed to heads_ would otherwise sit
  // above the recorded watermark while never being delivered or
  // replayed — count it as historic. If add_subscriber instead won the
  // race on the index lock, the frame arrives live as an early
  // (pre-watermark) delivery, which is harmless: fresh, deduped, no gap.
  if (pending_valid_) sub->acked_.advance(pending_shard_, pending_last_id_);
  if (subs_.size() <= sub->id_) subs_.resize(sub->id_ + 1);
  subs_[sub->id_] = sub;
  ++live_count_;
  update_gauges_locked();
  return sub;
}

void FanOutHub::unsubscribe(Subscription& sub) {
  {
    std::lock_guard lock(mu_);
    if (sub.id_ < subs_.size() && subs_[sub.id_].get() == &sub) {
      if (sub.state_ != FlowState::kEvicted) {
        index_.remove_subscriber(sub.id_);
        if (sub.state_ == FlowState::kLive) --live_count_;
        if (sub.state_ == FlowState::kDemoted) --demoted_count_;
        std::erase(demoted_, sub.id_);
        sub.state_ = FlowState::kEvicted;
      }
      subs_[sub.id_] = nullptr;
      forward_acks_locked();
      update_gauges_locked();
    }
  }
  std::lock_guard qlock(sub.queue_mu_);
  sub.queue_closed_ = true;
  sub.queue_cv_.notify_all();
}

std::optional<HubItem> FanOutHub::pop(Subscription& sub,
                                      std::chrono::milliseconds timeout) {
  std::unique_lock lock(sub.queue_mu_);
  auto ready = [&sub] { return !sub.queue_.empty() || sub.queue_closed_; };
  if (timeout.count() < 0) {
    sub.queue_cv_.wait(lock, ready);
  } else if (!sub.queue_cv_.wait_for(lock, timeout, ready)) {
    return std::nullopt;
  }
  if (sub.queue_.empty()) return std::nullopt;  // closed
  HubItem item = std::move(sub.queue_.front());
  sub.queue_.pop_front();
  return item;
}

void FanOutHub::acknowledge(Subscription& sub, const VectorCursor& cursor,
                            std::uint64_t processed_events) {
  std::lock_guard lock(mu_);
  if (sub.state_ == FlowState::kEvicted) return;
  for (std::size_t k = 0; k < cursor.size(); ++k)
    sub.acked_.advance(k, cursor.at(k));
  sub.credits_ = std::min<std::int64_t>(
      static_cast<std::int64_t>(options_.credit_window),
      sub.credits_ + static_cast<std::int64_t>(processed_events));
  forward_acks_locked();
}

std::optional<VectorCursor> FanOutHub::try_promote(Subscription& sub,
                                                   const VectorCursor& cursor) {
  std::lock_guard lock(mu_);
  if (sub.state_ != FlowState::kDemoted) return std::nullopt;
  const std::uint64_t head = heads_.sum();
  const std::uint64_t reached = cursor.sum();
  if (head > reached && head - reached > options_.promote_lag)
    return std::nullopt;
  sub.state_ = FlowState::kLive;
  sub.credits_ = static_cast<std::int64_t>(options_.credit_window);
  std::erase(demoted_, sub.id_);
  --demoted_count_;
  ++live_count_;
  if (metrics_.promotions != nullptr) metrics_.promotions->inc();
  update_gauges_locked();
  // Every frame matched before this point has last_id <= this snapshot;
  // every frame after it is delivered live. The caller finishes its
  // replay exactly to the snapshot for a gap-free, duplicate-free seam.
  return heads_;
}

FlowState FanOutHub::state(const Subscription& sub) const {
  std::lock_guard lock(mu_);
  return sub.state_;
}

std::int64_t FanOutHub::credits(const Subscription& sub) const {
  std::lock_guard lock(mu_);
  return sub.credits_;
}

VectorCursor FanOutHub::head_cursor() const {
  std::lock_guard lock(mu_);
  return heads_;
}

void FanOutHub::push_item(Subscription& sub, HubItem item) {
  std::lock_guard lock(sub.queue_mu_);
  if (sub.queue_closed_) return;
  sub.queue_.push_back(std::move(item));
  sub.queue_cv_.notify_one();
}

void FanOutHub::demote_locked(Subscription& sub) {
  sub.state_ = FlowState::kDemoted;
  demoted_.push_back(sub.id_);
  --live_count_;
  ++demoted_count_;
  if (metrics_.demotions != nullptr) metrics_.demotions->inc();
  update_gauges_locked();
  HubItem marker;
  marker.kind = HubItem::Kind::kDemoted;
  push_item(sub, std::move(marker));
}

void FanOutHub::evict_overdue_locked() {
  if (options_.eviction_lag == 0 || demoted_.empty()) return;
  const std::uint64_t head = heads_.sum();
  for (std::size_t i = 0; i < demoted_.size();) {
    auto& sub = subs_[demoted_[i]];
    const std::uint64_t acked = sub->acked_.sum();
    if (head > acked && head - acked > options_.eviction_lag) {
      index_.remove_subscriber(sub->id_);
      sub->state_ = FlowState::kEvicted;
      --demoted_count_;
      if (metrics_.evictions != nullptr) metrics_.evictions->inc();
      HubItem marker;
      marker.kind = HubItem::Kind::kEvicted;
      push_item(*sub, std::move(marker));
      demoted_[i] = demoted_.back();
      demoted_.pop_back();
      forward_acks_locked();
      update_gauges_locked();
    } else {
      ++i;
    }
  }
}

void FanOutHub::forward_acks_locked() {
  VectorCursor min_cursor = heads_;
  bool any = false;
  for (const auto& sub : subs_) {
    if (!sub || sub->state_ == FlowState::kEvicted) continue;
    any = true;
    // A live subscriber whose rules match nothing never appears in a
    // delivery set, so its acked_ cursor would pin the min forever at
    // its subscribe-time watermark. A full credit window means every
    // event ever queued for it has been processed AND acknowledged —
    // pushes debit the window under mu_ and only acks replenish it, so
    // full credits imply an empty queue — and everything at or below
    // heads_ is therefore either acked or failed its rules: the
    // effective watermark IS heads_ and it contributes nothing to the
    // min. Demoted subscribers keep their real cursor — they still
    // need the store for catch-up replay.
    if (sub->state_ == FlowState::kLive &&
        sub->credits_ >= static_cast<std::int64_t>(options_.credit_window))
      continue;
    min_cursor.ensure(sub->acked_.size());
    for (std::size_t k = 0; k < min_cursor.size(); ++k)
      min_cursor.last_ids[k] = std::min(min_cursor.last_ids[k], sub->acked_.at(k));
  }
  if (!any) return;
  bool advanced = false;
  for (std::size_t k = 0; k < min_cursor.size(); ++k) {
    if (min_cursor.at(k) > forwarded_.at(k)) {
      advanced = true;
      break;
    }
  }
  if (!advanced) return;
  for (std::size_t k = 0; k < min_cursor.size(); ++k)
    forwarded_.advance(k, min_cursor.at(k));
  aggregator_.acknowledge(forwarded_);
}

std::size_t FanOutHub::shard_of_topic(std::string_view topic) const {
  // Shard outputs publish under "<base>/shard<k>" when sharded, or the
  // bare base topic with one shard.
  if (aggregator_.shard_count() == 1) return 0;
  const std::size_t pos = topic.rfind("/shard");
  if (pos == std::string_view::npos) return 0;
  std::size_t shard = 0;
  for (char c : topic.substr(pos + 6)) {
    if (c < '0' || c > '9') return 0;
    shard = shard * 10 + static_cast<std::size_t>(c - '0');
  }
  return shard < aggregator_.shard_count() ? shard : 0;
}

void FanOutHub::update_gauges_locked() {
  if (metrics_.live != nullptr) {
    metrics_.live->set(static_cast<std::int64_t>(live_count_));
    metrics_.demoted->set(static_cast<std::int64_t>(demoted_count_));
  }
}

void FanOutHub::pump(std::stop_token stop) {
  DeliverySet delivery;
  while (!stop.stop_requested()) {
    auto frame = receiver_->recv();
    if (!frame) break;
    auto decoded = core::decode_batch(frame->payload.bytes());
    if (!decoded) {
      FSMON_WARN("fanout", "corrupt batch frame: ", decoded.status().to_string());
      continue;
    }
    if (decoded.value().empty()) continue;
    auto batch =
        std::make_shared<const core::EventBatch>(std::move(decoded.value()));
    const std::size_t shard = shard_of_topic(frame->topic);
    {
      // Publish the frame as in-flight so subscribe() can order itself
      // against it (see the pending_* comment in the header).
      std::lock_guard lock(mu_);
      pending_shard_ = shard;
      pending_last_id_ = batch->events.back().id;
      pending_valid_ = true;
    }
    // The index has its own lock; matching runs outside the hub mutex so
    // subscribe/ack calls are never blocked behind a large batch.
    index_.match_batch(batch->events, delivery);
    frames_.fetch_add(1);

    std::lock_guard lock(mu_);
    pending_valid_ = false;
    heads_.advance(shard, batch->events.back().id);
    for (SubscriberId id : delivery.touched()) {
      if (id >= subs_.size() || !subs_[id]) continue;
      Subscription& sub = *subs_[id];
      if (sub.state_ != FlowState::kLive) continue;
      if (sub.credits_ <= 0) {
        // The window went negative on an earlier frame (frames are
        // delivered whole); this one is not delivered — the catch-up
        // replay will cover it.
        demote_locked(sub);
        continue;
      }
      const auto indices = delivery.indices_for(id);
      HubItem item;
      item.batch = batch;
      item.indices.assign(indices.begin(), indices.end());
      item.shard = shard;
      item.first_id = batch->events.front().id;
      item.last_id = batch->events.back().id;
      sub.credits_ -= static_cast<std::int64_t>(indices.size());
      push_item(sub, std::move(item));
    }
    evict_overdue_locked();
    // Amortized min-ack forwarding: acknowledge() already forwards on
    // every consumer ack, but when no subscription's rules match (so no
    // consumer ever acks) retention would still grow with heads_. The
    // periodic forward lets idle subscribers' effective cursors (see
    // forward_acks_locked) release the stores.
    if (++frames_since_forward_ >= kIdleForwardInterval) {
      frames_since_forward_ = 0;
      forward_acks_locked();
    }
  }
}

}  // namespace fsmon::scalable
