#include "src/scalable/scalable_monitor.hpp"

#include <optional>

namespace fsmon::scalable {

using common::Status;

namespace {

/// Collector index from an event source "lustre:MDT<i>"; nullopt for
/// foreign sources (other mounts ride their own ack channels).
std::optional<std::uint32_t> mdt_of_source(std::string_view source) {
  constexpr std::string_view kPrefix = "lustre:MDT";
  if (source.size() <= kPrefix.size() || source.substr(0, kPrefix.size()) != kPrefix)
    return std::nullopt;
  std::uint32_t mdt = 0;
  for (char c : source.substr(kPrefix.size())) {
    if (c < '0' || c > '9') return std::nullopt;
    mdt = mdt * 10 + static_cast<std::uint32_t>(c - '0');
  }
  return mdt;
}

}  // namespace

ScalableMonitor::ScalableMonitor(lustre::LustreFs& fs, ScalableMonitorOptions options,
                                 common::Clock& clock)
    : fs_(fs), options_(std::move(options)), clock_(clock) {
  ShardedAggregatorOptions sharded_options;
  sharded_options.shards = options_.shards;
  sharded_options.transport = options_.transport;
  sharded_options.aggregator = options_.aggregator;
  sharded_ = std::make_unique<ShardedAggregator>(bus_, "aggregator",
                                                 std::move(sharded_options), clock_);
  for (std::uint32_t i = 0; i < fs_.mdt_count(); ++i) {
    // Collectors publish through the shard router (which owns the
    // per-shard sender connections); the per-collector sender lives on
    // the tier's transport but carries no direct receivers.
    auto sender = sharded_->transport().make_sender(
        options_.collector.topic_prefix + "collector" + std::to_string(i));
    collectors_.push_back(
        std::make_unique<Collector>(fs_, i, std::move(sender), options_.collector, clock_));
    collectors_.back()->set_router(&sharded_->router());
    fs_.mgs().register_service(
        {"collector-" + std::to_string(i), "collector", "msgq://collector" + std::to_string(i)});
  }
  fs_.mgs().register_service({"aggregator", "aggregator", "msgq://aggregator"});
  // Durable-custody acks flow back here: demux the event source
  // ("lustre:MDT<i>") to the owning collector, which clears its
  // changelog up to the acked record index.
  sharded_->set_ack_callback([this](std::string_view source, std::uint64_t index) {
    const auto mdt = mdt_of_source(source);
    if (mdt && *mdt < collectors_.size()) collectors_[*mdt]->on_persist_ack(index);
  });
  // A gap-refused frame means the collector advanced past frames the
  // shard never received (lost across a crash/reconnect window): rewind
  // it to the cleared index so the unacked suffix is re-published —
  // without this back-channel the gap would wedge the source forever.
  sharded_->set_nack_callback([this](std::string_view source, std::uint64_t) {
    const auto mdt = mdt_of_source(source);
    if (mdt && *mdt < collectors_.size()) collectors_[*mdt]->rewind_to_cleared();
  });
  if (options_.fanout_hub) {
    FlowControlOptions flow = options_.flow;
    flow.metrics = options_.aggregator.metrics;
    hub_ = std::make_unique<FanOutHub>(*sharded_, flow);
  }
}

Status ScalableMonitor::start() {
  if (running_) return Status::ok();
  if (auto s = sharded_->start(); !s.is_ok()) return s;
  if (hub_ != nullptr) {
    if (auto s = hub_->start(); !s.is_ok()) return s;
  }
  for (auto& collector : collectors_) {
    if (auto s = collector->start(); !s.is_ok()) return s;
  }
  running_ = true;
  return Status::ok();
}

void ScalableMonitor::stop() {
  if (!running_) return;
  for (auto& collector : collectors_) collector->stop();
  if (hub_ != nullptr) hub_->stop();
  sharded_->stop();
  running_ = false;
}

std::unique_ptr<Consumer> ScalableMonitor::make_consumer(std::string name,
                                                         ConsumerOptions options,
                                                         Consumer::EventCallback callback) {
  if (hub_ != nullptr && options.hub == nullptr) options.hub = hub_.get();
  auto consumer = std::make_unique<Consumer>(bus_, *sharded_, std::move(name),
                                             std::move(options), std::move(callback));
  if (running_) consumer->start();
  return consumer;
}

std::unique_ptr<Consumer> ScalableMonitor::make_consumer(std::string name,
                                                         ConsumerOptions options,
                                                         Consumer::BatchCallback callback) {
  if (hub_ != nullptr && options.hub == nullptr) options.hub = hub_.get();
  auto consumer = std::make_unique<Consumer>(bus_, *sharded_, std::move(name),
                                             std::move(options), std::move(callback));
  if (running_) consumer->start();
  return consumer;
}

std::size_t ScalableMonitor::drain_collectors_once() {
  std::size_t total = 0;
  for (auto& collector : collectors_) total += collector->drain_once();
  // Pump each aggregator shard synchronously so persistence acks are
  // generated, then apply the resulting changelog clears — the
  // deterministic equivalent of one full publish -> persist -> ack ->
  // clear cycle.
  if (!running_) {
    for (std::size_t k = 0; k < sharded_->shard_count(); ++k)
      sharded_->shard(k).drain_once();
  }
  for (auto& collector : collectors_) collector->apply_acked_clear();
  return total;
}

common::Status ScalableMonitor::restart_aggregator() {
  // Ordering matters twice here. First finish the fail-stop teardown: a
  // self-crashed shard exits its loops with the inbox still open, and a
  // collector that rewound now would replay into that doomed inbox and
  // lose the replay with the discarded backlog when it closes. Then set
  // the rewind flags BEFORE any inbox reopens: collectors suppress
  // publishing the moment the flag is set, so no stale read-ahead frame
  // can slip into a recovered shard and open a gap above its rebuilt
  // watermark.
  for (std::size_t k = 0; k < sharded_->shard_count(); ++k) {
    if (sharded_->shard(k).crashed()) sharded_->shard(k).crash();
  }
  for (auto& collector : collectors_) collector->rewind_to_cleared();
  for (std::size_t k = 0; k < sharded_->shard_count(); ++k) {
    if (auto s = sharded_->shard(k).restart(); !s.is_ok()) return s;
  }
  return Status::ok();
}

common::Status ScalableMonitor::restart_aggregator_shard(std::size_t k) {
  // Same two-phase ordering as restart_aggregator(), scoped to one
  // shard: finish its teardown, rewind exactly the collectors whose
  // source the map assigns to this shard (their unpersisted frames died
  // with it), then recover. Collectors owned by other shards keep
  // publishing throughout.
  Aggregator& shard = sharded_->shard(k);
  if (shard.crashed()) shard.crash();
  for (std::size_t i = 0; i < collectors_.size(); ++i) {
    if (sharded_->map().shard_of(collector_source(i)) == k)
      collectors_[i]->rewind_to_cleared();
  }
  return shard.restart();
}

std::uint64_t ScalableMonitor::total_records_processed() const {
  std::uint64_t total = 0;
  for (const auto& collector : collectors_) total += collector->records_processed();
  return total;
}

ScalableDsi::ScalableDsi(lustre::LustreFs& fs, ScalableMonitorOptions options,
                         common::Clock& clock)
    : monitor_(fs, std::move(options), clock) {}

Status ScalableDsi::start(EventCallback callback) {
  if (running_) return Status::ok();
  consumer_ = monitor_.make_consumer(
      "dsi-consumer", ConsumerOptions{},
      [callback = std::move(callback)](const core::StdEvent& event) { callback(event); });
  if (auto s = monitor_.start(); !s.is_ok()) return s;
  if (auto s = consumer_->start(); !s.is_ok()) return s;
  running_ = true;
  return Status::ok();
}

void ScalableDsi::stop() {
  if (!running_) return;
  monitor_.stop();
  if (consumer_ != nullptr) consumer_->stop();
  running_ = false;
}

void register_lustre_dsi(core::DsiRegistry& registry, lustre::LustreFs& fs,
                         common::Clock& clock, ScalableMonitorOptions options) {
  registry.register_dsi(
      "lustre",
      [&fs, &clock, options](const core::StorageDescriptor& descriptor)
          -> common::Result<std::unique_ptr<core::DsiBase>> {
        ScalableMonitorOptions opts = options;
        opts.collector.cache_size = static_cast<std::size_t>(
            descriptor.params.get_int("lustre.cache_size",
                                      static_cast<std::int64_t>(opts.collector.cache_size)));
        return common::Result<std::unique_ptr<core::DsiBase>>(
            std::make_unique<ScalableDsi>(fs, std::move(opts), clock));
      });
}

}  // namespace fsmon::scalable
