#include "src/scalable/shard_router.hpp"

#include "src/chaos/fault.hpp"
#include "src/common/logging.hpp"
#include "src/core/event.hpp"

namespace fsmon::scalable {

ShardRouter::ShardRouter(const ShardMap& map,
                         std::vector<std::shared_ptr<transport::Sender>> senders,
                         common::Clock& clock, obs::MetricsRegistry* metrics)
    : map_(map), clock_(clock), senders_(std::move(senders)) {
  frames_counters_.resize(senders_.size(), nullptr);
  events_counters_.resize(senders_.size(), nullptr);
  if (metrics != nullptr) {
    for (std::size_t k = 0; k < senders_.size(); ++k) {
      const obs::Labels labels{{"shard", std::to_string(k)}};
      frames_counters_[k] =
          &metrics->counter("router.frames_routed", labels,
                            "Batch frames routed to this aggregator shard", "frames");
      events_counters_[k] =
          &metrics->counter("router.events_routed", labels,
                            "Events inside frames routed to this aggregator shard",
                            "events");
    }
    refused_counter_ = &metrics->counter(
        "router.frames_refused", {},
        "Frames refused at the router (shard inbox closed, or an injected "
        "router.before_route fault) — the collector rewinds and replays",
        "frames");
    unroutable_counter_ = &metrics->counter(
        "router.frames_unroutable", {},
        "Frames whose source could not be peeked; routed to shard 0", "frames");
  }
}

RouteResult ShardRouter::route(const std::string& topic, transport::FrameRef frame) {
  // Peek the routing key out of the encoded frame without decoding
  // events: the first event's source names the stream, and the map is
  // stable, so every frame of that stream lands on the same shard.
  const auto bytes = frame.bytes();
  auto view = core::view_batch(bytes, /*verify_crc=*/false);
  std::size_t shard = 0;
  std::size_t count = 1;
  bool routable = false;
  if (view && view.value().count > 0) {
    count = view.value().count;
    const auto& [offset, length] = view.value().events[0];
    if (auto source = core::peek_event_source(bytes.subspan(offset, length))) {
      shard = map_.shard_of(source.value());
      routable = true;
    }
  }
  if (!routable) {
    FSMON_WARN("router", "frame source unreadable; routing to shard 0");
    if (unroutable_counter_ != nullptr) unroutable_counter_->inc();
  }
  RouteResult result;
  result.shard = shard;
  result.subscribers = senders_[shard]->receiver_count();
  // The injected link fault refuses the frame rather than silently
  // accepting-and-dropping it: custody has not transferred yet, so a
  // silent drop here could let a later ack clear changelog records that
  // never reached any shard. Refusal reuses the documented closed-inbox
  // path — the collector rewinds and replays the run contiguously.
  if (auto outcome = chaos::fault("router.before_route")) {
    if (outcome.action == chaos::FaultAction::kDelay) {
      clock_.sleep_for(outcome.delay);
    } else {
      refused_.fetch_add(1);
      if (refused_counter_ != nullptr) refused_counter_->inc();
      if (result.subscribers == 0) result.subscribers = 1;  // force the rewind signal
      return result;
    }
  }
  const auto sent = senders_[shard]->send(topic, std::move(frame));
  result.accepted = sent.accepted;
  if (sent.receivers > result.subscribers) result.subscribers = sent.receivers;
  if (result.accepted == 0) {
    refused_.fetch_add(1);
    if (refused_counter_ != nullptr) refused_counter_->inc();
    return result;
  }
  frames_.fetch_add(1);
  if (frames_counters_[shard] != nullptr) {
    frames_counters_[shard]->inc();
    events_counters_[shard]->inc(count);
  }
  return result;
}

}  // namespace fsmon::scalable
