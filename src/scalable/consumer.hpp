// Consumer service (paper Section IV "Consumption").
//
// Subscribes to every aggregator shard's output, filters locally ("this
// filtering of events is not done at the aggregator in order to
// alleviate potential overheads if a large number of consumers were to
// ask to monitor different files and directories"), and delivers
// matching events to the application callback. After a failure, a
// consumer resumes by replaying historic events from the shards'
// reliable stores starting at its last acknowledged vector cursor —
// one watermark per shard, since each shard assigns its own dense id
// sequence. Replay is the merged, timestamp-ordered view served by
// ShardedAggregator::events_since.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/filter.hpp"
#include "src/scalable/dedup_window.hpp"
#include "src/scalable/flow_control.hpp"
#include "src/scalable/sharded_aggregator.hpp"

namespace fsmon::scalable {

struct ConsumerOptions {
  std::size_t high_water_mark = 1 << 16;
  /// What happens when this consumer falls behind the aggregator: kBlock
  /// (lossless back-pressure, the default) or kDropNewest (a slow
  /// consumer loses events rather than stalling the publisher — it can
  /// recover them later via replay_historic, the paper's fault-tolerance
  /// path).
  common::OverflowPolicy overflow_policy = common::OverflowPolicy::kBlock;
  /// Paths/rules this consumer cares about; empty = everything.
  std::vector<core::FilterRule> rules;
  /// Acknowledge to the aggregator every N delivered events (counted
  /// across all shards).
  std::size_t ack_interval = 1024;
  /// Events fetched per merged page during replay_historic. Bounds the
  /// replay's peak memory to one page regardless of how far this
  /// consumer lags; the stores stream each page from disk.
  std::size_t replay_page = 4096;
  /// Observability registry; null = uninstrumented. Registers consumer.*
  /// and filter.* labelled consumer=<name>.
  obs::MetricsRegistry* metrics = nullptr;
  /// Fan-out hub to ride instead of a private transport receiver. Null
  /// (default) keeps the legacy topology: own receiver on every shard
  /// output, per-consumer filtering. Non-null subscribes this consumer's
  /// compiled rules into the hub's shared index: matching happens once
  /// per batch hub-side, and the hub's credit window demotes this
  /// consumer to store replay if it stops draining. Must outlive the
  /// consumer.
  FanOutHub* hub = nullptr;
  /// Manual acknowledgement: the consumer never advances the store ack
  /// cursor past what the application has declared durable via
  /// acknowledge_processed(). A stateful applier (the namespace index)
  /// needs this — an automatic ack after delivery would let the stores
  /// purge events the applier has folded but not yet checkpointed, and a
  /// crash before the checkpoint could then never replay them. Hub
  /// credits are still replenished at the ack cadence so flow control
  /// keeps working; only durability stays with the caller.
  bool manual_acks = false;
};

class Consumer {
 public:
  using EventCallback = std::function<void(const core::StdEvent&)>;
  using BatchCallback = std::function<void(const core::EventBatch&)>;

  Consumer(msgq::Bus& bus, ShardedAggregator& aggregator, std::string name,
           ConsumerOptions options, EventCallback callback);
  /// Batch-aware variant: the callback is invoked once per received
  /// batch with only the events that pass this consumer's filter. The
  /// per-event constructor is a shim over the same batched path.
  Consumer(msgq::Bus& bus, ShardedAggregator& aggregator, std::string name,
           ConsumerOptions options, BatchCallback callback);
  ~Consumer();

  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  common::Status start();
  void stop();

  /// Fail-stop this consumer: the worker exits, queued frames are lost
  /// with it, nothing further is acked. restart() recovers.
  void crash();
  /// Restart after crash(): reopen the inbox (empty — a real restart has
  /// no process memory), start the worker, and replay from the last
  /// acknowledged cursor so nothing delivered-and-acked repeats and
  /// nothing unacked is lost. Replayed and live deliveries overlapping
  /// during catch-up are collapsed by the per-source dedup window.
  common::Status restart();

  /// Replay events since `after_id` (or since the last acknowledged
  /// cursor when nullopt) from the reliable stores, through the same
  /// filter and callback. The scalar is applied to every shard's slot —
  /// exact historic semantics with one shard; with several it is chiefly
  /// useful as 0 (full rewind). Runs on the caller's thread; delivery is
  /// serialized with the live-delivery thread, so the callback is never
  /// invoked concurrently (but replayed and live batches may
  /// interleave). Passing an explicit `after_id` is an intentional
  /// rewind: the dedup window resets so the replayed range is delivered
  /// again. Returns the number of events delivered.
  common::Result<std::size_t> replay_historic(
      std::optional<common::EventId> after_id = std::nullopt);
  /// Vector-cursor variant: replay everything after `cursor`. `rewind`
  /// gives the explicit-after_id semantics above (dedup reset + bypass).
  common::Result<std::size_t> replay_historic(VectorCursor cursor, bool rewind);

  bool matches(const core::StdEvent& event) const;

  /// Manual-ack mode (ConsumerOptions::manual_acks): publish the cursor
  /// the application has made durable. The consumer acknowledges up to
  /// it (clamped to the seen watermark, never regressing) at its normal
  /// ack cadence, and restart() resumes replay from it. Safe to call
  /// from inside the delivery callback. No-op when manual_acks is off.
  void acknowledge_processed(const VectorCursor& cursor);

  std::uint64_t delivered() const { return delivered_.load(); }
  std::uint64_t filtered_out() const { return filtered_.load(); }
  /// Duplicate events suppressed by the per-source dedup window.
  std::uint64_t duplicates_suppressed() const { return duplicates_.load(); }
  /// Events lost to the high-water mark (only with kDropNewest).
  std::uint64_t dropped() const {
    return receiver_ != nullptr ? receiver_->dropped() : 0;
  }
  /// Sum of the per-shard seen watermarks — total distinct events this
  /// consumer has observed; equal to the plain last id with one shard.
  common::EventId last_seen_id() const { return last_seen_sum_.load(); }
  /// Snapshot of the per-shard seen cursor.
  VectorCursor seen_cursor() const;
  const std::string& name() const { return name_; }
  /// Hub mode only: current flow-control state of this consumer's
  /// subscription (kLive when not in hub mode).
  FlowState flow_state() const;
  /// Hub mode only: true once the hub evicted this consumer for never
  /// draining its backlog.
  bool evicted() const { return evicted_.load(); }

 private:
  Consumer(msgq::Bus& bus, ShardedAggregator& aggregator, std::string name,
           ConsumerOptions options, EventCallback callback, BatchCallback batch_callback);

  void run(std::stop_token stop);
  /// Hub-mode worker loop: pops hub items, delivers matched batches, and
  /// runs the demotion/promotion protocol on marker items.
  void run_hub(std::stop_token stop);
  /// Deliver one hub batch item: the index already matched the events,
  /// so delivery skips local filtering, guards against ids at or below
  /// the seen watermark (replay/live seam insurance), and advances the
  /// per-shard watermark to the frame's unfiltered last id so acks keep
  /// progressing across frames that matched nothing for this consumer.
  void deliver_hub_item(const HubItem& item);
  /// Demoted catch-up: page the merged store replay through this
  /// consumer's own rules until within promotion range, promote, then
  /// finish replaying to the promotion watermark (gap-free seam).
  void catch_up(std::stop_token stop);
  void replay_to_watermark(const VectorCursor& target, std::stop_token stop);
  /// All delivery (live and replay) funnels through here: per-event
  /// filtering and counters, one callback invocation per batch (or the
  /// per-event shim), one ack check per batch. Serialized by
  /// `deliver_mu_` so the callback sees at most one thread at a time
  /// even when replay_historic runs concurrently with the worker.
  /// With `dedup_filter` false the batch bypasses the duplicate filter
  /// (an intentional rewind) but still marks the window, so subsequent
  /// live duplicates of the replayed range are suppressed. With
  /// `already_filtered` true the events were matched by the shared index
  /// and local rule evaluation (and its counters) is skipped.
  void deliver_batch(const core::EventBatch& batch, bool dedup_filter = true,
                     bool already_filtered = false);
  /// Ack-interval check; caller holds deliver_mu_. Routes the cursor to
  /// the hub (min-ack + credit replenish) or straight to the aggregator.
  void maybe_ack_locked();

  msgq::Bus& bus_;
  ShardedAggregator& aggregator_;
  std::string name_;
  ConsumerOptions options_;
  EventCallback callback_;
  BatchCallback batch_callback_;
  /// Receiving endpoint on the aggregator tier's transport: every shard's
  /// output sender connects here, whatever carries the frames.
  std::shared_ptr<transport::Receiver> receiver_;
  mutable std::mutex deliver_mu_;  ///< Serializes live and replay deliveries.
  /// Thread currently inside deliver_batch (holding deliver_mu_ across
  /// the application callback), or a default id. Lets
  /// acknowledge_processed() detect reentry from the callback — a
  /// try_lock on a std::mutex the calling thread already owns is UB.
  std::atomic<std::thread::id> deliver_owner_{};
  std::map<std::string, SourceDedupWindow> dedup_;  ///< Guarded by deliver_mu_.
  VectorCursor seen_;   ///< Per-shard last seen ids. Guarded by deliver_mu_.
  VectorCursor acked_;  ///< Per-shard last acked ids. Guarded by deliver_mu_.
  /// Manual-ack mode: the durable cursor published by the application.
  /// Own mutex so acknowledge_processed() can be called from inside the
  /// delivery callback (which already holds deliver_mu_).
  mutable std::mutex ack_floor_mu_;
  VectorCursor ack_floor_;
  bool ack_floor_dirty_ = false;  ///< Guarded by ack_floor_mu_.
  std::jthread worker_;
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> filtered_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> last_seen_sum_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> evicted_{false};
  core::FilterMetrics filter_metrics_;  ///< Zeroed when uninstrumented.
  /// Rules compiled once at subscription: pre-normalized roots, kind
  /// masks, counters bound (no per-event labelled-metric lookups).
  core::CompiledRuleSet compiled_;
  /// Hub subscription handle (hub mode only).
  std::shared_ptr<FanOutHub::Subscription> hub_sub_;
  /// Hub-delivered events processed since the last ack — replenishes the
  /// credit window at ack time. Guarded by deliver_mu_.
  std::uint64_t hub_processed_since_ack_ = 0;
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* replayed_counter_ = nullptr;
  obs::Gauge* delivery_lag_gauge_ = nullptr;
  obs::Gauge* overflow_dropped_gauge_ = nullptr;
  obs::HistogramMetric* batch_size_hist_ = nullptr;
};

}  // namespace fsmon::scalable
