// Changelog event processing — the paper's Algorithm 1.
//
// Each changelog record's FIDs must be resolved to absolute paths before
// the event can be published. Resolution goes through a per-collector
// LRU cache over fid2path (Section IV "Processing"):
//
//  - The target FID is looked up in the cache, then via fid2path, and
//    the mapping is cached.
//  - UNLNK / RMDIR: the target is already gone, so fid2path on it fails;
//    the parent FID is resolved instead and the record's name appended.
//    If the parent also fails, the event is reported as
//    "ParentDirectoryRemoved" (Algorithm 1 lines 20-26, 40-42).
//  - RENME: the old (sp=) and new (s=) FIDs are both resolved
//    (lines 27-38), yielding a MOVED_FROM / MOVED_TO pair.
//
// Two pragmatic extensions over the paper's pseudocode, required for
// correctness under backlog (records processed after their subject was
// deleted) and documented in DESIGN.md:
//  1. Namespace-creating records (CREAT/MKDIR/HLINK/SLINK/MKNOD) resolve
//     the parent and construct "parent/name", seeding the cache with the
//     target mapping — no fid2path on a FID that may already be gone.
//  2. Any record whose target resolution fails falls back to its parent
//     FID + name when the record carries one, not only deletes.
//
// The processor runs in one of two modes per record:
//  - kSerial (default): the historical single-threaded path — cache
//    lookups are unversioned and UNLNK/RMDIR erase their target mapping
//    after resolving it.
//  - kConcurrent: the record is being processed on a resolver-pool
//    worker. Cache accesses use the record index as a sequence number
//    (see FidPathCache), misses coalesce through the cache's
//    single-flight table, and deletes do NOT erase here — the collector
//    already applied the invalidation at the record's ordered position.
//    Stats counters are atomic, so concurrent workers may share one
//    processor.
//
// The processor also accounts the modeled latency and CPU cost of each
// record so the discrete-event benchmarks charge the right stations.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/core/event.hpp"
#include "src/lustre/changelog.hpp"
#include "src/lustre/fid_resolver.hpp"
#include "src/obs/metrics.hpp"
#include "src/scalable/fid_cache.hpp"

namespace fsmon::scalable {

/// Per-record cost parameters (from the testbed profile).
struct ProcessorCosts {
  common::Duration base_latency{};  ///< Parse + queue + publish prep.
  common::Duration base_cpu{};
  common::Duration fid2path_cpu{};  ///< CPU share of one fid2path call
                                    ///< (latency comes from the resolver).
  common::Duration cache_lookup_coeff{};  ///< Latency per log2(cache size) per lookup.
};

struct ProcessorStats {
  std::uint64_t records = 0;
  std::uint64_t fid2path_calls = 0;
  std::uint64_t fid2path_failures = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t parent_fallbacks = 0;
  std::uint64_t unresolved = 0;  ///< ParentDirectoryRemoved / no-path events.
  std::uint64_t coalesced = 0;   ///< Misses served by another worker's in-flight fid2path.
};

class EventProcessor {
 public:
  using FidCache = FidPathCache;

  enum class ResolveMode {
    kSerial,      ///< Single-threaded Algorithm 1 (erase-on-delete).
    kConcurrent,  ///< Resolver-pool worker (versioned cache + single-flight).
  };

  /// `cache` may be null (the paper's "without cache" configuration).
  EventProcessor(lustre::FidResolver& resolver, FidCache* cache, ProcessorCosts costs,
                 std::string source);

  struct Output {
    std::vector<core::StdEvent> events;  ///< 1 event, or 2 for RENME.
    common::Duration latency{};          ///< Serial pipeline occupancy.
    common::Duration cpu{};              ///< CPU charged to the collector.
  };

  /// Process one record (Algorithm 1).
  Output process(const lustre::ChangelogRecord& record,
                 ResolveMode mode = ResolveMode::kSerial);

  /// Relaxed snapshot of the counters (exact between batches; a worker
  /// mid-record may not have bumped every field yet).
  ProcessorStats stats() const;
  void reset_stats();

  /// Register fid2path-cache effectiveness metrics (hits/misses/
  /// evictions, current size, shard layout) — the Table VI/VIII numbers.
  void attach_metrics(obs::MetricsRegistry& registry, obs::Labels labels);

  /// Push cache eviction/size gauges to the registry. Serial mode does
  /// this once per record; in concurrent mode the collector calls it once
  /// per batch from its own thread (the delta bookkeeping is not
  /// worker-safe and doesn't need to be).
  void publish_cache_metrics() { sync_cache_metrics(); }

  /// Estimated cache memory footprint in entries (for the memory model).
  std::size_t cache_entries() const { return cache_ == nullptr ? 0 : cache_->size(); }

 private:
  struct Lookup {
    bool ok = false;
    PathPtr path;
  };

  /// Resolution context: mode plus the record's changelog index, which is
  /// the sequence number for versioned cache accesses.
  struct Ctx {
    ResolveMode mode;
    std::uint64_t seq;
  };

  /// Cache -> fid2path -> cache.set; charges costs to `out`.
  Lookup resolve_fid(const lustre::Fid& fid, const Ctx& ctx, Output& out);
  /// Cache lookup only (no fid2path); charges lookup cost.
  Lookup cache_only(const lustre::Fid& fid, const Ctx& ctx, Output& out);
  /// Mode-aware cache insert (seeding and post-resolve puts).
  void cache_put(const lustre::Fid& fid, PathPtr path, const Ctx& ctx, Output& out);
  void charge_lookup(Output& out);

  static core::EventKind kind_of(lustre::ChangelogType type);
  static bool is_dir_event(lustre::ChangelogType type);

  /// Push cache eviction/size deltas to the registry after puts.
  void sync_cache_metrics();

  lustre::FidResolver& resolver_;
  FidCache* cache_;
  ProcessorCosts costs_;
  std::string source_;
  common::Duration lookup_cost_{};
  struct AtomicStats {
    std::atomic<std::uint64_t> records{0};
    std::atomic<std::uint64_t> fid2path_calls{0};
    std::atomic<std::uint64_t> fid2path_failures{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
    std::atomic<std::uint64_t> parent_fallbacks{0};
    std::atomic<std::uint64_t> unresolved{0};
    std::atomic<std::uint64_t> coalesced{0};
  };
  AtomicStats stats_;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
  obs::Counter* coalesced_counter_ = nullptr;
  obs::Gauge* size_gauge_ = nullptr;
  obs::Gauge* shards_gauge_ = nullptr;
  obs::Gauge* shard_size_gauge_ = nullptr;
  std::uint64_t reported_evictions_ = 0;
};

}  // namespace fsmon::scalable
