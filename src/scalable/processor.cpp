#include "src/scalable/processor.hpp"

#include <cmath>

#include "src/common/string_util.hpp"

namespace fsmon::scalable {

using core::EventKind;
using core::StdEvent;
using lustre::ChangelogRecord;
using lustre::ChangelogType;
using lustre::Fid;

EventProcessor::EventProcessor(lustre::FidResolver& resolver, FidCache* cache,
                               ProcessorCosts costs, std::string source)
    : resolver_(resolver), cache_(cache), costs_(costs), source_(std::move(source)) {
  if (cache_ != nullptr) {
    // Hash-table probe cost grows gently with capacity (memory pressure /
    // cache locality) — this is what makes over-sized caches slightly
    // slower (the paper's Table VIII dip past 5000 entries).
    const double bits = std::log2(static_cast<double>(cache_->capacity()) + 1.0);
    lookup_cost_ = common::Duration{static_cast<std::int64_t>(
        static_cast<double>(costs_.cache_lookup_coeff.count()) * bits)};
  }
}

void EventProcessor::attach_metrics(obs::MetricsRegistry& registry, obs::Labels labels) {
  hits_counter_ = &registry.counter("fidcache.hits", labels,
                                    "fid2path cache hits (Algorithm 1 fast path)", "lookups");
  misses_counter_ = &registry.counter("fidcache.misses", labels,
                                      "fid2path cache misses (fall through to fid2path)",
                                      "lookups");
  evictions_counter_ = &registry.counter("fidcache.evictions", labels,
                                         "LRU entries evicted at capacity", "entries");
  size_gauge_ = &registry.gauge("fidcache.size", std::move(labels),
                                "Entries currently cached", "entries");
  reported_evictions_ = cache_ == nullptr ? 0 : cache_->stats().evictions;
}

void EventProcessor::sync_cache_metrics() {
  if (cache_ == nullptr || size_gauge_ == nullptr) return;
  size_gauge_->set(static_cast<std::int64_t>(cache_->size()));
  const std::uint64_t evictions = cache_->stats().evictions;
  if (evictions > reported_evictions_) {
    evictions_counter_->inc(evictions - reported_evictions_);
    reported_evictions_ = evictions;
  }
}

void EventProcessor::charge_lookup(Output& out) {
  out.latency += lookup_cost_;
  out.cpu += lookup_cost_;  // hash probing is pure CPU
}

EventProcessor::Lookup EventProcessor::cache_only(const Fid& fid, Output& out) {
  if (cache_ == nullptr) return {};
  charge_lookup(out);
  if (auto hit = cache_->get(fid)) {
    ++stats_.cache_hits;
    if (hits_counter_ != nullptr) hits_counter_->inc();
    return {true, *hit};
  }
  ++stats_.cache_misses;
  if (misses_counter_ != nullptr) misses_counter_->inc();
  return {};
}

EventProcessor::Lookup EventProcessor::resolve_fid(const Fid& fid, Output& out) {
  if (auto cached = cache_only(fid, out); cached.ok) return cached;
  auto outcome = resolver_.resolve(fid);
  ++stats_.fid2path_calls;
  out.latency += outcome.cost;
  out.cpu += costs_.fid2path_cpu;
  if (!outcome.path.is_ok()) {
    ++stats_.fid2path_failures;
    return {};
  }
  if (cache_ != nullptr) {
    cache_->put(fid, outcome.path.value());
    charge_lookup(out);
  }
  return {true, outcome.path.value()};
}

EventKind EventProcessor::kind_of(ChangelogType type) {
  switch (type) {
    case ChangelogType::kCreat:
    case ChangelogType::kMkdir:
    case ChangelogType::kHlink:
    case ChangelogType::kSlink:
    case ChangelogType::kMknod: return EventKind::kCreate;
    case ChangelogType::kMtime:
    case ChangelogType::kTrunc: return EventKind::kModify;
    case ChangelogType::kUnlnk:
    case ChangelogType::kRmdir: return EventKind::kDelete;
    case ChangelogType::kSattr:
    case ChangelogType::kXattr:
    case ChangelogType::kIoctl: return EventKind::kAttrib;
    case ChangelogType::kClose: return EventKind::kClose;
    case ChangelogType::kRenme:
    case ChangelogType::kRnmto: return EventKind::kMovedFrom;
    case ChangelogType::kMark: return EventKind::kAttrib;
  }
  return EventKind::kModify;
}

bool EventProcessor::is_dir_event(ChangelogType type) {
  return type == ChangelogType::kMkdir || type == ChangelogType::kRmdir;
}

EventProcessor::Output EventProcessor::process(const ChangelogRecord& record) {
  Output out;
  out.latency += costs_.base_latency;
  out.cpu += costs_.base_cpu;
  ++stats_.records;
  // Eviction/size deltas from the previous record's puts; one sync per
  // record keeps the hot path at two atomics.
  sync_cache_metrics();

  auto make_event = [&](EventKind kind, std::string path) {
    StdEvent event;
    event.kind = kind;
    event.is_dir = is_dir_event(record.type);
    event.path = std::move(path);
    event.timestamp = record.timestamp;
    event.cookie = record.index;
    event.source = source_;
    return event;
  };

  const bool creates_namespace_entry =
      record.type == ChangelogType::kCreat || record.type == ChangelogType::kMkdir ||
      record.type == ChangelogType::kHlink || record.type == ChangelogType::kSlink ||
      record.type == ChangelogType::kMknod;

  if (record.type == ChangelogType::kRenme) {
    // Algorithm 1 lines 27-38: resolve the old (sp=) and new (s=) FIDs.
    const Fid old_fid = record.rename_old.value_or(record.target);
    const Fid new_fid = record.rename_new.value_or(record.target);

    std::string old_path;
    if (auto o = resolve_fid(old_fid, out); o.ok) {
      old_path = std::move(o.path);
    } else if (record.parent) {
      // Old FID is gone (the rename re-keyed it): reconstruct from the
      // record's parent + old name.
      ++stats_.parent_fallbacks;
      if (auto p = resolve_fid(*record.parent, out); p.ok) {
        old_path = p.path == "/" ? "/" + record.name : p.path + "/" + record.name;
      }
    }
    std::string new_path;
    if (auto n = resolve_fid(new_fid, out); n.ok) {
      new_path = std::move(n.path);
    } else if (record.parent && !record.rename_target_name.empty()) {
      ++stats_.parent_fallbacks;
      if (auto p = resolve_fid(*record.parent, out); p.ok) {
        new_path = p.path == "/" ? "/" + record.rename_target_name
                                 : p.path + "/" + record.rename_target_name;
        if (cache_ != nullptr) {
          cache_->put(new_fid, new_path);
          charge_lookup(out);
        }
      }
    }
    if (old_path.empty() && new_path.empty()) {
      ++stats_.unresolved;
      out.events.push_back(
          make_event(EventKind::kMovedFrom, std::string(core::kParentDirectoryRemoved)));
      return out;
    }
    if (old_path.empty()) old_path = new_path;
    if (new_path.empty()) new_path = old_path;
    out.events.push_back(make_event(EventKind::kMovedFrom, std::move(old_path)));
    out.events.push_back(make_event(EventKind::kMovedTo, std::move(new_path)));
    return out;
  }

  if (creates_namespace_entry && record.parent) {
    // Extension 1: parent-first construction; seeds the target mapping so
    // the following MTIME/CLOSE/UNLNK on this FID hit the cache.
    if (auto p = resolve_fid(*record.parent, out); p.ok) {
      std::string path =
          p.path == "/" ? "/" + record.name : p.path + "/" + record.name;
      if (cache_ != nullptr) {
        cache_->put(record.target, path);
        charge_lookup(out);
      }
      out.events.push_back(make_event(kind_of(record.type), std::move(path)));
      return out;
    }
    ++stats_.unresolved;
    out.events.push_back(
        make_event(kind_of(record.type), std::string(core::kParentDirectoryRemoved)));
    return out;
  }

  // Algorithm 1 line 13: target-first.
  if (auto t = resolve_fid(record.target, out); t.ok) {
    if (record.type == ChangelogType::kUnlnk || record.type == ChangelogType::kRmdir) {
      // The subject is gone; drop the stale mapping to free cache space.
      if (cache_ != nullptr) cache_->erase(record.target);
    }
    out.events.push_back(make_event(kind_of(record.type), std::move(t.path)));
    return out;
  }

  // Target resolution failed. Lines 20-26 (generalized, extension 2):
  // fall back to the parent FID + record name.
  if (record.parent) {
    ++stats_.parent_fallbacks;
    if (auto p = resolve_fid(*record.parent, out); p.ok) {
      std::string path = p.path == "/" ? "/" + record.name : p.path + "/" + record.name;
      out.events.push_back(make_event(kind_of(record.type), std::move(path)));
      return out;
    }
  }

  // Lines 40-42: parent gone as well.
  ++stats_.unresolved;
  out.events.push_back(
      make_event(kind_of(record.type), std::string(core::kParentDirectoryRemoved)));
  return out;
}

}  // namespace fsmon::scalable
