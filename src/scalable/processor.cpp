#include "src/scalable/processor.hpp"

#include <cmath>

#include "src/common/string_util.hpp"

namespace fsmon::scalable {

using core::EventKind;
using core::StdEvent;
using lustre::ChangelogRecord;
using lustre::ChangelogType;
using lustre::Fid;

EventProcessor::EventProcessor(lustre::FidResolver& resolver, FidCache* cache,
                               ProcessorCosts costs, std::string source)
    : resolver_(resolver), cache_(cache), costs_(costs), source_(std::move(source)) {
  if (cache_ != nullptr) {
    // Hash-table probe cost grows gently with capacity (memory pressure /
    // cache locality) — this is what makes over-sized caches slightly
    // slower (the paper's Table VIII dip past 5000 entries).
    const double bits = std::log2(static_cast<double>(cache_->capacity()) + 1.0);
    lookup_cost_ = common::Duration{static_cast<std::int64_t>(
        static_cast<double>(costs_.cache_lookup_coeff.count()) * bits)};
  }
}

ProcessorStats EventProcessor::stats() const {
  ProcessorStats s;
  s.records = stats_.records.load(std::memory_order_relaxed);
  s.fid2path_calls = stats_.fid2path_calls.load(std::memory_order_relaxed);
  s.fid2path_failures = stats_.fid2path_failures.load(std::memory_order_relaxed);
  s.cache_hits = stats_.cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = stats_.cache_misses.load(std::memory_order_relaxed);
  s.parent_fallbacks = stats_.parent_fallbacks.load(std::memory_order_relaxed);
  s.unresolved = stats_.unresolved.load(std::memory_order_relaxed);
  s.coalesced = stats_.coalesced.load(std::memory_order_relaxed);
  return s;
}

void EventProcessor::reset_stats() {
  stats_.records.store(0, std::memory_order_relaxed);
  stats_.fid2path_calls.store(0, std::memory_order_relaxed);
  stats_.fid2path_failures.store(0, std::memory_order_relaxed);
  stats_.cache_hits.store(0, std::memory_order_relaxed);
  stats_.cache_misses.store(0, std::memory_order_relaxed);
  stats_.parent_fallbacks.store(0, std::memory_order_relaxed);
  stats_.unresolved.store(0, std::memory_order_relaxed);
  stats_.coalesced.store(0, std::memory_order_relaxed);
}

void EventProcessor::attach_metrics(obs::MetricsRegistry& registry, obs::Labels labels) {
  hits_counter_ = &registry.counter("fidcache.hits", labels,
                                    "fid2path cache hits (Algorithm 1 fast path)", "lookups");
  misses_counter_ = &registry.counter("fidcache.misses", labels,
                                      "fid2path cache misses (fall through to fid2path)",
                                      "lookups");
  evictions_counter_ = &registry.counter("fidcache.evictions", labels,
                                         "LRU entries evicted at capacity", "entries");
  coalesced_counter_ = &registry.counter(
      "fid2path.coalesced", labels,
      "Concurrent cache misses served by another worker's in-flight fid2path "
      "(single-flight)",
      "lookups");
  size_gauge_ = &registry.gauge("fidcache.size", labels,
                                "Entries currently cached", "entries");
  shards_gauge_ = &registry.gauge("fidcache.shards", labels,
                                  "Independently-locked shards in the fid2path cache",
                                  "shards");
  shard_size_gauge_ = &registry.gauge("fidcache.shard_size_max", std::move(labels),
                                      "Entries in the fullest cache shard", "entries");
  if (cache_ != nullptr) {
    reported_evictions_ = cache_->stats().evictions;
    shards_gauge_->set(static_cast<std::int64_t>(cache_->shard_count()));
  }
}

void EventProcessor::sync_cache_metrics() {
  if (cache_ == nullptr || size_gauge_ == nullptr) return;
  size_gauge_->set(static_cast<std::int64_t>(cache_->size()));
  shard_size_gauge_->set(static_cast<std::int64_t>(cache_->max_shard_size()));
  const std::uint64_t evictions = cache_->stats().evictions;
  if (evictions > reported_evictions_) {
    evictions_counter_->inc(evictions - reported_evictions_);
    reported_evictions_ = evictions;
  }
}

void EventProcessor::charge_lookup(Output& out) {
  out.latency += lookup_cost_;
  out.cpu += lookup_cost_;  // hash probing is pure CPU
}

EventProcessor::Lookup EventProcessor::cache_only(const Fid& fid, const Ctx& ctx,
                                                  Output& out) {
  if (cache_ == nullptr) return {};
  charge_lookup(out);
  PathPtr hit = ctx.mode == ResolveMode::kConcurrent ? cache_->get(fid, ctx.seq)
                                                     : cache_->get(fid);
  if (hit != nullptr) {
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    if (hits_counter_ != nullptr) hits_counter_->inc();
    return {true, std::move(hit)};
  }
  stats_.cache_misses.fetch_add(1, std::memory_order_relaxed);
  if (misses_counter_ != nullptr) misses_counter_->inc();
  return {};
}

void EventProcessor::cache_put(const Fid& fid, PathPtr path, const Ctx& ctx, Output& out) {
  if (cache_ == nullptr) return;
  if (ctx.mode == ResolveMode::kConcurrent)
    cache_->put(fid, std::move(path), ctx.seq);
  else
    cache_->put(fid, std::move(path));
  charge_lookup(out);
}

EventProcessor::Lookup EventProcessor::resolve_fid(const Fid& fid, const Ctx& ctx,
                                                   Output& out) {
  if (auto cached = cache_only(fid, ctx, out); cached.ok) return cached;

  if (ctx.mode == ResolveMode::kConcurrent && cache_ != nullptr) {
    // Coalesce concurrent misses on the same FID into one fid2path call;
    // latecomers share the leader's outcome (and its failure).
    auto flight = cache_->flight().run(fid, [&] {
      auto outcome = resolver_.resolve(fid);
      FlightResult result;
      result.cost = outcome.cost;
      if (outcome.path.is_ok())
        result.path = std::make_shared<const std::string>(std::move(outcome.path.value()));
      return result;
    });
    if (flight.leader) {
      stats_.fid2path_calls.fetch_add(1, std::memory_order_relaxed);
      out.latency += flight.value.cost;
      out.cpu += costs_.fid2path_cpu;
      if (flight.value.path == nullptr) {
        stats_.fid2path_failures.fetch_add(1, std::memory_order_relaxed);
        return {};
      }
    } else {
      // The wait overlapped the leader's call: charge no modeled latency.
      stats_.coalesced.fetch_add(1, std::memory_order_relaxed);
      if (coalesced_counter_ != nullptr) coalesced_counter_->inc();
      if (flight.value.path == nullptr) return {};
    }
    cache_put(fid, flight.value.path, ctx, out);
    return {true, flight.value.path};
  }

  auto outcome = resolver_.resolve(fid);
  stats_.fid2path_calls.fetch_add(1, std::memory_order_relaxed);
  out.latency += outcome.cost;
  out.cpu += costs_.fid2path_cpu;
  if (!outcome.path.is_ok()) {
    stats_.fid2path_failures.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  auto path = std::make_shared<const std::string>(std::move(outcome.path.value()));
  if (cache_ != nullptr) cache_put(fid, path, ctx, out);
  return {true, std::move(path)};
}

EventKind EventProcessor::kind_of(ChangelogType type) {
  switch (type) {
    case ChangelogType::kCreat:
    case ChangelogType::kMkdir:
    case ChangelogType::kHlink:
    case ChangelogType::kSlink:
    case ChangelogType::kMknod: return EventKind::kCreate;
    case ChangelogType::kMtime:
    case ChangelogType::kTrunc: return EventKind::kModify;
    case ChangelogType::kUnlnk:
    case ChangelogType::kRmdir: return EventKind::kDelete;
    case ChangelogType::kSattr:
    case ChangelogType::kXattr:
    case ChangelogType::kIoctl: return EventKind::kAttrib;
    case ChangelogType::kClose: return EventKind::kClose;
    case ChangelogType::kRenme:
    case ChangelogType::kRnmto: return EventKind::kMovedFrom;
    case ChangelogType::kMark: return EventKind::kAttrib;
  }
  return EventKind::kModify;
}

bool EventProcessor::is_dir_event(ChangelogType type) {
  return type == ChangelogType::kMkdir || type == ChangelogType::kRmdir;
}

EventProcessor::Output EventProcessor::process(const ChangelogRecord& record,
                                               ResolveMode mode) {
  const Ctx ctx{mode, record.index};
  Output out;
  out.latency += costs_.base_latency;
  out.cpu += costs_.base_cpu;
  stats_.records.fetch_add(1, std::memory_order_relaxed);
  // Eviction/size deltas from the previous record's puts; one sync per
  // record keeps the hot path at two atomics. Concurrent mode defers to
  // the collector's per-batch publish_cache_metrics() — the delta
  // bookkeeping below is intentionally not worker-safe.
  if (mode == ResolveMode::kSerial) sync_cache_metrics();

  auto make_event = [&](EventKind kind, std::string path) {
    StdEvent event;
    event.kind = kind;
    event.is_dir = is_dir_event(record.type);
    event.path = std::move(path);
    event.timestamp = record.timestamp;
    event.cookie = record.index;
    event.source = source_;
    return event;
  };

  auto join = [](const std::string& parent, const std::string& name) {
    return parent == "/" ? "/" + name : parent + "/" + name;
  };

  const bool creates_namespace_entry =
      record.type == ChangelogType::kCreat || record.type == ChangelogType::kMkdir ||
      record.type == ChangelogType::kHlink || record.type == ChangelogType::kSlink ||
      record.type == ChangelogType::kMknod;

  if (record.type == ChangelogType::kRenme) {
    // Algorithm 1 lines 27-38: resolve the old (sp=) and new (s=) FIDs.
    const Fid old_fid = record.rename_old.value_or(record.target);
    const Fid new_fid = record.rename_new.value_or(record.target);

    std::string old_path;
    if (auto o = resolve_fid(old_fid, ctx, out); o.ok) {
      old_path = *o.path;
    } else if (record.parent) {
      // Old FID is gone (the rename re-keyed it): reconstruct from the
      // record's parent + old name.
      stats_.parent_fallbacks.fetch_add(1, std::memory_order_relaxed);
      if (auto p = resolve_fid(*record.parent, ctx, out); p.ok)
        old_path = join(*p.path, record.name);
    }
    // The rename relocated (or re-keyed) the subject, so any cached
    // mapping for the surviving FID names the OLD location — correct for
    // the MOVED_FROM half above, stale for the MOVED_TO half. Drop it so
    // the new path resolves against the post-rename namespace (directory
    // renames keep their FID and would otherwise stay stale forever).
    // Concurrent mode skips this: the collector already applied the
    // invalidation at the record's ordered position.
    if (mode == ResolveMode::kSerial && cache_ != nullptr) cache_->erase(new_fid);
    std::string new_path;
    if (auto n = resolve_fid(new_fid, ctx, out); n.ok) {
      new_path = *n.path;
    } else if (record.parent && !record.rename_target_name.empty()) {
      stats_.parent_fallbacks.fetch_add(1, std::memory_order_relaxed);
      if (auto p = resolve_fid(*record.parent, ctx, out); p.ok) {
        new_path = join(*p.path, record.rename_target_name);
        cache_put(new_fid, std::make_shared<const std::string>(new_path), ctx, out);
      }
    }
    if (old_path.empty() && new_path.empty()) {
      stats_.unresolved.fetch_add(1, std::memory_order_relaxed);
      out.events.push_back(
          make_event(EventKind::kMovedFrom, std::string(core::kParentDirectoryRemoved)));
      return out;
    }
    if (old_path.empty()) old_path = new_path;
    if (new_path.empty()) new_path = old_path;
    out.events.push_back(make_event(EventKind::kMovedFrom, std::move(old_path)));
    out.events.push_back(make_event(EventKind::kMovedTo, std::move(new_path)));
    return out;
  }

  if (creates_namespace_entry && record.parent) {
    // Extension 1: parent-first construction; seeds the target mapping so
    // the following MTIME/CLOSE/UNLNK on this FID hit the cache.
    if (auto p = resolve_fid(*record.parent, ctx, out); p.ok) {
      auto path = std::make_shared<const std::string>(join(*p.path, record.name));
      cache_put(record.target, path, ctx, out);
      out.events.push_back(make_event(kind_of(record.type), *path));
      return out;
    }
    stats_.unresolved.fetch_add(1, std::memory_order_relaxed);
    out.events.push_back(
        make_event(kind_of(record.type), std::string(core::kParentDirectoryRemoved)));
    return out;
  }

  // Algorithm 1 line 13: target-first.
  if (auto t = resolve_fid(record.target, ctx, out); t.ok) {
    if (record.type == ChangelogType::kUnlnk || record.type == ChangelogType::kRmdir) {
      // The subject is gone; drop the stale mapping to free cache space.
      // Concurrent mode skips this: the collector already applied the
      // invalidation at the record's ordered position.
      if (mode == ResolveMode::kSerial && cache_ != nullptr) cache_->erase(record.target);
    }
    out.events.push_back(make_event(kind_of(record.type), *t.path));
    return out;
  }

  // Target resolution failed. Lines 20-26 (generalized, extension 2):
  // fall back to the parent FID + record name.
  if (record.parent) {
    stats_.parent_fallbacks.fetch_add(1, std::memory_order_relaxed);
    if (auto p = resolve_fid(*record.parent, ctx, out); p.ok) {
      out.events.push_back(make_event(kind_of(record.type), join(*p.path, record.name)));
      return out;
    }
  }

  // Lines 40-42: parent gone as well.
  stats_.unresolved.fetch_add(1, std::memory_order_relaxed);
  out.events.push_back(
      make_event(kind_of(record.type), std::string(core::kParentDirectoryRemoved)));
  return out;
}

}  // namespace fsmon::scalable
