// Exactly-once delivery window, keyed by per-source changelog sequence.
//
// The Lustre processor stamps each event's cookie with its changelog
// record index, so (source, cookie) identifies a record across replays
// and aggregator restarts — event ids do NOT survive an aggregator
// crash (unacked records are re-published and renumbered), which is why
// consumers dedup on the changelog sequence instead. `watermark` covers
// a densely delivered prefix; `beyond` holds delivered sequences above
// it, because replayed and live frames interleave out of order during
// catch-up. Not thread-safe; callers serialize access.
#pragma once

#include <cstdint>
#include <set>

namespace fsmon::scalable {

struct SourceDedupWindow {
  std::uint64_t watermark = 0;
  bool initialized = false;
  std::set<std::uint64_t> beyond;

  bool fresh(std::uint64_t seq) const {
    if (!initialized) return true;
    return seq > watermark && beyond.count(seq) == 0;
  }

  void mark(std::uint64_t seq) {
    if (!initialized) {
      // First record from this source: everything before it is outside
      // this consumer's lifetime.
      initialized = true;
      watermark = seq;
      return;
    }
    if (seq <= watermark) return;
    if (seq == watermark + 1) {
      watermark = seq;
      auto it = beyond.begin();
      while (it != beyond.end() && *it == watermark + 1) {
        watermark = *it;
        it = beyond.erase(it);
      }
    } else {
      beyond.insert(seq);
    }
  }
};

}  // namespace fsmon::scalable
