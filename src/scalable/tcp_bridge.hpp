// Cross-host deployment of the scalable monitor.
//
// In the paper's deployment the collectors run on MDS nodes, the
// aggregator on the MGS, and consumers on Lustre clients — separate
// hosts connected by ZeroMQ. This module provides the equivalent wiring
// for this library's pipeline using the msgq TCP transport:
//
//   AggregatorTcpBridge  — attaches to an Aggregator and re-publishes
//                          every aggregated event frame on a TCP port.
//   RemoteConsumer       — runs on another host (or process): connects
//                          to the bridge, filters locally (the paper's
//                          consumer-side filtering), and delivers events
//                          to a callback, with the same counters as the
//                          in-process Consumer.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/filter.hpp"
#include "src/msgq/tcp.hpp"
#include "src/scalable/aggregator.hpp"

namespace fsmon::scalable {

class AggregatorTcpBridge {
 public:
  AggregatorTcpBridge(Aggregator& aggregator, msgq::Bus& bus);
  ~AggregatorTcpBridge();

  AggregatorTcpBridge(const AggregatorTcpBridge&) = delete;
  AggregatorTcpBridge& operator=(const AggregatorTcpBridge&) = delete;

  /// Listen on 127.0.0.1:`port` (0 = ephemeral) and start forwarding.
  common::Status start(std::uint16_t port = 0);
  void stop();

  std::uint16_t port() const { return tcp_.port(); }
  /// Events (not frames) forwarded over TCP.
  std::uint64_t forwarded() const { return forwarded_.load(); }

 private:
  void pump_loop(std::stop_token stop);

  Aggregator& aggregator_;
  std::shared_ptr<msgq::Subscriber> tap_;  ///< Local tap on the aggregator output.
  msgq::TcpPublisher tcp_;
  std::jthread pump_;
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<bool> running_{false};
};

struct RemoteConsumerOptions {
  std::vector<core::FilterRule> rules;  ///< Empty = everything.
  std::size_t high_water_mark = 1 << 16;
  std::string topic = "fsmon/events";
};

class RemoteConsumer {
 public:
  using EventCallback = std::function<void(const core::StdEvent&)>;
  using BatchCallback = std::function<void(const core::EventBatch&)>;

  RemoteConsumer(RemoteConsumerOptions options, EventCallback callback)
      : options_(std::move(options)),
        callback_(std::move(callback)),
        subscriber_(options_.high_water_mark) {}
  /// Batch-aware variant (mirrors Consumer): invoked once per received
  /// batch with only the matching events.
  RemoteConsumer(RemoteConsumerOptions options, BatchCallback callback)
      : options_(std::move(options)),
        batch_callback_(std::move(callback)),
        subscriber_(options_.high_water_mark) {}
  ~RemoteConsumer();

  common::Status connect(const std::string& host, std::uint16_t port);
  void stop();

  bool matches(const core::StdEvent& event) const;

  std::uint64_t delivered() const { return delivered_.load(); }
  std::uint64_t filtered_out() const { return filtered_.load(); }
  common::EventId last_seen_id() const { return last_seen_.load(); }

 private:
  void run(std::stop_token stop);

  RemoteConsumerOptions options_;
  EventCallback callback_;
  BatchCallback batch_callback_;
  msgq::TcpSubscriber subscriber_;
  std::jthread worker_;
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> filtered_{0};
  std::atomic<common::EventId> last_seen_{0};
};

}  // namespace fsmon::scalable
