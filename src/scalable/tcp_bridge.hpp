// Cross-host deployment of the scalable monitor.
//
// In the paper's deployment the collectors run on MDS nodes, the
// aggregator on the MGS, and consumers on Lustre clients — separate
// hosts connected by ZeroMQ. This module provides the equivalent wiring
// for this library's pipeline using the msgq TCP transport:
//
//   AggregatorTcpBridge  — attaches to an Aggregator and re-publishes
//                          every aggregated event frame on a TCP port.
//                          Also answers "\x01replay" control frames by
//                          streaming historic events from the reliable
//                          store back to the requesting connection, so a
//                          consumer that lost its link can catch up.
//   RemoteConsumer       — runs on another host (or process): connects
//                          to the bridge, filters locally (the paper's
//                          consumer-side filtering), and delivers events
//                          to a callback, with the same counters as the
//                          in-process Consumer. With auto_reconnect it
//                          survives bridge restarts: the transport
//                          re-dials with backoff, a replay is requested
//                          from the last seen id, and the per-source
//                          dedup window collapses replay/live overlap.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/filter.hpp"
#include "src/msgq/tcp.hpp"
#include "src/scalable/dedup_window.hpp"
#include "src/scalable/sharded_aggregator.hpp"

namespace fsmon::scalable {

class AggregatorTcpBridge {
 public:
  /// Taps every shard's output; replay requests carry a vector cursor
  /// ("id0,id1,..."; a single number is a valid one-shard cursor, so the
  /// historic wire format still works) and are answered per shard under
  /// that shard's topic.
  AggregatorTcpBridge(ShardedAggregator& aggregator, msgq::Bus& bus);
  ~AggregatorTcpBridge();

  AggregatorTcpBridge(const AggregatorTcpBridge&) = delete;
  AggregatorTcpBridge& operator=(const AggregatorTcpBridge&) = delete;

  /// Listen on 127.0.0.1:`port` (0 = ephemeral) and start forwarding.
  common::Status start(std::uint16_t port = 0);
  void stop();

  std::uint16_t port() const { return tcp_.port(); }
  /// Events (not frames) forwarded over TCP.
  std::uint64_t forwarded() const { return forwarded_.load(); }
  /// Events streamed in response to "\x01replay" requests.
  std::uint64_t replayed() const { return replayed_.load(); }
  /// Frames dropped by the injected "tcp.drop" fault (chaos runs only).
  std::uint64_t dropped_frames() const { return dropped_frames_.load(); }

 private:
  void pump_loop(std::stop_token stop);
  void serve_replay(const msgq::Message& request,
                    const std::shared_ptr<msgq::TcpConnection>& connection);

  ShardedAggregator& aggregator_;
  /// Local tap on every shard output, on the tier's transport.
  std::shared_ptr<transport::Receiver> tap_;
  msgq::TcpPublisher tcp_;
  std::jthread pump_;
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> replayed_{0};
  std::atomic<std::uint64_t> dropped_frames_{0};
  std::atomic<bool> running_{false};
};

struct RemoteConsumerOptions {
  std::vector<core::FilterRule> rules;  ///< Empty = everything.
  std::size_t high_water_mark = 1 << 16;
  std::string topic = "fsmon/events";
  /// Re-dial the bridge when the link dies, then request a replay from
  /// the last seen event id. Off by default (historic behaviour: a dead
  /// link ends the consumer).
  bool auto_reconnect = false;
  common::Duration backoff_initial = std::chrono::milliseconds(10);
  common::Duration backoff_max = std::chrono::seconds(1);
  std::uint64_t reconnect_seed = 1;
};

class RemoteConsumer {
 public:
  using EventCallback = std::function<void(const core::StdEvent&)>;
  using BatchCallback = std::function<void(const core::EventBatch&)>;

  RemoteConsumer(RemoteConsumerOptions options, EventCallback callback)
      : options_(std::move(options)),
        compiled_(std::span<const core::FilterRule>(options_.rules)),
        callback_(std::move(callback)),
        subscriber_(transport_options(options_)) {}
  /// Batch-aware variant (mirrors Consumer): invoked once per received
  /// batch with only the matching events.
  RemoteConsumer(RemoteConsumerOptions options, BatchCallback callback)
      : options_(std::move(options)),
        compiled_(std::span<const core::FilterRule>(options_.rules)),
        batch_callback_(std::move(callback)),
        subscriber_(transport_options(options_)) {}
  ~RemoteConsumer();

  common::Status connect(const std::string& host, std::uint16_t port);
  void stop();

  bool matches(const core::StdEvent& event) const;

  /// Ask the bridge to stream store history after this consumer's
  /// current per-shard cursor. Fired automatically after a reconnect
  /// and on per-shard id gaps; callable directly for an explicit
  /// catch-up.
  common::Status request_replay();
  /// Scalar compat: replay after `after_id` on shard 0 (the only shard
  /// of a one-shard deployment), keeping other shards at their cursor.
  common::Status request_replay(common::EventId after_id);

  std::uint64_t delivered() const { return delivered_.load(); }
  std::uint64_t filtered_out() const { return filtered_.load(); }
  /// Duplicate events suppressed by the per-source dedup window.
  std::uint64_t duplicates_suppressed() const { return duplicates_.load(); }
  /// Successful automatic transport reconnects.
  std::uint64_t reconnects() const { return subscriber_.reconnects(); }
  /// Sum of the per-shard seen watermarks (the plain id with one shard).
  common::EventId last_seen_id() const { return last_seen_sum_.load(); }

 private:
  static msgq::TcpSubscriberOptions transport_options(const RemoteConsumerOptions& options) {
    msgq::TcpSubscriberOptions transport;
    transport.high_water_mark = options.high_water_mark;
    transport.auto_reconnect = options.auto_reconnect;
    transport.backoff_initial = options.backoff_initial;
    transport.backoff_max = options.backoff_max;
    transport.reconnect_seed = options.reconnect_seed;
    return transport;
  }

  void run(std::stop_token stop);

  RemoteConsumerOptions options_;
  /// Rules compiled once at construction (normalized roots, kind masks)
  /// so the receive loop never re-normalizes per (rule, event).
  core::CompiledRuleSet compiled_;
  EventCallback callback_;
  BatchCallback batch_callback_;
  msgq::TcpSubscriber subscriber_;
  std::jthread worker_;
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> filtered_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  /// Per-shard last seen ids; shard index parsed from the frame topic's
  /// "/shard<k>" suffix (no suffix = shard 0). Written by the worker,
  /// read by the transport reader's reconnect callback — guarded.
  VectorCursor last_seen_;
  std::mutex cursor_mu_;  ///< Guards last_seen_.
  std::atomic<std::uint64_t> last_seen_sum_{0};
  /// Worker-thread-only: live and replayed frames funnel through the one
  /// inbox, so no lock is needed.
  std::map<std::string, SourceDedupWindow> dedup_;
};

}  // namespace fsmon::scalable
