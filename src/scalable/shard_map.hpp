// Shard map: the explicit, stable partitioning of the event space
// across aggregator shards (ROADMAP item 1, following GIGA+'s
// hash-partitioning idea of a deterministic map every party can evaluate
// locally instead of a coordination service).
//
// Every component that needs to know which shard owns an event — the
// router in front of the shard inboxes, the merged-replay path, the
// consumer's vector cursor, the monitor's per-shard restart
// orchestration — consults the same ShardMap, so a (source, shard)
// assignment can never diverge between the write and read paths.
//
// Partitioning is by event *source* (e.g. "lustre:MDT3"): a source's
// records carry per-source changelog cookies whose dedup/gap protocol
// requires that one shard sees the source's whole contiguous stream.
// Sources with a trailing decimal index map round-robin by that index
// (perfect balance for the common MDT0..MDTn-1 layout); anything else
// falls back to FNV-1a. Tests can pin sources explicitly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.hpp"

namespace fsmon::scalable {

class ShardMap {
 public:
  explicit ShardMap(std::size_t shards) : shards_(shards == 0 ? 1 : shards) {}

  std::size_t shards() const { return shards_; }

  /// Stable shard assignment for a source. Never fails: an empty or
  /// unparsable source still maps deterministically (hash of the bytes).
  std::size_t shard_of(std::string_view source) const {
    if (shards_ == 1) return 0;
    if (auto it = pinned_.find(source); it != pinned_.end()) return it->second;
    if (auto index = trailing_index(source)) return *index % shards_;
    return static_cast<std::size_t>(fnv1a(source) % shards_);
  }

  /// Pin a source to a shard explicitly (tests, manual rebalancing).
  /// Must be applied identically on every party before traffic flows.
  void pin(std::string source, std::size_t shard) {
    pinned_[std::move(source)] = shard % shards_;
  }

  /// Human-readable map entry, the format documented in
  /// docs/ARCHITECTURE.md: "<source> -> shard<k> (<rule>)".
  std::string describe(std::string_view source) const {
    std::string rule = "fnv1a";
    if (pinned_.find(source) != pinned_.end())
      rule = "pinned";
    else if (trailing_index(source))
      rule = "index";
    return std::string(source) + " -> shard" + std::to_string(shard_of(source)) +
           " (" + rule + ")";
  }

 private:
  /// "lustre:MDT12" -> 12; no trailing digits -> nullopt.
  static std::optional<std::uint64_t> trailing_index(std::string_view source) {
    std::size_t end = source.size();
    std::size_t begin = end;
    while (begin > 0 && source[begin - 1] >= '0' && source[begin - 1] <= '9') --begin;
    if (begin == end) return std::nullopt;
    std::uint64_t value = 0;
    for (std::size_t i = begin; i < end; ++i)
      value = value * 10 + static_cast<std::uint64_t>(source[i] - '0');
    return value;
  }

  static std::uint64_t fnv1a(std::string_view bytes) {
    std::uint64_t hash = 1469598103934665603ull;
    for (char c : bytes) {
      hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      hash *= 1099511628211ull;
    }
    return hash;
  }

  std::size_t shards_;
  std::map<std::string, std::size_t, std::less<>> pinned_;
};

/// Per-shard replay watermark set: last event id consumed from each
/// shard. Replaces the single event-id cursor — shard id sequences are
/// independent dense sequences (each shard assigns ids 1,2,3,... for its
/// own store), so one scalar can no longer describe a consumer's
/// position. Encodes to "id0,id1,..." for the TCP replay protocol; a
/// single number is a valid one-shard cursor, which keeps the wire
/// format backward compatible.
struct VectorCursor {
  std::vector<common::EventId> last_ids;

  VectorCursor() = default;
  explicit VectorCursor(std::size_t shards) : last_ids(shards, 0) {}

  std::size_t size() const { return last_ids.size(); }
  /// Grow (never shrink) to cover `shards` slots.
  void ensure(std::size_t shards) {
    if (last_ids.size() < shards) last_ids.resize(shards, 0);
  }
  common::EventId at(std::size_t shard) const {
    return shard < last_ids.size() ? last_ids[shard] : 0;
  }
  void advance(std::size_t shard, common::EventId id) {
    ensure(shard + 1);
    if (id > last_ids[shard]) last_ids[shard] = id;
  }
  /// Total events consumed across shards (progress / lag arithmetic;
  /// equals the plain cursor when there is one shard).
  std::uint64_t sum() const {
    std::uint64_t total = 0;
    for (auto id : last_ids) total += id;
    return total;
  }

  std::string encode() const {
    std::string out;
    for (std::size_t i = 0; i < last_ids.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += std::to_string(last_ids[i]);
    }
    return out.empty() ? "0" : out;
  }

  /// Parse "id0,id1,...". Returns nullopt on malformed input. A shorter
  /// vector than the receiver's shard count is valid (missing slots are
  /// zero: replay-from-start for those shards, which over-replays —
  /// safe, the dedup window collapses it).
  static std::optional<VectorCursor> decode(std::string_view text) {
    VectorCursor cursor;
    std::uint64_t value = 0;
    bool digits = false;
    for (char c : text) {
      if (c >= '0' && c <= '9') {
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
        digits = true;
      } else if (c == ',') {
        if (!digits) return std::nullopt;
        cursor.last_ids.push_back(value);
        value = 0;
        digits = false;
      } else {
        return std::nullopt;
      }
    }
    if (!digits) return std::nullopt;
    cursor.last_ids.push_back(value);
    return cursor;
  }
};

}  // namespace fsmon::scalable
