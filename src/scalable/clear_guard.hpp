// Retrying wrapper around Mds::changelog_clear.
//
// A failed clear used to be logged and forgotten, leaving the changelog
// retaining records forever (the server purges only up to the minimum
// cleared index across users). ClearGuard separates *requesting* a clear
// watermark from *applying* it: request() raises the monotonic target,
// advance() attempts the server call and keeps the target pending across
// failures so the next batch retries it. Failures are counted
// (`collector.clear_failures` / `robinhood.clear_failures`) instead of
// dropped, and a chaos fault point lets tests inject them.
//
// Not thread-safe: owned and driven by the polling thread of its stage.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "src/chaos/fault.hpp"
#include "src/common/logging.hpp"
#include "src/lustre/mdt.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::scalable {

class ClearGuard {
 public:
  /// `fault_point` names the chaos hook evaluated on every server attempt
  /// (kFail simulates the RPC failing). `failures` may be null.
  ClearGuard(lustre::Mds& mds, std::string user_id, std::string fault_point,
             obs::Counter* failures = nullptr)
      : mds_(mds),
        user_id_(std::move(user_id)),
        fault_point_(std::move(fault_point)),
        failures_(failures) {}

  /// Raise the clear target to `index` (monotonic; lower requests are
  /// no-ops). Does not touch the server — call advance() for that.
  void request(std::uint64_t index) {
    if (index > target_) target_ = index;
  }

  /// Attempt any pending clear. Returns true when nothing is pending
  /// (either nothing was requested or the server accepted the clear);
  /// false leaves the target pending for the next advance().
  bool advance() {
    if (target_ <= cleared_) return true;
    if (auto outcome = chaos::fault(fault_point_);
        outcome.action == chaos::FaultAction::kFail) {
      note_failure(common::Status(common::ErrorCode::kUnavailable, "injected"));
      return false;
    }
    if (auto status = mds_.changelog_clear(user_id_, target_); !status.is_ok()) {
      note_failure(status);
      return false;
    }
    cleared_ = target_;
    return true;
  }

  std::uint64_t target() const { return target_; }
  std::uint64_t cleared() const { return cleared_; }
  bool pending() const { return target_ > cleared_; }
  std::uint64_t failures() const { return failure_count_; }

  /// Forget local progress (after a simulated crash): re-reads the
  /// server-side cleared index so a restarted stage retries from truth.
  void reset_from_server() {
    target_ = 0;
    cleared_ = 0;
    if (auto cleared = mds_.cleared_index(user_id_)) {
      cleared_ = cleared.value();
      target_ = cleared.value();
    }
  }

 private:
  void note_failure(const common::Status& status) {
    ++failure_count_;
    if (failures_ != nullptr) failures_->inc();
    FSMON_WARN("clear-guard", "changelog_clear(", user_id_, ", ", target_,
               ") failed (will retry): ", status.to_string());
  }

  lustre::Mds& mds_;
  std::string user_id_;
  std::string fault_point_;
  obs::Counter* failures_;
  std::uint64_t target_ = 0;
  std::uint64_t cleared_ = 0;
  std::uint64_t failure_count_ = 0;
};

}  // namespace fsmon::scalable
