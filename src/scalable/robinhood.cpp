#include "src/scalable/robinhood.hpp"

#include "src/common/logging.hpp"

namespace fsmon::scalable {

using common::Status;

RobinhoodPoller::RobinhoodPoller(lustre::LustreFs& fs, RobinhoodOptions options,
                                 common::Clock& clock)
    : fs_(fs),
      options_(std::move(options)),
      clock_(clock),
      resolver_(fs, options_.resolver, /*clock=*/nullptr),
      cache_(options_.cache_size > 0
                 ? std::make_unique<EventProcessor::FidCache>(options_.cache_size)
                 : nullptr),
      processor_(resolver_, cache_.get(), options_.costs, "robinhood"),
      meter_(clock) {
  for (std::uint32_t i = 0; i < fs_.mdt_count(); ++i) {
    user_ids_.push_back(fs_.mds(i).register_changelog_user());
    per_mds_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    obs::Counter* failures = nullptr;
    if (options_.metrics != nullptr) {
      failures = &options_.metrics->counter(
          "robinhood.clear_failures", {{"mds", std::to_string(i)}},
          "changelog_clear attempts that failed and were retried on a later poll",
          "failures");
    }
    clear_guards_.push_back(std::make_unique<ClearGuard>(
        fs_.mds(i), user_ids_.back(), "robinhood.clear", failures));
    clear_guards_.back()->reset_from_server();
    cursors_.push_back(clear_guards_.back()->cleared());
  }
}

RobinhoodPoller::~RobinhoodPoller() {
  stop();
  for (std::uint32_t i = 0; i < fs_.mdt_count(); ++i)
    fs_.mds(i).deregister_changelog_user(user_ids_[i]);
}

Status RobinhoodPoller::start() {
  if (running_.load()) return Status::ok();
  running_.store(true);
  worker_ = std::jthread([this](std::stop_token stop) { run(stop); });
  return Status::ok();
}

void RobinhoodPoller::stop() {
  if (worker_.joinable()) {
    worker_.request_stop();
    worker_.join();
  }
  running_.store(false);
}

std::size_t RobinhoodPoller::poll_mds(std::uint32_t index) {
  // Retry any clear that failed on an earlier poll before reading more.
  clear_guards_[index]->advance();
  // Read from the client cursor, not the server cleared index: a failed
  // clear must not re-feed already-stored records into the database.
  auto records = fs_.mds(index).changelog_read(user_ids_[index], options_.batch_size,
                                               cursors_[index]);
  if (!records || records.value().empty()) return 0;
  std::uint64_t last_index = 0;
  for (const auto& record : records.value()) {
    auto output = processor_.process(record);
    if (output.latency.count() > 0 && options_.costs.base_latency.count() > 0)
      clock_.sleep_for(output.latency);
    for (auto& event : output.events) database_.push_back(std::move(event));
    last_index = record.index;
  }
  const std::size_t n = records.value().size();
  cursors_[index] = last_index;
  records_.fetch_add(n);
  per_mds_[index]->fetch_add(n);
  meter_.record(n);
  clear_guards_[index]->request(last_index);
  clear_guards_[index]->advance();
  return n;
}

std::uint64_t RobinhoodPoller::clear_failures() const {
  std::uint64_t total = 0;
  for (const auto& guard : clear_guards_) total += guard->failures();
  return total;
}

std::size_t RobinhoodPoller::sweep_once() {
  std::size_t total = 0;
  for (std::uint32_t i = 0; i < fs_.mdt_count(); ++i) total += poll_mds(i);
  return total;
}

void RobinhoodPoller::run(std::stop_token stop) {
  std::uint32_t next = 0;
  while (!stop.stop_requested()) {
    // Round-robin: visit exactly one MDS per iteration, as Robinhood does.
    const std::size_t n = poll_mds(next);
    next = (next + 1) % fs_.mdt_count();
    if (n == 0) clock_.sleep_for(options_.poll_interval);
  }
  sweep_once();  // final drain
}

}  // namespace fsmon::scalable
