#include "src/scalable/fid_cache.hpp"

namespace fsmon::scalable {

using lustre::Fid;

FidPathCache::FidPathCache(std::size_t capacity, std::size_t shards)
    : shards_(capacity, shards), pending_(shards_.shard_count()) {}

PathPtr FidPathCache::get(const Fid& fid) {
  auto entry = shards_.get(fid);
  return entry ? entry->path : nullptr;
}

PathPtr FidPathCache::peek(const Fid& fid) const {
  auto entry = shards_.peek(fid);
  return entry ? entry->path : nullptr;
}

void FidPathCache::put(const Fid& fid, std::string path) {
  put(fid, std::make_shared<const std::string>(std::move(path)));
}

void FidPathCache::put(const Fid& fid, PathPtr path) {
  shards_.put(fid, Entry{std::move(path)});
}

bool FidPathCache::erase(const Fid& fid) { return shards_.erase(fid); }

PathPtr FidPathCache::get(const Fid& fid, std::uint64_t seq) {
  return shards_.with_shard(fid, [&](auto& cache) -> PathPtr {
    auto entry = cache.get(fid);
    if (!entry) return nullptr;
    if (seq >= entry->tombstone_seq) {
      // Dead for this and every later sequence (FIDs are never reused):
      // drop the corpse now rather than waiting for eviction.
      cache.erase(fid);
      return nullptr;
    }
    if (seq < entry->write_seq) return nullptr;  // written by a later record
    return entry->path;
  });
}

void FidPathCache::put(const Fid& fid, PathPtr path, std::uint64_t seq) {
  const std::size_t index = shards_.shard_index(fid);
  auto& pending = pending_[index];
  shards_.with_shard_index(index, [&](auto& cache) {
    if (auto existing = cache.peek(fid); existing && existing->write_seq > seq)
      return;  // a later record already wrote a fresher mapping
    Entry entry{std::move(path), seq};
    if (auto it = pending.find(fid); it != pending.end() && seq < it->second)
      entry.tombstone_seq = it->second;  // ordered delete already covers us
    cache.put(fid, std::move(entry));
  });
}

void FidPathCache::invalidate(const Fid& fid, std::uint64_t seq) {
  const std::size_t index = shards_.shard_index(fid);
  auto& pending = pending_[index];
  shards_.with_shard_index(index, [&](auto& cache) {
    auto [it, inserted] = pending.try_emplace(fid, seq);
    if (!inserted && it->second < seq) it->second = seq;
    if (auto existing = cache.peek(fid); existing && existing->write_seq < seq &&
                                         existing->tombstone_seq > seq) {
      Entry entry = *existing;
      entry.tombstone_seq = seq;
      cache.put(fid, std::move(entry));
    }
  });
}

void FidPathCache::retire(std::uint64_t seq) {
  for (std::size_t index = 0; index < pending_.size(); ++index) {
    auto& pending = pending_[index];
    shards_.with_shard_index(index, [&](auto& cache) {
      for (auto it = pending.begin(); it != pending.end();) {
        if (it->second > seq) {
          ++it;
          continue;
        }
        if (auto entry = cache.peek(it->first);
            entry && entry->tombstone_seq <= seq)
          cache.erase(it->first);  // dead for every future sequence
        it = pending.erase(it);
      }
    });
  }
}

bool FidPathCache::contains(const Fid& fid) const { return shards_.contains(fid); }

void FidPathCache::clear() {
  for (std::size_t index = 0; index < pending_.size(); ++index)
    shards_.with_shard_index(index, [&](auto&) { pending_[index].clear(); });
  shards_.clear();
}

std::size_t FidPathCache::size() const { return shards_.size(); }
std::size_t FidPathCache::capacity() const { return shards_.capacity(); }
std::size_t FidPathCache::shard_count() const { return shards_.shard_count(); }
std::size_t FidPathCache::max_shard_size() const { return shards_.max_shard_size(); }
common::LruStats FidPathCache::stats() const { return shards_.stats(); }
void FidPathCache::reset_stats() { shards_.reset_stats(); }

}  // namespace fsmon::scalable
