// FanOutHub: subscription-indexed fan-out with credit-based
// per-consumer flow control (ROADMAP item 2).
//
// The legacy topology gives every consumer its own transport receiver on
// every shard output: frame delivery is a refcount bump, but each
// consumer then decodes every batch and runs its own rule set over every
// event — O(consumers × events) matching work, and one slow consumer
// with kBlock back-pressure can stall the shard's sender.
//
// The hub collapses that to one receiver: a single pump thread decodes
// each frame once, runs the shared SubscriptionIndex once per batch, and
// pushes {shared decoded batch, matched indices} items into per-consumer
// queues. Matching cost grows with matched events, not subscriber count.
//
// Flow control is credit-based: each subscription carries a credit
// window counted in delivered events; credits are consumed when a batch
// is queued (a frame may drive the window one batch negative so frames
// stay atomic) and replenished when the consumer acknowledges processed
// events. A consumer that exhausts its window is demoted: live delivery
// stops (a marker item tells the consumer), and the consumer catches up
// by paging the reliable store (the for_each_since/replay_page path)
// through its own rules. When it reaches the live watermark it asks to
// be promoted; promotion hands it a fresh window and the watermark to
// replay up to, so the hand-off is gap-free and duplicate-free. A
// demoted consumer whose lag keeps growing past `eviction_lag` is
// evicted — it stops holding the store's retention window hostage.
//
// Acknowledgement forwarding: the hub forwards the element-wise MINIMUM
// acked cursor across all non-evicted subscriptions to the shard stores,
// so a purge can never drop an event a demoted consumer still needs for
// catch-up. (Legacy consumers ack independently, which lets the fastest
// consumer's watermark race ahead of the slowest's replay needs.)
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/scalable/sharded_aggregator.hpp"
#include "src/scalable/sub_index.hpp"

namespace fsmon::scalable {

/// Delivery state of one hub subscription.
enum class FlowState : std::uint8_t {
  kLive,     ///< Receiving live matched batches, credits remaining.
  kDemoted,  ///< Window exhausted; catching up from the store.
  kEvicted,  ///< Never drained; removed from the index and the min-ack.
};

std::string_view to_string(FlowState state);

/// One entry in a subscription's queue. kBatch carries the shared
/// decoded frame plus the indices of this subscriber's matched events;
/// kDemoted / kEvicted are state-change markers enqueued in stream
/// position, so the consumer learns exactly where live delivery stopped.
struct HubItem {
  enum class Kind : std::uint8_t { kBatch, kDemoted, kEvicted };
  Kind kind = Kind::kBatch;
  std::shared_ptr<const core::EventBatch> batch;
  std::vector<std::uint32_t> indices;  ///< Matched event indices, batch order.
  std::size_t shard = 0;
  common::EventId first_id = 0;  ///< Unfiltered frame id range (watermarks).
  common::EventId last_id = 0;
};

struct FlowControlOptions {
  /// Credit window per subscription, in delivered events. Must exceed
  /// the consumer's ack interval or a healthy consumer would demote
  /// itself between acks.
  std::uint64_t credit_window = 1 << 15;
  /// A demoted consumer may be promoted once its replay cursor is within
  /// this many events of the live watermark. 0 = credit_window / 4.
  std::uint64_t promote_lag = 0;
  /// Evict a demoted subscription whose acknowledged cursor lags the
  /// live watermark by more than this many events. 0 disables eviction.
  std::uint64_t eviction_lag = 0;
  /// Pump inbox high-water mark (frames).
  std::size_t high_water_mark = 1 << 16;
  /// Observability registry; null = uninstrumented. Registers flow.* and
  /// subidx.*.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Instruments for the flow-control tier (flow.*). All optional.
struct FlowMetrics {
  obs::Counter* demotions = nullptr;
  obs::Counter* promotions = nullptr;
  obs::Counter* evictions = nullptr;
  obs::Gauge* live = nullptr;
  obs::Gauge* demoted = nullptr;

  static FlowMetrics create(obs::MetricsRegistry& registry,
                            const obs::Labels& labels = {});
};

class FanOutHub {
 public:
  /// Opaque per-consumer handle. All state is owned and mutated by the
  /// hub; consumers interact through the hub methods below.
  class Subscription {
   private:
    friend class FanOutHub;
    std::string name_;
    SubscriberId id_ = 0;
    FlowState state_ = FlowState::kLive;
    std::int64_t credits_ = 0;
    VectorCursor acked_;        ///< Last cursor the consumer acknowledged.
    std::mutex queue_mu_;
    std::condition_variable queue_cv_;
    std::deque<HubItem> queue_;
    bool queue_closed_ = false;
  };

  FanOutHub(ShardedAggregator& aggregator, FlowControlOptions options);
  ~FanOutHub();

  FanOutHub(const FanOutHub&) = delete;
  FanOutHub& operator=(const FanOutHub&) = delete;

  common::Status start();
  void stop();

  /// Register a consumer with its compiled rules (empty = everything).
  /// The subscription starts live with a full credit window, positioned
  /// at the current live watermark.
  std::shared_ptr<Subscription> subscribe(
      std::string name, std::span<const core::CompiledRule> rules);

  /// Remove a subscription: detaches it from the index, closes its queue
  /// and releases its hold on the min-ack watermark.
  void unsubscribe(Subscription& sub);

  /// Pop the next item for this subscription. Blocks up to `timeout`
  /// (<= 0 waits indefinitely); nullopt on timeout or after unsubscribe.
  std::optional<HubItem> pop(
      Subscription& sub,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(-1));

  /// Consumer progress report: `cursor` is the consumer's per-shard seen
  /// watermark (forwarded to the stores as the min across subscriptions),
  /// `processed_events` the number of hub-delivered events the consumer
  /// has finished with since its last call (replenishes credits).
  void acknowledge(Subscription& sub, const VectorCursor& cursor,
                   std::uint64_t processed_events);

  /// Ask to re-enter live delivery after catch-up. `cursor` is where the
  /// consumer's replay has reached. Succeeds when the cursor is within
  /// promote_lag of the live watermark: the subscription re-enters kLive
  /// with a fresh window and the call returns the watermark snapshot the
  /// consumer must finish replaying up to — every frame the hub matched
  /// before the promotion has last_id <= that snapshot, every frame after
  /// it is queued live, so replaying exactly to the snapshot is gap-free
  /// and duplicate-free.
  std::optional<VectorCursor> try_promote(Subscription& sub,
                                          const VectorCursor& cursor);

  FlowState state(const Subscription& sub) const;
  std::int64_t credits(const Subscription& sub) const;
  /// Live watermark: last id the hub has seen per shard.
  VectorCursor head_cursor() const;

  SubscriptionIndex& index() { return index_; }
  std::uint64_t frames_pumped() const { return frames_.load(); }

 private:
  void pump(std::stop_token stop);
  void push_item(Subscription& sub, HubItem item);
  void demote_locked(Subscription& sub);
  void evict_overdue_locked();
  /// Forward the min acked cursor across non-evicted subs to the stores.
  void forward_acks_locked();
  std::size_t shard_of_topic(std::string_view topic) const;
  void update_gauges_locked();

  ShardedAggregator& aggregator_;
  FlowControlOptions options_;
  SubscriptionIndex index_;
  FlowMetrics metrics_;
  std::shared_ptr<transport::Receiver> receiver_;
  std::jthread pump_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> frames_{0};

  mutable std::mutex mu_;
  /// Subscriptions indexed by SubscriberId (dense, reused).
  std::vector<std::shared_ptr<Subscription>> subs_;
  std::vector<SubscriberId> demoted_;  ///< Ids to check for eviction.
  VectorCursor heads_;                 ///< Per-shard last pumped id.
  VectorCursor forwarded_;             ///< Last min cursor sent to stores.
  std::size_t live_count_ = 0;
  std::size_t demoted_count_ = 0;
  /// The frame the pump is currently matching but has not yet committed
  /// to heads_ (all guarded by mu_). subscribe() counts it as historic:
  /// a subscription added mid-match may miss the index evaluation, so
  /// its start watermark must sit at or above the frame or those events
  /// would be neither delivered nor replayed.
  std::size_t pending_shard_ = 0;
  common::EventId pending_last_id_ = 0;
  bool pending_valid_ = false;
  /// Frames since the pump last forwarded the min-ack (guarded by mu_);
  /// keeps retention moving when no consumer is acking.
  std::size_t frames_since_forward_ = 0;
};

}  // namespace fsmon::scalable
