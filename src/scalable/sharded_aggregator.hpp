// ShardedAggregator: the hash-partitioned aggregation tier (ROADMAP
// item 1).
//
// N full Aggregators — each with its own inbox, id sequence, WAL/store,
// persist thread and per-source dedup watermarks — behind one
// ShardRouter that assigns every collector frame to exactly one shard
// by event source (see shard_map.hpp). With shards == 1 the tier is
// byte-for-byte the old single aggregator: same bus names, same output
// topic, same store directory, no metric labels, no scoped fault
// points.
//
// Event ids are per-shard: each shard assigns its own dense 1,2,3,...
// sequence for its own store. A consumer's position is therefore a
// VectorCursor (one watermark per shard), and the merged read path
// (events_since) performs a k-way head-comparison merge over per-shard
// store pages: the event with the smallest (timestamp, shard) head is
// popped next. The merge never reorders within a shard — each shard's
// subsequence of the merged stream is exactly its replay order — which
// is the "permutation-free merge" contract the property test
// byte-checks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/scalable/aggregator.hpp"
#include "src/scalable/shard_map.hpp"
#include "src/scalable/shard_router.hpp"

namespace fsmon::scalable {

struct ShardedAggregatorOptions {
  /// Number of aggregator shards; 1 reproduces the unsharded tier.
  std::size_t shards = 1;
  /// Transport every stage boundary of the tier rides on (router->shard
  /// senders, shard inboxes and outputs). Null (default) makes the tier
  /// own an InProcTransport over its bus. Must outlive the tier.
  transport::Transport* transport = nullptr;
  /// Template applied to every shard. Per-shard derivations: the store
  /// directory gains a "shard<k>" suffix, the output topic a "/shard<k>"
  /// suffix, metrics a shard=<k> label, and fault points an
  /// "aggregator.shard<k>." scope (all only when shards > 1).
  AggregatorOptions aggregator;
};

class ShardedAggregator {
 public:
  ShardedAggregator(msgq::Bus& bus, const std::string& name,
                    ShardedAggregatorOptions options, common::Clock& clock);

  ShardedAggregator(const ShardedAggregator&) = delete;
  ShardedAggregator& operator=(const ShardedAggregator&) = delete;

  common::Status start();
  void stop();

  std::size_t shard_count() const { return shards_.size(); }
  Aggregator& shard(std::size_t k) { return *shards_.at(k); }
  const Aggregator& shard(std::size_t k) const { return *shards_.at(k); }
  /// Transport the tier's endpoints live on (collector senders are made
  /// here so the whole pipeline shares one carrier).
  transport::Transport& transport() { return *transport_; }
  ShardRouter& router() { return *router_; }
  ShardMap& map() { return map_; }
  const ShardMap& map() const { return map_; }
  /// Topic shard k publishes under (base, or base + "/shard<k>").
  const std::string& output_topic(std::size_t k) const { return topics_.at(k); }

  /// Applied to every shard (not thread-safe; set before start()).
  void set_ack_callback(Aggregator::AckCallback callback);
  /// Applied to every shard (not thread-safe; set before start()).
  void set_nack_callback(Aggregator::NackCallback callback);

  /// Merged historic replay: up to `max_events` across all shards,
  /// k-way merged by (timestamp, shard) with each shard's own order
  /// preserved exactly. `cursor` is advanced past every returned event,
  /// so repeated calls page through the backlog. The cursor is resized
  /// to the shard count if needed (missing slots replay from the start).
  common::Result<std::vector<core::StdEvent>> events_since(
      VectorCursor& cursor, std::size_t max_events = SIZE_MAX) const;

  /// Per-shard acknowledgement of everything at or below the cursor.
  void acknowledge(const VectorCursor& cursor);
  std::size_t purge();

  /// Sum of per-shard head ids: total events assigned ids so far
  /// (delivery-lag arithmetic against VectorCursor::sum()).
  std::uint64_t last_event_id_sum() const;
  /// Per-shard head ids as a cursor (lag and promotion arithmetic for
  /// the fan-out hub's flow control).
  VectorCursor head_cursor() const {
    VectorCursor cursor(shards_.size());
    for (std::size_t k = 0; k < shards_.size(); ++k)
      cursor.last_ids[k] = shards_[k]->last_event_id();
    return cursor;
  }
  std::uint64_t aggregated() const;
  std::uint64_t persisted() const;
  bool any_crashed() const;

 private:
  ShardMap map_;
  /// Owned fallback when options.transport is null. Declared before the
  /// shards and router whose endpoints it creates.
  std::unique_ptr<transport::Transport> owned_transport_;
  transport::Transport* transport_ = nullptr;
  std::vector<std::unique_ptr<Aggregator>> shards_;
  std::vector<std::string> topics_;
  std::unique_ptr<ShardRouter> router_;
};

}  // namespace fsmon::scalable
