#include "src/scalable/sub_index.hpp"

#include <algorithm>
#include <array>
#include <bit>

#include "src/common/string_util.hpp"

namespace fsmon::scalable {

namespace {
constexpr std::size_t kWordBits = 64;

inline void set_bit(std::vector<std::uint64_t>& words, SubscriberId id) {
  const std::size_t word = id / kWordBits;
  if (word >= words.size()) words.resize(word + 1, 0);
  words[word] |= std::uint64_t{1} << (id % kWordBits);
}
}  // namespace

void SubscriberBitset::set(SubscriberId id) { set_bit(words_, id); }

void SubscriberBitset::clear(SubscriberId id) {
  const std::size_t word = id / kWordBits;
  if (word < words_.size())
    words_[word] &= ~(std::uint64_t{1} << (id % kWordBits));
}

bool SubscriberBitset::test(SubscriberId id) const {
  const std::size_t word = id / kWordBits;
  return word < words_.size() &&
         (words_[word] >> (id % kWordBits)) & std::uint64_t{1};
}

bool SubscriberBitset::any() const {
  for (std::uint64_t w : words_)
    if (w != 0) return true;
  return false;
}

void SubscriberBitset::or_into(std::vector<std::uint64_t>& words) const {
  const std::size_t n = std::min(words.size(), words_.size());
  for (std::size_t i = 0; i < n; ++i) words[i] |= words_[i];
}

void SubscriberBitset::or_into(std::vector<std::uint64_t>& words,
                               std::vector<std::uint32_t>& dirty) const {
  const std::size_t n = std::min(words.size(), words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (words_[i] == 0) continue;
    if (words[i] == 0) dirty.push_back(static_cast<std::uint32_t>(i));
    words[i] |= words_[i];
  }
}

void DeliverySet::reset(std::size_t subscriber_limit) {
  for (SubscriberId id : touched_) indices_[id].clear();
  touched_.clear();
  if (indices_.size() < subscriber_limit) indices_.resize(subscriber_limit);
}

void DeliverySet::add(SubscriberId id, std::uint32_t event_index) {
  auto& list = indices_[id];
  if (list.empty()) touched_.push_back(id);
  list.push_back(event_index);
}

SubIndexMetrics SubIndexMetrics::create(obs::MetricsRegistry& registry,
                                        const obs::Labels& labels) {
  SubIndexMetrics m;
  m.subscribers = &registry.gauge("subidx.subscribers", labels,
                                  "Live subscribers registered in the index",
                                  "subscribers");
  m.nodes = &registry.gauge("subidx.nodes", labels,
                            "Path-trie nodes currently allocated", "nodes");
  m.batches = &registry.counter("subidx.batches", labels,
                                "Batches matched through the shared index",
                                "batches");
  m.events = &registry.counter("subidx.events", labels,
                               "Events matched through the shared index",
                               "events");
  m.deliveries = &registry.counter(
      "subidx.deliveries", labels,
      "(subscriber, event) delivery pairs the index produced", "deliveries");
  return m;
}

/// One trie node's subscriber entries, split by how cheaply they can be
/// evaluated: patternless all-kind rules are a single bitset OR,
/// patternless kind-restricted rules one OR from the per-kind bitmap,
/// and only glob-carrying rules pay a per-(rule, event) check.
struct SubscriptionIndex::EntrySet {
  SubscriberBitset all;
  std::array<SubscriberBitset, core::kEventKindCount> by_kind;
  struct Cond {
    SubscriberId id;
    core::KindMask kinds;
    std::string pattern;
  };
  std::vector<Cond> cond;

  bool empty() const {
    if (all.any() || !cond.empty()) return false;
    for (const auto& b : by_kind)
      if (b.any()) return false;
    return true;
  }
};

struct SubscriptionIndex::Node {
  std::map<std::string, std::unique_ptr<Node>, std::less<>> children;
  EntrySet recursive;  ///< Rules rooted here with subtree semantics.
  EntrySet direct;     ///< Rules rooted here matching direct children only.
};

SubscriptionIndex::SubscriptionIndex(SubIndexMetrics metrics)
    : root_(std::make_unique<Node>()), metrics_(metrics) {
  update_gauges();
}

SubscriptionIndex::~SubscriptionIndex() = default;

SubscriptionIndex::Node* SubscriptionIndex::walk_to(
    std::span<const std::string> components) {
  Node* node = root_.get();
  for (const auto& component : components) {
    auto it = node->children.find(component);
    if (it == node->children.end()) {
      it = node->children.emplace(component, std::make_unique<Node>()).first;
      ++node_count_;
    }
    node = it->second.get();
  }
  return node;
}

SubscriberId SubscriptionIndex::add_subscriber(
    std::span<const core::CompiledRule> rules) {
  std::unique_lock lock(mu_);
  SubscriberId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = static_cast<SubscriberId>(rules_by_id_.size());
    rules_by_id_.emplace_back();
    live_.push_back(false);
  }
  live_[id] = true;
  ++live_count_;
  rules_by_id_[id].assign(rules.begin(), rules.end());

  if (rules.empty()) {
    match_all_.set(id);
  } else {
    for (const auto& rule : rules) {
      Node* node = walk_to(rule.components);
      EntrySet& set = rule.recursive ? node->recursive : node->direct;
      if (!rule.name_pattern.empty()) {
        set.cond.push_back({id, rule.kinds, rule.name_pattern});
      } else if (rule.kinds == core::kAllKinds) {
        set.all.set(id);
      } else {
        for (std::size_t k = 0; k < core::kEventKindCount; ++k) {
          if (core::mask_accepts(rule.kinds, static_cast<core::EventKind>(k)))
            set.by_kind[k].set(id);
        }
      }
    }
  }
  update_gauges();
  return id;
}

void SubscriptionIndex::remove_subscriber(SubscriberId id) {
  std::unique_lock lock(mu_);
  if (id >= live_.size() || !live_[id]) return;
  match_all_.clear(id);
  for (const auto& rule : rules_by_id_[id]) {
    Node* node = root_.get();
    bool found = true;
    for (const auto& component : rule.components) {
      auto it = node->children.find(component);
      if (it == node->children.end()) {
        found = false;
        break;
      }
      node = it->second.get();
    }
    if (!found) continue;
    EntrySet& set = rule.recursive ? node->recursive : node->direct;
    set.all.clear(id);
    for (auto& b : set.by_kind) b.clear(id);
    std::erase_if(set.cond, [id](const EntrySet::Cond& c) { return c.id == id; });
  }
  rules_by_id_[id].clear();
  rules_by_id_[id].shrink_to_fit();
  live_[id] = false;
  free_ids_.push_back(id);
  --live_count_;
  prune(root_.get(), {});
  update_gauges();
}

void SubscriptionIndex::prune(Node* node, std::span<const std::string>) {
  for (auto it = node->children.begin(); it != node->children.end();) {
    prune(it->second.get(), {});
    Node& child = *it->second;
    if (child.children.empty() && child.recursive.empty() &&
        child.direct.empty()) {
      it = node->children.erase(it);
      --node_count_;
    } else {
      ++it;
    }
  }
}

void SubscriptionIndex::accumulate(const EntrySet& set, std::string_view base,
                                   core::EventKind kind,
                                   std::vector<std::uint64_t>& hits,
                                   std::vector<std::uint32_t>& dirty) {
  set.all.or_into(hits, dirty);
  set.by_kind[static_cast<std::size_t>(kind)].or_into(hits, dirty);
  for (const auto& cond : set.cond) {
    if (core::mask_accepts(cond.kinds, kind) &&
        common::glob_match(cond.pattern, base)) {
      const std::size_t word = cond.id / kWordBits;
      if (hits[word] == 0) dirty.push_back(static_cast<std::uint32_t>(word));
      hits[word] |= std::uint64_t{1} << (cond.id % kWordBits);
    }
  }
}

void SubscriptionIndex::match_into(std::span<const std::string> components,
                                   std::string_view base, core::EventKind kind,
                                   std::vector<std::uint64_t>& hits,
                                   std::vector<std::uint32_t>& dirty) const {
  const std::size_t n = components.size();
  const Node* node = root_.get();
  for (std::size_t depth = 0;; ++depth) {
    // Recursive rules rooted at this prefix cover the whole subtree.
    accumulate(node->recursive, base, kind, hits, dirty);
    // Non-recursive rules match direct children only — the event must
    // have exactly one component past this prefix. Depth-0 also keeps
    // the legacy quirk: a non-recursive "/" rule matches "/" itself
    // (parent_path("/") == "/").
    if (depth + 1 == n || (depth == 0 && n == 0))
      accumulate(node->direct, base, kind, hits, dirty);
    if (depth == n) break;
    auto it = node->children.find(components[depth]);
    if (it == node->children.end()) break;
    node = it->second.get();
  }
}

void SubscriptionIndex::match_batch(std::span<const core::StdEvent> events,
                                    DeliverySet& out) const {
  std::shared_lock lock(mu_);
  const std::size_t limit = rules_by_id_.size();
  out.reset(limit);
  // `hits` is zero outside this loop body; each event records the words
  // it sets in `dirty` and zeroes exactly those afterwards, so per-event
  // cost scales with matched subscribers, not the id space.
  std::vector<std::uint64_t> hits((limit + kWordBits - 1) / kWordBits, 0);
  std::vector<std::uint32_t> dirty;
  std::uint64_t deliveries = 0;
  for (std::uint32_t i = 0; i < events.size(); ++i) {
    dirty.clear();
    match_all_.or_into(hits, dirty);
    const std::string path = common::normalize_path(events[i].path);
    const std::string base = common::base_name(path);
    const auto components = core::path_components(path);
    match_into(components, base, events[i].kind, hits, dirty);
    for (const std::uint32_t w : dirty) {
      std::uint64_t word = hits[w];
      hits[w] = 0;
      while (word != 0) {
        const int bit = std::countr_zero(word);
        word &= word - 1;
        out.add(static_cast<SubscriberId>(std::size_t{w} * kWordBits + bit), i);
        ++deliveries;
      }
    }
  }
  if (metrics_.batches != nullptr) {
    metrics_.batches->inc();
    metrics_.events->inc(events.size());
    metrics_.deliveries->inc(deliveries);
  }
}

std::vector<SubscriberId> SubscriptionIndex::match_event(
    const core::StdEvent& event) const {
  DeliverySet out;
  match_batch(std::span(&event, 1), out);
  std::vector<SubscriberId> ids(out.touched().begin(), out.touched().end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t SubscriptionIndex::subscriber_count() const {
  std::shared_lock lock(mu_);
  return live_count_;
}

std::size_t SubscriptionIndex::node_count() const {
  std::shared_lock lock(mu_);
  return node_count_;
}

void SubscriptionIndex::update_gauges() const {
  if (metrics_.subscribers != nullptr) {
    metrics_.subscribers->set(static_cast<std::int64_t>(live_count_));
    metrics_.nodes->set(static_cast<std::int64_t>(node_count_));
  }
}

}  // namespace fsmon::scalable
