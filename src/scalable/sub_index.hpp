// Shared subscription index: a path-prefix trie evaluated once per
// batch instead of once per (consumer, event).
//
// The paper's scalable tier pushes filtering to each consumer, which is
// O(consumers × rules) work per event. The index inverts that: every
// subscriber's compiled rules are inserted into one trie keyed by path
// components, with per-node subscriber bitsets split by event kind, so
// matching an event is a single root-to-leaf walk that ORs a handful of
// bitsets — cost grows with the event's path depth and the number of
// subscribers it actually matches, not with the total subscriber count.
//
// Semantics are byte-identical to the legacy per-consumer
// core::matches_any evaluation (property-tested in sub_index_test):
//  - recursive rules match the whole subtree rooted at the rule root
//    (including the root itself), with component-exact boundaries —
//    a rule on "/foo" never matches "/foobar";
//  - non-recursive rules match direct children only, plus the legacy
//    quirk that a non-recursive "/" rule matches the path "/" itself
//    (parent_path("/") == "/");
//  - an empty rule set matches everything (the consumer default);
//  - name globs and kind restrictions apply per rule, not per set.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "src/core/event.hpp"
#include "src/core/filter.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::scalable {

/// Dense subscriber handle allocated by the index; ids are reused after
/// removal so bitsets stay compact.
using SubscriberId = std::uint32_t;

/// Growable bitset over SubscriberId.
class SubscriberBitset {
 public:
  void set(SubscriberId id);
  void clear(SubscriberId id);
  bool test(SubscriberId id) const;
  bool any() const;
  void or_into(std::vector<std::uint64_t>& words) const;
  /// OR into `words`, appending the index of every word that transitions
  /// from zero to nonzero to `dirty` — lets the caller zero and scan only
  /// the touched words instead of the whole (subscriber-count-sized)
  /// bitset.
  void or_into(std::vector<std::uint64_t>& words,
               std::vector<std::uint32_t>& dirty) const;

 private:
  std::vector<std::uint64_t> words_;
};

/// Per-batch match result: for each touched subscriber, the indices of
/// the batch's events that subscriber should receive, in batch order.
/// Reused across batches — `indices` is sized to the subscriber-id space
/// and only the `touched` entries are populated.
class DeliverySet {
 public:
  std::span<const SubscriberId> touched() const { return touched_; }
  std::span<const std::uint32_t> indices_for(SubscriberId id) const {
    return indices_[id];
  }

 private:
  friend class SubscriptionIndex;
  void reset(std::size_t subscriber_limit);
  void add(SubscriberId id, std::uint32_t event_index);

  std::vector<std::vector<std::uint32_t>> indices_;
  std::vector<SubscriberId> touched_;
};

/// Instruments for the index (subidx.*). All optional.
struct SubIndexMetrics {
  obs::Gauge* subscribers = nullptr;
  obs::Gauge* nodes = nullptr;
  obs::Counter* batches = nullptr;
  obs::Counter* events = nullptr;
  obs::Counter* deliveries = nullptr;

  static SubIndexMetrics create(obs::MetricsRegistry& registry,
                                const obs::Labels& labels = {});
};

/// The shared path-trie subscription index. Thread-safe: subscriptions
/// take an exclusive lock, match_batch a shared one, so concurrent
/// matching never blocks on other matchers.
class SubscriptionIndex {
 public:
  explicit SubscriptionIndex(SubIndexMetrics metrics = {});
  ~SubscriptionIndex();

  SubscriptionIndex(const SubscriptionIndex&) = delete;
  SubscriptionIndex& operator=(const SubscriptionIndex&) = delete;

  /// Register a subscriber with its compiled rules. An empty rule span
  /// subscribes to everything. Returns the subscriber's dense id.
  SubscriberId add_subscriber(std::span<const core::CompiledRule> rules);

  /// Remove a subscriber; its id may be reused by a later add.
  void remove_subscriber(SubscriberId id);

  /// Match a whole batch: fills `out` with, per touched subscriber, the
  /// indices of matching events. Indices are in batch order.
  void match_batch(std::span<const core::StdEvent> events, DeliverySet& out) const;

  /// Match a single event into a subscriber-id list (test/bench helper).
  std::vector<SubscriberId> match_event(const core::StdEvent& event) const;

  std::size_t subscriber_count() const;
  std::size_t node_count() const;

 private:
  struct Node;
  struct EntrySet;

  Node* walk_to(std::span<const std::string> components);
  void match_into(std::span<const std::string> components,
                  std::string_view base, core::EventKind kind,
                  std::vector<std::uint64_t>& hits,
                  std::vector<std::uint32_t>& dirty) const;
  static void accumulate(const EntrySet& set, std::string_view base,
                         core::EventKind kind,
                         std::vector<std::uint64_t>& hits,
                         std::vector<std::uint32_t>& dirty);
  void prune(Node* node, std::span<const std::string> components);
  void update_gauges() const;

  mutable std::shared_mutex mu_;
  std::unique_ptr<Node> root_;
  /// Subscribers with an empty rule set: delivered every event.
  SubscriberBitset match_all_;
  /// Rules as inserted, kept for removal (re-walk and clear).
  std::vector<std::vector<core::CompiledRule>> rules_by_id_;
  std::vector<bool> live_;
  std::vector<SubscriberId> free_ids_;
  std::size_t node_count_ = 1;  ///< Root always exists.
  std::size_t live_count_ = 0;
  SubIndexMetrics metrics_;
};

}  // namespace fsmon::scalable
