#include "src/scalable/aggregator.hpp"

#include <algorithm>
#include <chrono>

#include "src/chaos/fault.hpp"
#include "src/common/logging.hpp"
#include "src/transport/inproc.hpp"

namespace fsmon::scalable {

using common::Result;
using common::Status;

Aggregator::Aggregator(msgq::Bus& bus, std::string name, AggregatorOptions options,
                       common::Clock& clock)
    : bus_(bus),
      name_(std::move(name)),
      options_(std::move(options)),
      clock_(clock),
      persist_queue_(options_.persist_queue_capacity),
      meter_(clock) {
  if (options_.transport != nullptr) {
    transport_ = options_.transport;
  } else {
    owned_transport_ = std::make_unique<transport::InProcTransport>(bus_);
    transport_ = owned_transport_.get();
  }
  input_ = transport_->make_receiver(name_ + "/inbox", options_.inbox_high_water_mark,
                                     transport::OverflowPolicy::kBlock);
  input_->subscribe("");  // fan-in: accept every collector topic
  output_ = transport_->make_sender(name_ + "/out");
  if (options_.store) {
    eventstore::EventStoreOptions store_options = *options_.store;
    if (store_options.metrics == nullptr) store_options.metrics = options_.metrics;
    if (store_options.labels.empty()) store_options.labels = options_.labels;
    store_ = std::make_unique<eventstore::EventStore>(store_options);
    next_id_.store(store_->last_id() + 1);
    rebuild_accepted_from_store();
  }
  if (options_.metrics != nullptr) {
    deduped_counter_ = &options_.metrics->counter(
        "recovery.events_deduped", options_.labels,
        "Replayed duplicate events trimmed by the per-source watermark", "events");
    gapped_counter_ = &options_.metrics->counter(
        "recovery.gapped_frames", options_.labels,
        "Frames refused because they opened a hole above the durable watermark",
        "frames");
    publish_retried_counter_ = &options_.metrics->counter(
        "aggregator.publish_retries", options_.labels,
        "Fan-out sends retried after a refusal with a live audience", "sends");
    publish_abandoned_counter_ = &options_.metrics->counter(
        "aggregator.publish_abandoned", options_.labels,
        "Fan-out frames dropped after exhausting refusal retries", "frames");
  }
  if (options_.metrics != nullptr) {
    auto& registry = *options_.metrics;
    const obs::Labels& labels = options_.labels;
    aggregated_counter_ = &registry.counter(
        "aggregator.events_aggregated", labels,
        "Events received from collectors and assigned global ids", "events");
    persisted_counter_ = &registry.counter("aggregator.events_persisted", labels,
                                           "Events appended to the reliable store", "events");
    queue_depth_gauge_ = &registry.gauge(
        "aggregator.queue_depth", labels,
        "Fan-in inbox plus persist-queue backlog at last pump", "events");
    queue_depth_peak_gauge_ = &registry.gauge("aggregator.queue_depth_peak", labels,
                                              "High-water mark of the fan-in backlog",
                                              "events");
    publish_rate_gauge_ = &registry.gauge("aggregator.publish_rate", labels,
                                          "Lifetime average events/second published",
                                          "events/s");
    fanout_receivers_gauge_ = &registry.gauge(
        "aggregator.fanout_receivers", labels,
        "Receivers connected to this shard's output (1 in hub mode, one "
        "per consumer in the legacy per-consumer topology)",
        "receivers");
    fanout_lag_hist_ = &registry.histogram(
        "aggregator.fanout_lag_us", labels,
        "Operation timestamp to aggregator publish (fan-out lag)", "us");
    batch_size_hist_ = &registry.histogram("aggregator.batch_size", labels,
                                           "Events per batch frame pumped through the "
                                           "aggregator",
                                           "events");
    batch_bytes_hist_ = &registry.histogram("aggregator.batch_bytes", labels,
                                            "Encoded bytes per batch frame pumped "
                                            "through the aggregator",
                                            "bytes");
    group_size_hist_ = &registry.histogram(
        "wal.group_size", labels,
        "Batch frames coalesced into one WAL commit group", "batches");
    group_commit_latency_hist_ = &registry.histogram(
        "wal.group_commit_latency", labels,
        "Wall time to commit one group (append + fsync)", "us");
  }
}

Aggregator::~Aggregator() { stop(); }

std::shared_ptr<msgq::Subscriber> Aggregator::inbox() const {
  auto inproc = std::dynamic_pointer_cast<transport::InProcReceiver>(input_);
  return inproc == nullptr ? nullptr : inproc->subscriber();
}

std::shared_ptr<msgq::Publisher> Aggregator::output() const {
  auto inproc = std::dynamic_pointer_cast<transport::InProcSender>(output_);
  return inproc == nullptr ? nullptr : inproc->publisher();
}

Status Aggregator::start() {
  if (running_.load()) return Status::ok();
  // A prior stop() closed the fan-in queues (they were fully drained by
  // the exiting loops); reopen them so stop()/start() cycles resume.
  input_->reopen();
  persist_queue_.reopen();
  running_.store(true);
  pump_thread_ = std::jthread([this](std::stop_token stop) { pump_loop(stop); });
  if (store_ != nullptr) {
    persist_thread_ = std::jthread([this](std::stop_token stop) { persist_loop(stop); });
    if (options_.purge_interval.count() > 0)
      purge_thread_ = std::jthread([this](std::stop_token stop) { purge_loop(stop); });
  }
  return Status::ok();
}

void Aggregator::stop() {
  if (!running_.load()) return;
  input_->close();
  if (pump_thread_.joinable()) {
    pump_thread_.request_stop();
    pump_thread_.join();
  }
  persist_queue_.close();
  if (persist_thread_.joinable()) {
    persist_thread_.request_stop();
    persist_thread_.join();
  }
  if (purge_thread_.joinable()) {
    purge_thread_.request_stop();
    purge_thread_.join();
  }
  running_.store(false);
}

void Aggregator::crash() {
  crashed_.store(true);
  if (!running_.load()) return;
  // Same teardown as stop(), but pump/persist exit on the crashed flag
  // without draining: whatever was buffered is lost, like process memory.
  stop();
}

Status Aggregator::restart() {
  // A self-inflicted fail-stop (injected crash, store append failure)
  // exits the worker loops but leaves running_ set; finish the teardown
  // before recovering.
  if (crashed_.load() && running_.load()) crash();
  if (running_.load()) return Status::ok();
  // The queues stay closed until start() reopens them (empty: a real
  // restart starts with no process memory). Reopening here would open a
  // drop window: a rewound collector could replay into the inbox while
  // store recovery below is still running, and start()'s reopen would
  // discard that frame as stale backlog — a permanently lost replay,
  // since the collector saw it accepted and moved on.
  if (options_.store) {
    // Release the old handle first (it holds the active WAL segment open),
    // then run genuine recovery from disk: segment scan, torn-tail
    // truncation, id resumption.
    store_.reset();
    eventstore::EventStoreOptions store_options = *options_.store;
    if (store_options.metrics == nullptr) store_options.metrics = options_.metrics;
    if (store_options.labels.empty()) store_options.labels = options_.labels;
    store_ = std::make_unique<eventstore::EventStore>(store_options);
    next_id_.store(store_->last_id() + 1);
  }
  rebuild_accepted_from_store();
  crashed_.store(false);
  return start();
}

std::size_t Aggregator::drain_once() {
  if (running_.load()) return 0;
  std::size_t frames = 0;
  while (auto message = input_->try_recv()) {
    if (process_frame(*message)) ++frames;
    if (crashed_.load(std::memory_order_relaxed)) break;
  }
  // Persist as groups of one: chaos schedules (crash on the Nth persist)
  // stay per-batch deterministic under synchronous draining.
  while (auto batch = persist_queue_.try_pop()) {
    if (!persist_group(std::span(&*batch, 1))) break;
  }
  return frames;
}

void Aggregator::ack(std::string_view source, std::uint64_t record_index) {
  if (ack_callback_ && record_index > 0) ack_callback_(source, record_index);
}

void Aggregator::rebuild_accepted_from_store() {
  accepted_seq_.clear();
  if (store_ == nullptr) return;
  // Peek (source, cookie) out of each durable payload without decoding
  // full events: the watermark map must reflect everything already
  // persisted so replays arriving after a restart are recognized.
  // Streamed via for_each_since — the store may hold far more events
  // than fit in memory, and only the watermark map needs to survive.
  auto status = store_->for_each_since(
      0, SIZE_MAX,
      [&](common::EventId, std::span<const std::byte> payload, bool) {
        auto source = core::peek_event_source(payload);
        auto cookie = core::peek_event_cookie(payload);
        if (!source || !cookie || cookie.value() == 0) return true;
        auto [it, inserted] = accepted_seq_.emplace(source.value(), cookie.value());
        if (!inserted) it->second = std::max(it->second, cookie.value());
        return true;
      });
  if (!status.is_ok())
    FSMON_WARN("aggregator", "accepted-watermark rebuild stopped early: ",
               status.to_string());
}

bool Aggregator::process_frame(transport::Frame& message) {
  // Sole-owner fast path: the collector adopted the buffer, every hop
  // since was a refcount move, so this hands out the original bytes for
  // the in-place id patch. A shared frame (multi-subscriber fan-in)
  // detaches here — one counted copy, never a torn patch.
  auto frame = message.payload.mutable_bytes();
  auto view = core::view_batch(frame);
  if (!view) {
    FSMON_WARN("aggregator", "dropping corrupt batch frame: ",
               view.status().to_string());
    return false;
  }
  if (view.value().count == 0) return false;

  // Replay dedup: a collector that restarted re-publishes every record
  // past its cleared index. Events whose (source, changelog-index) pair
  // is at or below the accepted watermark are already durable — trim
  // them so store delivery stays exactly-once. cookie==0 marks events
  // with no record identity (synthetic producers); never deduped.
  // Materialized (not a view): the frame buffer may be replaced below.
  std::string source;
  if (auto s = core::peek_event_source(frame.subspan(
          view.value().events[0].first, view.value().events[0].second))) {
    source.assign(s.value());
  }
  std::uint64_t watermark = 0;
  bool source_known = false;
  if (!source.empty()) {
    if (auto it = accepted_seq_.find(source); it != accepted_seq_.end()) {
      watermark = it->second;
      source_known = true;
    }
  }
  std::uint64_t frame_max_seq = 0;
  std::uint64_t frame_min_seq = 0;
  std::vector<std::pair<std::size_t, std::size_t>> kept;
  kept.reserve(view.value().events.size());
  for (const auto& [offset, length] : view.value().events) {
    auto cookie = core::peek_event_cookie(frame.subspan(offset, length));
    const std::uint64_t seq = cookie ? cookie.value() : 0;
    frame_max_seq = std::max(frame_max_seq, seq);
    if (seq != 0 && (frame_min_seq == 0 || seq < frame_min_seq)) frame_min_seq = seq;
    if (seq != 0 && seq <= watermark) continue;  // duplicate of a durable event
    kept.emplace_back(offset, length);
  }
  if (store_ != nullptr && source_known && frame_min_seq > watermark + 1) {
    // A hole between the watermark and this frame means records were lost
    // upstream — typically published while the inbox was closed across a
    // crash window. Accepting the frame would let its ack clear changelog
    // records that never reached the store, so refuse it: the collector
    // rewind replays the run contiguously, and the refused records stay
    // retained (visible) rather than lost (silent). A source with no
    // watermark entry is exempt — its first records may legitimately
    // start anywhere (changelog users register mid-stream).
    FSMON_WARN("aggregator", "refusing gapped frame from ", source, ": watermark ",
               watermark, ", frame starts at record ", frame_min_seq);
    if (gapped_counter_ != nullptr) gapped_counter_->inc();
    // The sender's transport-level send already succeeded, so the refusal
    // is invisible upstream; nack so the owning collector rewinds and
    // re-publishes the missing run instead of wedging on the gap.
    if (nack_callback_) nack_callback_(source, watermark);
    return false;
  }
  const std::size_t dropped = view.value().events.size() - kept.size();
  if (dropped > 0) {
    deduped_.fetch_add(dropped);
    if (deduped_counter_ != nullptr) deduped_counter_->inc(dropped);
  }
  if (!source.empty() && frame_max_seq > watermark)
    accepted_seq_[source] = frame_max_seq;
  if (kept.empty()) {
    // Nothing new. The ack still has to flow (a replayed-and-fully-
    // deduped batch must eventually clear from the changelog), but the
    // watermark only proves the records were *accepted* — the original
    // frame may still be waiting in the persist queue. Acking here
    // would let the changelog clear records that die with the process
    // if that persist fails, so route the ack through the persist queue
    // as an ack-only marker: it lands only after everything accepted
    // before it is durable.
    if (store_ != nullptr) {
      persist_queue_.push(PersistBatch{0, std::move(source), frame_max_seq, {}});
    } else {
      ack(source, frame_max_seq);
    }
    return false;
  }
  if (dropped > 0) {
    auto bytes = core::rebuild_batch(frame, kept);
    message.payload = transport::FrameRef::adopt(std::move(bytes));
    frame = message.payload.mutable_bytes();
    view = core::view_batch(frame, /*verify_crc=*/false);
    if (!view) return false;  // unreachable: rebuild produces valid frames
  }

  // Generic point first, then this instance's scoped point (set per
  // shard): a fault plan can hit every aggregator or exactly one.
  auto outcome = chaos::fault("aggregator.before_publish");
  if (!outcome && !options_.fault_scope.empty())
    outcome = chaos::fault(options_.fault_scope + "before_publish");
  if (outcome) {
    if (outcome.action == chaos::FaultAction::kCrash) {
      crashed_.store(true);
      return false;
    }
    if (outcome.action == chaos::FaultAction::kDelay) clock_.sleep_for(outcome.delay);
    if (outcome.action == chaos::FaultAction::kDrop) return false;
  }

  const std::size_t count = view.value().count;
  const common::EventId first_id = next_id_.fetch_add(count);
  if (auto patched = core::patch_batch_ids(frame, first_id); !patched) {
    FSMON_WARN("aggregator", "dropping unpatchable batch frame: ",
               patched.status().to_string());
    return false;
  }
  aggregated_.fetch_add(count);
  meter_.record(count);
  if (aggregated_counter_ != nullptr) {
    aggregated_counter_->inc(count);
    const auto depth =
        static_cast<std::int64_t>(input_->pending() + persist_queue_.size());
    queue_depth_gauge_->set(depth);
    queue_depth_peak_gauge_->set_max(depth);
    publish_rate_gauge_->set(static_cast<std::int64_t>(meter_.snapshot().average_rate));
    batch_size_hist_->record(count);
    batch_bytes_hist_->record(frame.size());
    const auto now = clock_.now();
    for (const auto& [offset, length] : view.value().events) {
      auto timestamp = core::peek_event_timestamp(frame.subspan(offset, length));
      if (!timestamp) continue;
      const auto lag = now - timestamp.value();
      if (lag.count() >= 0)
        fanout_lag_hist_->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(lag).count()));
    }
  }
  // Fan-out and persist share the same frame bytes: send() bumps the
  // refcount per subscriber, the persister keeps one more ref. No copy
  // is made on either path.
  //
  // A refusal here (accepted == 0 with a live audience) is the same
  // suffix-loss hazard the collector tier guards against: the frame is
  // about to be persisted and acked upstream, so nothing would ever
  // replay it to consumers. Retry while the audience is alive — the
  // refusal is a transient (reconnect window, injected drop) — and only
  // give up after a bounded back-off so a permanently dead consumer
  // cannot wedge the publish thread. receivers == 0 stays droppable:
  // nobody is listening, the store has the bytes.
  auto sent = output_->send(options_.output_topic, message.payload);
  for (int attempt = 0; sent.accepted == 0 && sent.receivers > 0 && attempt < 50;
       ++attempt) {
    if (publish_retried_counter_ != nullptr) publish_retried_counter_->inc();
    clock_.sleep_for(std::chrono::milliseconds(1));
    sent = output_->send(options_.output_topic, message.payload);
  }
  if (sent.accepted == 0 && sent.receivers > 0) {
    FSMON_WARN("aggregator", "fan-out still refused after retries; dropping frame ",
               "for topic ", options_.output_topic);
    if (publish_abandoned_counter_ != nullptr) publish_abandoned_counter_->inc();
  }
  if (store_ != nullptr) {
    persist_queue_.push(PersistBatch{first_id, std::move(source), frame_max_seq,
                                     std::move(message.payload)});
  } else {
    // No durable store: custody ends at fan-out, ack immediately.
    ack(source, frame_max_seq);
  }
  return true;
}

void Aggregator::pump_loop(std::stop_token) {
  // Publishing thread: drain the fan-in inbox one batch frame at a time,
  // assign an id block with a single fetch_add, patch the ids into the
  // already-encoded frame (no re-serialization), fan the frame out, and
  // hand the same bytes to the persister.
  for (;;) {
    if (crashed_.load(std::memory_order_relaxed)) break;
    auto message = input_->recv();
    if (!message) break;  // closed and drained
    process_frame(*message);
  }
}

bool Aggregator::persist_group(std::span<PersistBatch> group) {
  // Per-batch fault points first: chaos schedules count batches, not
  // groups, so a plan like "crash on the 3rd persist" fires at the same
  // batch it did under per-batch commit. A crash admits only the prefix
  // ahead of the firing batch — that prefix commits and acks (it would
  // have been durable before the crash under the old schedule), the
  // firing batch and everything after it die unacked.
  std::size_t admitted = group.size();
  bool crash_after_commit = false;
  for (std::size_t i = 0; i < group.size(); ++i) {
    auto outcome = chaos::fault("aggregator.before_persist");
    if (!outcome && !options_.fault_scope.empty())
      outcome = chaos::fault(options_.fault_scope + "before_persist");
    if (!outcome) continue;
    if (outcome.action == chaos::FaultAction::kCrash) {
      admitted = i;
      crash_after_commit = true;
      break;
    }
    if (outcome.action == chaos::FaultAction::kDelay) clock_.sleep_for(outcome.delay);
  }
  group = group.first(admitted);

  // Slice the admitted group into payload spans. Ids are consecutive
  // across the whole group (one pump thread assigns them in queue order;
  // ack-only markers carry no ids so they never break a run), so the
  // entire group commits with ONE vectored store append and ONE flush.
  std::vector<std::span<const std::byte>> payloads;
  common::EventId first_id = 0;
  std::size_t data_batches = 0;
  bool torn_crash = false;
  std::uint64_t torn_keep = 0;
  for (auto& batch : group) {
    if (batch.frame.empty()) continue;  // ack-only marker
    const auto frame = batch.frame.bytes();
    // CRC was verified (and rewritten by the id patch) in the pump; only
    // the structure is needed to slice out per-event payloads.
    auto view = core::view_batch(frame, /*verify_crc=*/false);
    if (!view) {
      FSMON_ERROR("aggregator", "persist batch unreadable: ", view.status().to_string());
      crashed_.store(true);
      return false;
    }
    if (data_batches == 0) first_id = batch.first_id;
    ++data_batches;
    for (const auto& [offset, length] : view.value().events)
      payloads.push_back(frame.subspan(offset, length));
  }

  if (data_batches > 0) {
    // Torn-group fault, evaluated once per commit group: kCrash keeps a
    // prefix of the group's batches (outcome.arg of them) durable but
    // crashes before ANY ack is released — the replayed suffix dedups
    // against the store's watermark after restart. kFail is a fail-stop
    // with nothing written.
    auto torn = chaos::fault("wal.group_commit_torn");
    if (!torn && !options_.fault_scope.empty())
      torn = chaos::fault(options_.fault_scope + "group_commit_torn");
    if (torn) {
      if (torn.action == chaos::FaultAction::kCrash) {
        torn_crash = true;
        torn_keep = std::min<std::uint64_t>(torn.arg, data_batches);
      } else if (torn.action == chaos::FaultAction::kFail ||
                 torn.action == chaos::FaultAction::kDrop) {
        FSMON_ERROR("aggregator", "injected group-commit failure (fail-stop)");
        crashed_.store(true);
        return false;
      } else if (torn.action == chaos::FaultAction::kDelay) {
        clock_.sleep_for(torn.delay);
      }
    }
    if (torn_crash) {
      // Truncate the commit to the torn prefix: re-slice payloads from
      // the first `torn_keep` data batches only.
      payloads.clear();
      std::size_t kept_batches = 0;
      for (auto& batch : group) {
        if (batch.frame.empty()) continue;
        if (kept_batches == torn_keep) break;
        const auto frame = batch.frame.bytes();
        auto view = core::view_batch(frame, /*verify_crc=*/false);
        for (const auto& [offset, length] : view.value().events)
          payloads.push_back(frame.subspan(offset, length));
        ++kept_batches;
      }
    }

    // Modeled commit latency (paper: one MySQL commit per stored group),
    // paid before the append so the group is durable only after the
    // round trip — exactly where a real remote commit would block.
    if (options_.commit_latency.count() > 0) clock_.sleep_for(options_.commit_latency);
    const auto commit_start = std::chrono::steady_clock::now();
    if (!payloads.empty()) {
      if (auto s = store_->append_batch(first_id, payloads); !s.is_ok()) {
        // Fail-stop: dropping the group here would break the "acked
        // implies durable" invariant, so the stage crashes instead. The
        // events stay unacked in the changelog and replay after restart.
        FSMON_ERROR("aggregator", "event store append failed (fail-stop): ", s.to_string());
        crashed_.store(true);
        return false;
      }
    }
    if (torn_crash) {
      // Torn mid-group: a durable prefix exists but the process died
      // before the group's fsync was acknowledged to anyone — no batch
      // of this group gets acked.
      crashed_.store(true);
      return false;
    }
    commit_groups_.fetch_add(1);
    if (group_size_hist_ != nullptr) group_size_hist_->record(data_batches);
    if (group_commit_latency_hist_ != nullptr) {
      const auto commit_us = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - commit_start);
      group_commit_latency_hist_->record(static_cast<std::uint64_t>(commit_us.count()));
    }
    persisted_.fetch_add(payloads.size());
    if (persisted_counter_ != nullptr) persisted_counter_->inc(payloads.size());
  }

  // The whole group is durable: release acks in queue order, markers
  // included (everything queued ahead of a marker committed with or
  // before this group).
  for (auto& batch : group) ack(batch.source, batch.last_seq);

  if (crash_after_commit) {
    crashed_.store(true);
    return false;
  }
  return true;
}

void Aggregator::persist_loop(std::stop_token) {
  std::vector<PersistBatch> group;
  for (;;) {
    if (crashed_.load(std::memory_order_relaxed)) break;
    auto first = persist_queue_.pop();
    if (!first) break;
    group.clear();
    group.push_back(std::move(*first));
    // Group commit: coalesce whatever is already queued (and optionally
    // wait wal_group_commit_us for stragglers) up to the byte budget,
    // then commit the whole group with one vectored append + one fsync.
    if (options_.wal_group_commit_bytes > 0) {
      std::size_t bytes = group.back().frame.size();
      while (bytes < options_.wal_group_commit_bytes) {
        auto next = persist_queue_.try_pop();
        if (!next && options_.wal_group_commit_us.count() > 0)
          next = persist_queue_.pop_for(options_.wal_group_commit_us);
        if (!next) break;
        bytes += next->frame.size();
        group.push_back(std::move(*next));
      }
    }
    persist_group(group);
  }
}

void Aggregator::purge_loop(std::stop_token stop) {
  // Sliced waiting so shutdown is prompt even with long purge intervals.
  const auto slice = std::chrono::milliseconds(10);
  auto remaining = options_.purge_interval;
  while (!stop.stop_requested()) {
    clock_.sleep_for(std::min<common::Duration>(slice, remaining));
    remaining -= slice;
    if (remaining.count() > 0) continue;
    remaining = options_.purge_interval;
    store_->purge_reported();
    purge_cycles_.fetch_add(1);
  }
}

Result<std::vector<core::StdEvent>> Aggregator::events_since(common::EventId after_id,
                                                             std::size_t max_events) const {
  if (store_ == nullptr)
    return Status(common::ErrorCode::kUnavailable, "aggregator has no event store");
  std::vector<core::StdEvent> out;
  for (const auto& stored : store_->events_since(after_id, max_events)) {
    auto decoded = core::deserialize_event(stored.payload);
    if (!decoded) return decoded.status();
    out.push_back(std::move(decoded.value().first));
  }
  return out;
}

void Aggregator::acknowledge(common::EventId up_to_id) {
  if (store_ != nullptr) store_->mark_reported(up_to_id);
}

std::size_t Aggregator::purge() { return store_ == nullptr ? 0 : store_->purge_reported(); }

}  // namespace fsmon::scalable
