#include "src/scalable/aggregator.hpp"

#include <algorithm>

#include "src/chaos/fault.hpp"
#include "src/common/logging.hpp"

namespace fsmon::scalable {

using common::Result;
using common::Status;

Aggregator::Aggregator(msgq::Bus& bus, std::string name, AggregatorOptions options,
                       common::Clock& clock)
    : bus_(bus),
      name_(std::move(name)),
      options_(std::move(options)),
      clock_(clock),
      inbox_(bus_.make_subscriber(name_ + "/inbox", options_.inbox_high_water_mark)),
      output_(bus_.make_publisher(name_ + "/out")),
      persist_queue_(options_.persist_queue_capacity),
      meter_(clock) {
  inbox_->subscribe("");  // fan-in: accept every collector topic
  if (options_.store) {
    eventstore::EventStoreOptions store_options = *options_.store;
    if (store_options.metrics == nullptr) store_options.metrics = options_.metrics;
    if (store_options.labels.empty()) store_options.labels = options_.labels;
    store_ = std::make_unique<eventstore::EventStore>(store_options);
    next_id_.store(store_->last_id() + 1);
    rebuild_accepted_from_store();
  }
  if (options_.metrics != nullptr) {
    deduped_counter_ = &options_.metrics->counter(
        "recovery.events_deduped", options_.labels,
        "Replayed duplicate events trimmed by the per-source watermark", "events");
    gapped_counter_ = &options_.metrics->counter(
        "recovery.gapped_frames", options_.labels,
        "Frames refused because they opened a hole above the durable watermark",
        "frames");
  }
  if (options_.metrics != nullptr) {
    auto& registry = *options_.metrics;
    const obs::Labels& labels = options_.labels;
    aggregated_counter_ = &registry.counter(
        "aggregator.events_aggregated", labels,
        "Events received from collectors and assigned global ids", "events");
    persisted_counter_ = &registry.counter("aggregator.events_persisted", labels,
                                           "Events appended to the reliable store", "events");
    queue_depth_gauge_ = &registry.gauge(
        "aggregator.queue_depth", labels,
        "Fan-in inbox plus persist-queue backlog at last pump", "events");
    queue_depth_peak_gauge_ = &registry.gauge("aggregator.queue_depth_peak", labels,
                                              "High-water mark of the fan-in backlog",
                                              "events");
    publish_rate_gauge_ = &registry.gauge("aggregator.publish_rate", labels,
                                          "Lifetime average events/second published",
                                          "events/s");
    fanout_lag_hist_ = &registry.histogram(
        "aggregator.fanout_lag_us", labels,
        "Operation timestamp to aggregator publish (fan-out lag)", "us");
    batch_size_hist_ = &registry.histogram("aggregator.batch_size", labels,
                                           "Events per batch frame pumped through the "
                                           "aggregator",
                                           "events");
    batch_bytes_hist_ = &registry.histogram("aggregator.batch_bytes", labels,
                                            "Encoded bytes per batch frame pumped "
                                            "through the aggregator",
                                            "bytes");
  }
}

Aggregator::~Aggregator() { stop(); }

Status Aggregator::start() {
  if (running_.load()) return Status::ok();
  // A prior stop() closed the fan-in queues (they were fully drained by
  // the exiting loops); reopen them so stop()/start() cycles resume.
  inbox_->reopen();
  persist_queue_.reopen();
  running_.store(true);
  pump_thread_ = std::jthread([this](std::stop_token stop) { pump_loop(stop); });
  if (store_ != nullptr) {
    persist_thread_ = std::jthread([this](std::stop_token stop) { persist_loop(stop); });
    if (options_.purge_interval.count() > 0)
      purge_thread_ = std::jthread([this](std::stop_token stop) { purge_loop(stop); });
  }
  return Status::ok();
}

void Aggregator::stop() {
  if (!running_.load()) return;
  inbox_->close();
  if (pump_thread_.joinable()) {
    pump_thread_.request_stop();
    pump_thread_.join();
  }
  persist_queue_.close();
  if (persist_thread_.joinable()) {
    persist_thread_.request_stop();
    persist_thread_.join();
  }
  if (purge_thread_.joinable()) {
    purge_thread_.request_stop();
    purge_thread_.join();
  }
  running_.store(false);
}

void Aggregator::crash() {
  crashed_.store(true);
  if (!running_.load()) return;
  // Same teardown as stop(), but pump/persist exit on the crashed flag
  // without draining: whatever was buffered is lost, like process memory.
  stop();
}

Status Aggregator::restart() {
  // A self-inflicted fail-stop (injected crash, store append failure)
  // exits the worker loops but leaves running_ set; finish the teardown
  // before recovering.
  if (crashed_.load() && running_.load()) crash();
  if (running_.load()) return Status::ok();
  // The queues stay closed until start() reopens them (empty: a real
  // restart starts with no process memory). Reopening here would open a
  // drop window: a rewound collector could replay into the inbox while
  // store recovery below is still running, and start()'s reopen would
  // discard that frame as stale backlog — a permanently lost replay,
  // since the collector saw it accepted and moved on.
  if (options_.store) {
    // Release the old handle first (it holds the active WAL segment open),
    // then run genuine recovery from disk: segment scan, torn-tail
    // truncation, id resumption.
    store_.reset();
    eventstore::EventStoreOptions store_options = *options_.store;
    if (store_options.metrics == nullptr) store_options.metrics = options_.metrics;
    if (store_options.labels.empty()) store_options.labels = options_.labels;
    store_ = std::make_unique<eventstore::EventStore>(store_options);
    next_id_.store(store_->last_id() + 1);
  }
  rebuild_accepted_from_store();
  crashed_.store(false);
  return start();
}

std::size_t Aggregator::drain_once() {
  if (running_.load()) return 0;
  std::size_t frames = 0;
  while (auto message = inbox_->try_recv()) {
    if (process_frame(*message)) ++frames;
    if (crashed_.load(std::memory_order_relaxed)) break;
  }
  while (auto batch = persist_queue_.try_pop()) {
    if (!persist_one(*batch)) break;
  }
  return frames;
}

void Aggregator::ack(std::string_view source, std::uint64_t record_index) {
  if (ack_callback_ && record_index > 0) ack_callback_(source, record_index);
}

void Aggregator::rebuild_accepted_from_store() {
  accepted_seq_.clear();
  if (store_ == nullptr) return;
  // Peek (source, cookie) out of each durable payload without decoding
  // full events: the watermark map must reflect everything already
  // persisted so replays arriving after a restart are recognized.
  // Streamed via for_each_since — the store may hold far more events
  // than fit in memory, and only the watermark map needs to survive.
  auto status = store_->for_each_since(
      0, SIZE_MAX,
      [&](common::EventId, std::span<const std::byte> payload, bool) {
        auto source = core::peek_event_source(payload);
        auto cookie = core::peek_event_cookie(payload);
        if (!source || !cookie || cookie.value() == 0) return true;
        auto [it, inserted] = accepted_seq_.emplace(source.value(), cookie.value());
        if (!inserted) it->second = std::max(it->second, cookie.value());
        return true;
      });
  if (!status.is_ok())
    FSMON_WARN("aggregator", "accepted-watermark rebuild stopped early: ",
               status.to_string());
}

bool Aggregator::process_frame(msgq::Message& message) {
  std::string& payload = message.payload;
  auto frame = std::as_writable_bytes(std::span(payload.data(), payload.size()));
  auto view = core::view_batch(frame);
  if (!view) {
    FSMON_WARN("aggregator", "dropping corrupt batch frame: ",
               view.status().to_string());
    return false;
  }
  if (view.value().count == 0) return false;

  // Replay dedup: a collector that restarted re-publishes every record
  // past its cleared index. Events whose (source, changelog-index) pair
  // is at or below the accepted watermark are already durable — trim
  // them so store delivery stays exactly-once. cookie==0 marks events
  // with no record identity (synthetic producers); never deduped.
  // Materialized (not a view): the frame buffer may be replaced below.
  std::string source;
  if (auto s = core::peek_event_source(frame.subspan(
          view.value().events[0].first, view.value().events[0].second))) {
    source.assign(s.value());
  }
  std::uint64_t watermark = 0;
  bool source_known = false;
  if (!source.empty()) {
    if (auto it = accepted_seq_.find(source); it != accepted_seq_.end()) {
      watermark = it->second;
      source_known = true;
    }
  }
  std::uint64_t frame_max_seq = 0;
  std::uint64_t frame_min_seq = 0;
  std::vector<std::pair<std::size_t, std::size_t>> kept;
  kept.reserve(view.value().events.size());
  for (const auto& [offset, length] : view.value().events) {
    auto cookie = core::peek_event_cookie(frame.subspan(offset, length));
    const std::uint64_t seq = cookie ? cookie.value() : 0;
    frame_max_seq = std::max(frame_max_seq, seq);
    if (seq != 0 && (frame_min_seq == 0 || seq < frame_min_seq)) frame_min_seq = seq;
    if (seq != 0 && seq <= watermark) continue;  // duplicate of a durable event
    kept.emplace_back(offset, length);
  }
  if (store_ != nullptr && source_known && frame_min_seq > watermark + 1) {
    // A hole between the watermark and this frame means records were lost
    // upstream — typically published while the inbox was closed across a
    // crash window. Accepting the frame would let its ack clear changelog
    // records that never reached the store, so refuse it: the collector
    // rewind replays the run contiguously, and the refused records stay
    // retained (visible) rather than lost (silent). A source with no
    // watermark entry is exempt — its first records may legitimately
    // start anywhere (changelog users register mid-stream).
    FSMON_WARN("aggregator", "refusing gapped frame from ", source, ": watermark ",
               watermark, ", frame starts at record ", frame_min_seq);
    if (gapped_counter_ != nullptr) gapped_counter_->inc();
    return false;
  }
  const std::size_t dropped = view.value().events.size() - kept.size();
  if (dropped > 0) {
    deduped_.fetch_add(dropped);
    if (deduped_counter_ != nullptr) deduped_counter_->inc(dropped);
  }
  if (!source.empty() && frame_max_seq > watermark)
    accepted_seq_[source] = frame_max_seq;
  std::string rebuilt;
  if (kept.empty()) {
    // Nothing new. The ack still has to flow (a replayed-and-fully-
    // deduped batch must eventually clear from the changelog), but the
    // watermark only proves the records were *accepted* — the original
    // frame may still be waiting in the persist queue. Acking here
    // would let the changelog clear records that die with the process
    // if that persist fails, so route the ack through the persist queue
    // as an ack-only marker: it lands only after everything accepted
    // before it is durable.
    if (store_ != nullptr) {
      persist_queue_.push(PersistBatch{0, std::move(source), frame_max_seq, {}});
    } else {
      ack(source, frame_max_seq);
    }
    return false;
  }
  if (dropped > 0) {
    auto bytes = core::rebuild_batch(frame, kept);
    rebuilt.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
    payload = std::move(rebuilt);
    frame = std::as_writable_bytes(std::span(payload.data(), payload.size()));
    view = core::view_batch(frame, /*verify_crc=*/false);
    if (!view) return false;  // unreachable: rebuild produces valid frames
  }

  // Generic point first, then this instance's scoped point (set per
  // shard): a fault plan can hit every aggregator or exactly one.
  auto outcome = chaos::fault("aggregator.before_publish");
  if (!outcome && !options_.fault_scope.empty())
    outcome = chaos::fault(options_.fault_scope + "before_publish");
  if (outcome) {
    if (outcome.action == chaos::FaultAction::kCrash) {
      crashed_.store(true);
      return false;
    }
    if (outcome.action == chaos::FaultAction::kDelay) clock_.sleep_for(outcome.delay);
    if (outcome.action == chaos::FaultAction::kDrop) return false;
  }

  const std::size_t count = view.value().count;
  const common::EventId first_id = next_id_.fetch_add(count);
  if (auto patched = core::patch_batch_ids(frame, first_id); !patched) {
    FSMON_WARN("aggregator", "dropping unpatchable batch frame: ",
               patched.status().to_string());
    return false;
  }
  aggregated_.fetch_add(count);
  meter_.record(count);
  if (aggregated_counter_ != nullptr) {
    aggregated_counter_->inc(count);
    const auto depth =
        static_cast<std::int64_t>(inbox_->pending() + persist_queue_.size());
    queue_depth_gauge_->set(depth);
    queue_depth_peak_gauge_->set_max(depth);
    publish_rate_gauge_->set(static_cast<std::int64_t>(meter_.snapshot().average_rate));
    batch_size_hist_->record(count);
    batch_bytes_hist_->record(frame.size());
    const auto now = clock_.now();
    for (const auto& [offset, length] : view.value().events) {
      auto timestamp = core::peek_event_timestamp(frame.subspan(offset, length));
      if (!timestamp) continue;
      const auto lag = now - timestamp.value();
      if (lag.count() >= 0)
        fanout_lag_hist_->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(lag).count()));
    }
  }
  // publish(const Message&) copies per subscriber, so the frame can be
  // moved on to the persister afterwards.
  msgq::Message out{options_.output_topic, std::move(payload)};
  output_->publish(out);
  if (store_ != nullptr) {
    persist_queue_.push(PersistBatch{first_id, std::move(source), frame_max_seq,
                                     std::move(out.payload)});
  } else {
    // No durable store: custody ends at fan-out, ack immediately.
    ack(source, frame_max_seq);
  }
  return true;
}

void Aggregator::pump_loop(std::stop_token) {
  // Publishing thread: drain the fan-in inbox one batch frame at a time,
  // assign an id block with a single fetch_add, patch the ids into the
  // already-encoded frame (no re-serialization), fan the frame out, and
  // hand the same bytes to the persister.
  for (;;) {
    if (crashed_.load(std::memory_order_relaxed)) break;
    auto message = inbox_->recv();
    if (!message) break;  // closed and drained
    process_frame(*message);
  }
}

bool Aggregator::persist_one(PersistBatch& batch) {
  auto outcome = chaos::fault("aggregator.before_persist");
  if (!outcome && !options_.fault_scope.empty())
    outcome = chaos::fault(options_.fault_scope + "before_persist");
  if (outcome) {
    if (outcome.action == chaos::FaultAction::kCrash) {
      crashed_.store(true);
      return false;
    }
    if (outcome.action == chaos::FaultAction::kDelay) clock_.sleep_for(outcome.delay);
  }
  if (batch.frame.empty()) {
    // Ack-only marker from a fully-deduped replay: every frame queued
    // ahead of it is durable now, so the ack is finally safe.
    ack(batch.source, batch.last_seq);
    return true;
  }
  const auto frame = std::as_bytes(std::span(batch.frame.data(), batch.frame.size()));
  // CRC was verified (and rewritten by the id patch) in the pump; only
  // the structure is needed to slice out per-event payloads.
  auto view = core::view_batch(frame, /*verify_crc=*/false);
  if (!view) {
    FSMON_ERROR("aggregator", "persist batch unreadable: ", view.status().to_string());
    crashed_.store(true);
    return false;
  }
  std::vector<std::span<const std::byte>> payloads;
  payloads.reserve(view.value().count);
  for (const auto& [offset, length] : view.value().events)
    payloads.push_back(frame.subspan(offset, length));
  // Modeled commit latency (paper: one MySQL commit per stored batch),
  // paid before the append so the batch is durable only after the
  // round trip — exactly where a real remote commit would block.
  if (options_.commit_latency.count() > 0) clock_.sleep_for(options_.commit_latency);
  if (auto s = store_->append_batch(batch.first_id, payloads); !s.is_ok()) {
    // Fail-stop: dropping the batch here would break the "acked implies
    // durable" invariant, so the stage crashes instead. The events stay
    // unacked in the changelog and replay after restart.
    FSMON_ERROR("aggregator", "event store append failed (fail-stop): ", s.to_string());
    crashed_.store(true);
    return false;
  }
  persisted_.fetch_add(payloads.size());
  if (persisted_counter_ != nullptr) persisted_counter_->inc(payloads.size());
  ack(batch.source, batch.last_seq);
  return true;
}

void Aggregator::persist_loop(std::stop_token) {
  for (;;) {
    if (crashed_.load(std::memory_order_relaxed)) break;
    auto batch = persist_queue_.pop();
    if (!batch) break;
    if (!persist_one(*batch)) {
      if (crashed_.load(std::memory_order_relaxed)) break;
    }
  }
}

void Aggregator::purge_loop(std::stop_token stop) {
  // Sliced waiting so shutdown is prompt even with long purge intervals.
  const auto slice = std::chrono::milliseconds(10);
  auto remaining = options_.purge_interval;
  while (!stop.stop_requested()) {
    clock_.sleep_for(std::min<common::Duration>(slice, remaining));
    remaining -= slice;
    if (remaining.count() > 0) continue;
    remaining = options_.purge_interval;
    store_->purge_reported();
    purge_cycles_.fetch_add(1);
  }
}

Result<std::vector<core::StdEvent>> Aggregator::events_since(common::EventId after_id,
                                                             std::size_t max_events) const {
  if (store_ == nullptr)
    return Status(common::ErrorCode::kUnavailable, "aggregator has no event store");
  std::vector<core::StdEvent> out;
  for (const auto& stored : store_->events_since(after_id, max_events)) {
    auto decoded = core::deserialize_event(stored.payload);
    if (!decoded) return decoded.status();
    out.push_back(std::move(decoded.value().first));
  }
  return out;
}

void Aggregator::acknowledge(common::EventId up_to_id) {
  if (store_ != nullptr) store_->mark_reported(up_to_id);
}

std::size_t Aggregator::purge() { return store_ == nullptr ? 0 : store_->purge_reported(); }

}  // namespace fsmon::scalable
