#include "src/scalable/aggregator.hpp"

#include "src/common/logging.hpp"

namespace fsmon::scalable {

using common::Result;
using common::Status;

Aggregator::Aggregator(msgq::Bus& bus, std::string name, AggregatorOptions options,
                       common::Clock& clock)
    : bus_(bus),
      name_(std::move(name)),
      options_(std::move(options)),
      clock_(clock),
      inbox_(bus_.make_subscriber(name_ + "/inbox", options_.inbox_high_water_mark)),
      output_(bus_.make_publisher(name_ + "/out")),
      persist_queue_(options_.persist_queue_capacity),
      meter_(clock) {
  inbox_->subscribe("");  // fan-in: accept every collector topic
  if (options_.store) {
    eventstore::EventStoreOptions store_options = *options_.store;
    if (store_options.metrics == nullptr) store_options.metrics = options_.metrics;
    store_ = std::make_unique<eventstore::EventStore>(store_options);
    next_id_.store(store_->last_id() + 1);
  }
  if (options_.metrics != nullptr) {
    auto& registry = *options_.metrics;
    aggregated_counter_ = &registry.counter(
        "aggregator.events_aggregated", {},
        "Events received from collectors and assigned global ids", "events");
    persisted_counter_ = &registry.counter("aggregator.events_persisted", {},
                                           "Events appended to the reliable store", "events");
    queue_depth_gauge_ = &registry.gauge(
        "aggregator.queue_depth", {},
        "Fan-in inbox plus persist-queue backlog at last pump", "events");
    queue_depth_peak_gauge_ = &registry.gauge("aggregator.queue_depth_peak", {},
                                              "High-water mark of the fan-in backlog",
                                              "events");
    publish_rate_gauge_ = &registry.gauge("aggregator.publish_rate", {},
                                          "Lifetime average events/second published",
                                          "events/s");
    fanout_lag_hist_ = &registry.histogram(
        "aggregator.fanout_lag_us", {},
        "Operation timestamp to aggregator publish (fan-out lag)", "us");
    batch_size_hist_ = &registry.histogram("aggregator.batch_size", {},
                                           "Events per batch frame pumped through the "
                                           "aggregator",
                                           "events");
    batch_bytes_hist_ = &registry.histogram("aggregator.batch_bytes", {},
                                            "Encoded bytes per batch frame pumped "
                                            "through the aggregator",
                                            "bytes");
  }
}

Aggregator::~Aggregator() { stop(); }

Status Aggregator::start() {
  if (running_.load()) return Status::ok();
  running_.store(true);
  pump_thread_ = std::jthread([this](std::stop_token stop) { pump_loop(stop); });
  if (store_ != nullptr) {
    persist_thread_ = std::jthread([this](std::stop_token stop) { persist_loop(stop); });
    if (options_.purge_interval.count() > 0)
      purge_thread_ = std::jthread([this](std::stop_token stop) { purge_loop(stop); });
  }
  return Status::ok();
}

void Aggregator::stop() {
  if (!running_.load()) return;
  inbox_->close();
  if (pump_thread_.joinable()) {
    pump_thread_.request_stop();
    pump_thread_.join();
  }
  persist_queue_.close();
  if (persist_thread_.joinable()) {
    persist_thread_.request_stop();
    persist_thread_.join();
  }
  if (purge_thread_.joinable()) {
    purge_thread_.request_stop();
    purge_thread_.join();
  }
  running_.store(false);
}

void Aggregator::pump_loop(std::stop_token) {
  // Publishing thread: drain the fan-in inbox one batch frame at a time,
  // assign an id block with a single fetch_add, patch the ids into the
  // already-encoded frame (no re-serialization), fan the frame out, and
  // hand the same bytes to the persister.
  for (;;) {
    auto message = inbox_->recv();
    if (!message) break;  // closed and drained
    std::string& payload = message->payload;
    const auto frame = std::as_writable_bytes(std::span(payload.data(), payload.size()));
    auto view = core::view_batch(frame);
    if (!view) {
      FSMON_WARN("aggregator", "dropping corrupt batch frame: ",
                 view.status().to_string());
      continue;
    }
    const std::size_t count = view.value().count;
    if (count == 0) continue;
    const common::EventId first_id = next_id_.fetch_add(count);
    if (auto patched = core::patch_batch_ids(frame, first_id); !patched) {
      FSMON_WARN("aggregator", "dropping unpatchable batch frame: ",
                 patched.status().to_string());
      continue;
    }
    aggregated_.fetch_add(count);
    meter_.record(count);
    if (aggregated_counter_ != nullptr) {
      aggregated_counter_->inc(count);
      const auto depth =
          static_cast<std::int64_t>(inbox_->pending() + persist_queue_.size());
      queue_depth_gauge_->set(depth);
      queue_depth_peak_gauge_->set_max(depth);
      publish_rate_gauge_->set(static_cast<std::int64_t>(meter_.snapshot().average_rate));
      batch_size_hist_->record(count);
      batch_bytes_hist_->record(frame.size());
      const auto now = clock_.now();
      for (const auto& [offset, length] : view.value().events) {
        auto timestamp = core::peek_event_timestamp(frame.subspan(offset, length));
        if (!timestamp) continue;
        const auto lag = now - timestamp.value();
        if (lag.count() >= 0)
          fanout_lag_hist_->record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(lag).count()));
      }
    }
    // publish(const Message&) copies per subscriber, so the frame can be
    // moved on to the persister afterwards.
    msgq::Message out{options_.output_topic, std::move(payload)};
    output_->publish(out);
    if (store_ != nullptr)
      persist_queue_.push(PersistBatch{first_id, std::move(out.payload)});
  }
}

void Aggregator::persist_loop(std::stop_token) {
  for (;;) {
    auto batch = persist_queue_.pop();
    if (!batch) break;
    const auto frame =
        std::as_bytes(std::span(batch->frame.data(), batch->frame.size()));
    // CRC was verified (and rewritten by the id patch) in the pump; only
    // the structure is needed to slice out per-event payloads.
    auto view = core::view_batch(frame, /*verify_crc=*/false);
    if (!view) {
      FSMON_ERROR("aggregator", "persist batch unreadable: ", view.status().to_string());
      continue;
    }
    std::vector<std::span<const std::byte>> payloads;
    payloads.reserve(view.value().count);
    for (const auto& [offset, length] : view.value().events)
      payloads.push_back(frame.subspan(offset, length));
    if (auto s = store_->append_batch(batch->first_id, payloads); !s.is_ok()) {
      FSMON_ERROR("aggregator", "event store append failed: ", s.to_string());
    } else {
      persisted_.fetch_add(payloads.size());
      if (persisted_counter_ != nullptr) persisted_counter_->inc(payloads.size());
    }
  }
}

void Aggregator::purge_loop(std::stop_token stop) {
  // Sliced waiting so shutdown is prompt even with long purge intervals.
  const auto slice = std::chrono::milliseconds(10);
  auto remaining = options_.purge_interval;
  while (!stop.stop_requested()) {
    clock_.sleep_for(std::min<common::Duration>(slice, remaining));
    remaining -= slice;
    if (remaining.count() > 0) continue;
    remaining = options_.purge_interval;
    store_->purge_reported();
    purge_cycles_.fetch_add(1);
  }
}

Result<std::vector<core::StdEvent>> Aggregator::events_since(common::EventId after_id,
                                                             std::size_t max_events) const {
  if (store_ == nullptr)
    return Status(common::ErrorCode::kUnavailable, "aggregator has no event store");
  std::vector<core::StdEvent> out;
  for (const auto& stored : store_->events_since(after_id, max_events)) {
    auto decoded = core::deserialize_event(stored.payload);
    if (!decoded) return decoded.status();
    out.push_back(std::move(decoded.value().first));
  }
  return out;
}

void Aggregator::acknowledge(common::EventId up_to_id) {
  if (store_ != nullptr) store_->mark_reported(up_to_id);
}

std::size_t Aggregator::purge() { return store_ == nullptr ? 0 : store_->purge_reported(); }

}  // namespace fsmon::scalable
