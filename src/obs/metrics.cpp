#include "src/obs/metrics.hpp"

namespace fsmon::obs {

std::string_view to_string(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

namespace {

std::string instrument_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  key.push_back('\0');
  for (const auto& [k, v] : labels) {
    key += k;
    key.push_back('=');
    key += v;
    key.push_back(',');
  }
  return key;
}

}  // namespace

std::uint64_t MetricsSnapshot::counter_total(std::string_view name) const {
  std::uint64_t total = 0;
  for (const auto& sample : samples) {
    if (sample.name == name && sample.type == MetricType::kCounter) total += sample.counter;
  }
  return total;
}

std::int64_t MetricsSnapshot::gauge_total(std::string_view name) const {
  std::int64_t total = 0;
  for (const auto& sample : samples) {
    if (sample.name == name && sample.type == MetricType::kGauge) total += sample.gauge;
  }
  return total;
}

common::Histogram MetricsSnapshot::histogram_merged(std::string_view name) const {
  common::Histogram merged;
  for (const auto& sample : samples) {
    if (sample.name == name && sample.type == MetricType::kHistogram)
      merged.merge(sample.histogram);
  }
  return merged;
}

bool MetricsSnapshot::contains(std::string_view name) const {
  for (const auto& sample : samples) {
    if (sample.name == name) return true;
  }
  return false;
}

MetricsRegistry::Instrument& MetricsRegistry::get_or_create(std::string_view name,
                                                            Labels&& labels, MetricType type,
                                                            std::string_view help,
                                                            std::string_view unit) {
  std::lock_guard lock(mu_);
  const std::string key = instrument_key(name, labels);
  auto it = instruments_.find(key);
  if (it == instruments_.end()) {
    Instrument instrument;
    instrument.name = std::string(name);
    instrument.labels = std::move(labels);
    instrument.type = type;
    instrument.help = std::string(help);
    instrument.unit = std::string(unit);
    switch (type) {
      case MetricType::kCounter: instrument.counter = std::make_unique<Counter>(); break;
      case MetricType::kGauge: instrument.gauge = std::make_unique<Gauge>(); break;
      case MetricType::kHistogram:
        instrument.histogram = std::make_unique<HistogramMetric>();
        break;
    }
    it = instruments_.emplace(key, std::move(instrument)).first;
  } else if (it->second.type != type) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' re-registered with a different type");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels, std::string_view help,
                                  std::string_view unit) {
  return *get_or_create(name, std::move(labels), MetricType::kCounter, help, unit).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels, std::string_view help,
                              std::string_view unit) {
  return *get_or_create(name, std::move(labels), MetricType::kGauge, help, unit).gauge;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name, Labels labels,
                                            std::string_view help, std::string_view unit) {
  return *get_or_create(name, std::move(labels), MetricType::kHistogram, help, unit).histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  MetricsSnapshot snap;
  snap.samples.reserve(instruments_.size());
  for (const auto& [key, instrument] : instruments_) {
    MetricSample sample;
    sample.name = instrument.name;
    sample.labels = instrument.labels;
    sample.type = instrument.type;
    sample.help = instrument.help;
    sample.unit = instrument.unit;
    switch (instrument.type) {
      case MetricType::kCounter: sample.counter = instrument.counter->value(); break;
      case MetricType::kGauge: sample.gauge = instrument.gauge->value(); break;
      case MetricType::kHistogram: sample.histogram = instrument.histogram->snapshot(); break;
    }
    snap.samples.push_back(std::move(sample));
  }
  return snap;
}

std::size_t MetricsRegistry::instrument_count() const {
  std::lock_guard lock(mu_);
  return instruments_.size();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace fsmon::obs
