// Pipeline-wide metrics registry (the observability substrate).
//
// The paper's evaluation is a set of per-stage statistics — capture rate
// (Table III), reporting rate (Tables V/VI), fid2path cache hit ratio
// (Table VIII), per-stage CPU/memory (Tables IV/VII) — yet each bench
// used to hand-roll its own counters and the running monitor was a black
// box. This registry gives every stage a shared, named vocabulary:
//
//   - Counter:   monotonic u64 (records read, events published, bytes).
//   - Gauge:     instantaneous i64 set by its owner (queue depth, lag).
//   - Histogram: thread-safe wrapper over common::Histogram (latencies,
//                batch sizes).
//
// Design notes:
//   - Lock-cheap: registration (get-or-create by name+labels) takes the
//     registry mutex once; the returned handle is a stable reference and
//     every hot-path update is a relaxed atomic (counters/gauges) or a
//     short per-instrument mutex (histograms).
//   - Instruments are identified by a dotted name ("collector.
//     records_published") plus a label map ({mdt="0"}). The same name
//     with different labels yields distinct instruments (one per MDT).
//   - snapshot() returns a deep copy: exporters format it without
//     holding up the pipeline, and a taken snapshot never changes.
//
// Components take an optional `MetricsRegistry*` (null = uninstrumented,
// zero overhead); docs/OBSERVABILITY.md catalogues every metric name and
// the paper table it reproduces.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/histogram.hpp"

namespace fsmon::obs {

/// Sorted key=value pairs qualifying an instrument (e.g. {mdt="0"}).
using Labels = std::map<std::string, std::string>;

enum class MetricType { kCounter, kGauge, kHistogram };

std::string_view to_string(MetricType type);

/// Monotonic counter. All updates are relaxed atomics.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous value set by its owning stage (queue depth, lag, size).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  /// Raise to `v` if above the current value (peak tracking).
  void set_max(std::int64_t v) {
    std::int64_t current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Thread-safe histogram of values in the caller's unit (exponential
/// buckets; see common::Histogram).
class HistogramMetric {
 public:
  void record(std::uint64_t value) {
    std::lock_guard lock(mu_);
    hist_.record(value);
  }

  /// Deep copy for exporters; later record() calls do not affect it.
  common::Histogram snapshot() const {
    std::lock_guard lock(mu_);
    return hist_;
  }

 private:
  mutable std::mutex mu_;
  common::Histogram hist_;
};

/// One exported sample: the state of one instrument at snapshot time.
struct MetricSample {
  std::string name;
  Labels labels;
  MetricType type = MetricType::kCounter;
  std::string help;
  std::string unit;             ///< "us", "bytes", "records", ... ("" = plain count)
  std::uint64_t counter = 0;    ///< kCounter
  std::int64_t gauge = 0;       ///< kGauge
  common::Histogram histogram;  ///< kHistogram
};

/// Immutable deep copy of a registry's instruments.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;  ///< Sorted by (name, labels).

  /// Sum of a counter across all label sets (0 when unregistered).
  std::uint64_t counter_total(std::string_view name) const;
  /// Gauge value summed across label sets (0 when unregistered).
  std::int64_t gauge_total(std::string_view name) const;
  /// Merged histogram across label sets (empty when unregistered).
  common::Histogram histogram_merged(std::string_view name) const;
  bool contains(std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. The returned reference stays valid for the registry's
  /// lifetime. `help`/`unit` are recorded on first registration.
  Counter& counter(std::string_view name, Labels labels = {}, std::string_view help = "",
                   std::string_view unit = "");
  Gauge& gauge(std::string_view name, Labels labels = {}, std::string_view help = "",
               std::string_view unit = "");
  HistogramMetric& histogram(std::string_view name, Labels labels = {},
                             std::string_view help = "", std::string_view unit = "");

  /// Deep, isolated copy of every instrument.
  MetricsSnapshot snapshot() const;

  std::size_t instrument_count() const;

  /// Process-wide shared registry for tools that do not inject one.
  static MetricsRegistry& global();

 private:
  struct Instrument {
    std::string name;
    Labels labels;
    MetricType type;
    std::string help;
    std::string unit;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Instrument& get_or_create(std::string_view name, Labels&& labels, MetricType type,
                            std::string_view help, std::string_view unit);

  mutable std::mutex mu_;
  // Key: name + '\0' + serialized labels. std::map keeps snapshot order
  // deterministic (sorted), which the golden-format tests rely on.
  std::map<std::string, Instrument> instruments_;
};

}  // namespace fsmon::obs
