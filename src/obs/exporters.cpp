#include "src/obs/exporters.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace fsmon::obs {

using common::ErrorCode;
using common::Status;

namespace {

void append_json_escaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

std::string json_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void append_json_labels(std::string& out, const Labels& labels) {
  out += "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_json_escaped(out, k);
    out += "\":\"";
    append_json_escaped(out, v);
    out += "\"";
  }
  out += "}";
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; we map '.' and anything
/// else to '_' and prefix with "fsmon_".
std::string prometheus_name(std::string_view name) {
  std::string out = "fsmon_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prometheus_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + v + "\"";
  }
  out += "}";
  return out;
}

/// Labels plus one extra pair, for histogram quantile/le series.
std::string prometheus_labels_plus(const Labels& labels, const std::string& key,
                                   const std::string& value) {
  Labels extended = labels;
  extended[key] = value;
  return prometheus_labels(extended);
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"metrics\":[\n";
  bool first = true;
  for (const auto& sample : snapshot.samples) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"name\":\"";
    append_json_escaped(out, sample.name);
    out += "\",\"type\":\"";
    out += to_string(sample.type);
    out += "\",\"labels\":";
    append_json_labels(out, sample.labels);
    if (!sample.unit.empty()) {
      out += ",\"unit\":\"";
      append_json_escaped(out, sample.unit);
      out += "\"";
    }
    char buf[96];
    switch (sample.type) {
      case MetricType::kCounter:
        std::snprintf(buf, sizeof(buf), ",\"value\":%" PRIu64, sample.counter);
        out += buf;
        break;
      case MetricType::kGauge:
        std::snprintf(buf, sizeof(buf), ",\"value\":%" PRId64, sample.gauge);
        out += buf;
        break;
      case MetricType::kHistogram: {
        const auto& h = sample.histogram;
        std::snprintf(buf, sizeof(buf), ",\"count\":%" PRIu64 ",\"sum\":%" PRIu64,
                      h.count(), h.sum());
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"min\":%" PRIu64 ",\"max\":%" PRIu64, h.min(),
                      h.max());
        out += buf;
        out += ",\"mean\":" + json_number(h.mean());
        out += ",\"p50\":" + json_number(h.quantile(0.5));
        out += ",\"p90\":" + json_number(h.quantile(0.9));
        out += ",\"p99\":" + json_number(h.quantile(0.99));
        break;
      }
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_name;
  for (const auto& sample : snapshot.samples) {
    const std::string name = prometheus_name(sample.name);
    if (sample.name != last_name) {
      // HELP/TYPE once per family, even when several label sets follow.
      if (!sample.help.empty()) out += "# HELP " + name + " " + sample.help + "\n";
      out += "# TYPE " + name + " " +
             (sample.type == MetricType::kHistogram
                  ? "histogram"
                  : std::string(to_string(sample.type))) +
             "\n";
      last_name = sample.name;
    }
    char buf[64];
    switch (sample.type) {
      case MetricType::kCounter:
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", sample.counter);
        out += name + prometheus_labels(sample.labels) + buf;
        break;
      case MetricType::kGauge:
        std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", sample.gauge);
        out += name + prometheus_labels(sample.labels) + buf;
        break;
      case MetricType::kHistogram: {
        const auto& h = sample.histogram;
        for (const auto& bucket : h.cumulative_buckets()) {
          std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", bucket.cumulative_count);
          out += name + "_bucket" +
                 prometheus_labels_plus(sample.labels, "le",
                                        std::to_string(bucket.upper_bound)) +
                 buf;
        }
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h.count());
        out += name + "_bucket" + prometheus_labels_plus(sample.labels, "le", "+Inf") + buf;
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h.sum());
        out += name + "_sum" + prometheus_labels(sample.labels) + buf;
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h.count());
        out += name + "_count" + prometheus_labels(sample.labels) + buf;
        break;
      }
    }
  }
  return out;
}

std::string format(const MetricsSnapshot& snapshot, ExportFormat fmt) {
  return fmt == ExportFormat::kJson ? to_json(snapshot) : to_prometheus(snapshot);
}

Status write_snapshot(const MetricsRegistry& registry, const std::filesystem::path& path,
                      ExportFormat fmt) {
  const std::string text = format(registry.snapshot(), fmt);
  std::error_code ec;
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path(), ec);
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status(ErrorCode::kUnavailable, "cannot write " + tmp.string());
    out << text;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status(ErrorCode::kUnavailable, "rename to " + path.string() + " failed");
  return Status::ok();
}

SnapshotWriter::SnapshotWriter(const MetricsRegistry& registry, Options options,
                               common::Clock& clock)
    : registry_(registry), options_(std::move(options)), clock_(clock) {}

SnapshotWriter::~SnapshotWriter() { stop(); }

Status SnapshotWriter::start() {
  if (running_.load()) return Status::ok();
  // Fail fast if the path is unwritable rather than from the thread.
  if (auto s = write_snapshot(registry_, options_.path, options_.format); !s.is_ok()) return s;
  writes_.fetch_add(1);
  running_.store(true);
  worker_ = std::jthread([this](std::stop_token stop) { run(stop); });
  return Status::ok();
}

void SnapshotWriter::stop() {
  if (!running_.exchange(false)) return;
  if (worker_.joinable()) {
    worker_.request_stop();
    worker_.join();
  }
  // Final snapshot so the file reflects end-of-run totals.
  if (write_snapshot(registry_, options_.path, options_.format).is_ok()) writes_.fetch_add(1);
}

void SnapshotWriter::run(std::stop_token stop) {
  // Sliced waiting so shutdown is prompt even with long intervals.
  const auto slice = std::chrono::milliseconds(10);
  auto remaining = options_.interval;
  while (!stop.stop_requested()) {
    clock_.sleep_for(std::min<common::Duration>(slice, remaining));
    remaining -= slice;
    if (remaining.count() > 0) continue;
    remaining = options_.interval;
    if (write_snapshot(registry_, options_.path, options_.format).is_ok())
      writes_.fetch_add(1);
  }
}

std::unique_ptr<SnapshotWriter> exporter_from_config(const MetricsRegistry& registry,
                                                     const common::Config& config,
                                                     common::Clock& clock) {
  const std::string path = config.get_or("metrics.path", "");
  if (path.empty()) return nullptr;
  SnapshotWriter::Options options;
  options.path = path;
  options.format = config.get_or("metrics.format", "json") == "prometheus"
                       ? ExportFormat::kPrometheus
                       : ExportFormat::kJson;
  options.interval =
      std::chrono::milliseconds(config.get_int("metrics.interval_ms", 1000));
  return std::make_unique<SnapshotWriter>(registry, std::move(options), clock);
}

}  // namespace fsmon::obs
