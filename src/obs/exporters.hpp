// Metrics exporters: JSON snapshots and Prometheus text format.
//
// Two consumers of a MetricsSnapshot:
//   - to_json(): one metric object per line, deterministic order — the
//     format sim_driver, the benches, and examples/quickstart dump at
//     exit, and what tools/run_tier1.sh greps.
//   - to_prometheus(): the Prometheus text exposition format ("fsmon_"
//     prefix, '.' -> '_', HELP/TYPE comments, cumulative `le` buckets),
//     for scraping a long-running monitor.
//
// SnapshotWriter runs a background thread that re-writes a snapshot file
// every interval (atomic tmp+rename), so an operator can watch a live
// pipeline with `watch cat metrics.json`. exporter_from_config() builds
// one from common::Config keys:
//
//   metrics.path         output file ("" disables; "-" = stdout one-shot)
//   metrics.format       json (default) | prometheus
//   metrics.interval_ms  rewrite period (default 1000)
#pragma once

#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "src/common/clock.hpp"
#include "src/common/config.hpp"
#include "src/common/status.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::obs {

enum class ExportFormat { kJson, kPrometheus };

/// Render a snapshot as JSON: {"metrics":[...]} with one sample object
/// per line, sorted by (name, labels). Histograms carry count/sum/min/
/// max/mean/p50/p90/p99.
std::string to_json(const MetricsSnapshot& snapshot);

/// Render a snapshot in the Prometheus text exposition format.
std::string to_prometheus(const MetricsSnapshot& snapshot);

std::string format(const MetricsSnapshot& snapshot, ExportFormat format);

/// One-shot: snapshot `registry` and write it to `path` (atomically, via
/// a temp file + rename).
common::Status write_snapshot(const MetricsRegistry& registry,
                              const std::filesystem::path& path, ExportFormat format);

/// Periodic snapshot file writer (the "live dashboard file" exporter).
class SnapshotWriter {
 public:
  struct Options {
    std::filesystem::path path;
    ExportFormat format = ExportFormat::kJson;
    common::Duration interval = std::chrono::seconds(1);
  };

  SnapshotWriter(const MetricsRegistry& registry, Options options,
                 common::Clock& clock = common::RealClock::instance());
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  common::Status start();
  /// Stops the thread and writes one final snapshot.
  void stop();

  std::uint64_t writes() const { return writes_.load(); }
  const Options& options() const { return options_; }

 private:
  void run(std::stop_token stop);

  const MetricsRegistry& registry_;
  Options options_;
  common::Clock& clock_;
  std::jthread worker_;
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<bool> running_{false};
};

/// Build a SnapshotWriter from `metrics.*` config keys; null when
/// `metrics.path` is unset/empty (exporting disabled).
std::unique_ptr<SnapshotWriter> exporter_from_config(const MetricsRegistry& registry,
                                                     const common::Config& config,
                                                     common::Clock& clock =
                                                         common::RealClock::instance());

}  // namespace fsmon::obs
