// Table VIII reproduction: FSMonitor performance vs fid2path-cache size
// on Iota (one MDS, mixed Evaluate_Performance_Script), plus the
// resolver-pool sweep: resolver threads x cache size with modeled
// fid2path cost paid for real (RealClock), checking that the pool
// multiplies the reporting rate while publishing the identical per-MDT
// event order. Emits BENCH_resolution.json for the sweep.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/scalable/scalable_monitor.hpp"
#include "src/scalable/sim_driver.hpp"

using namespace fsmon;

namespace {

struct SweepResult {
  std::size_t resolver_threads = 0;
  std::size_t cache_size = 0;
  std::size_t events = 0;
  double seconds = 0;
  double events_per_sec = 0;
  double hit_rate = 0;
  std::uint64_t coalesced = 0;
  double speedup_vs_serial = 1.0;
  bool order_identical_to_serial = true;
  std::vector<std::byte> wire_bytes;  // concatenated serialized events
};

/// One collector run over kTriples create/rename/unlink triples with the
/// modeled fid2path cost actually slept (base_latency enables the sleep
/// gate; workers overlap the nanosleeps, which is where the pool's
/// speedup comes from on any core count).
SweepResult run_sweep_config(std::size_t resolver_threads, std::size_t cache_size) {
  constexpr int kTriples = 1200;
  common::RealClock clock;
  lustre::LustreFs fs(lustre::LustreFsOptions{}, clock);
  msgq::Bus bus;
  auto inbox = bus.make_subscriber("inbox", 1 << 16);
  inbox->subscribe("");
  auto publisher = bus.make_publisher("pub");
  publisher->connect(inbox);

  obs::MetricsRegistry registry;
  scalable::CollectorOptions options;
  options.cache_size = cache_size;
  options.resolver_threads = resolver_threads;
  options.costs.base_latency = std::chrono::microseconds(1);
  options.resolver.base_cost = std::chrono::microseconds(150);
  options.resolver.per_component_cost = std::chrono::microseconds(5);
  options.metrics = &registry;
  scalable::Collector collector(fs, 0, publisher, options, clock);

  for (int i = 0; i < kTriples; ++i) {
    const std::string f = "/f" + std::to_string(i);
    const std::string r = "/r" + std::to_string(i);
    fs.create(f);
    fs.rename(f, r);
    fs.unlink(r);
  }

  const auto start = std::chrono::steady_clock::now();
  collector.drain_once();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  SweepResult result;
  result.resolver_threads = resolver_threads;
  result.cache_size = cache_size;
  result.seconds = std::chrono::duration<double>(elapsed).count();
  while (auto message = inbox->try_recv()) {
    auto batch = core::decode_batch(
        std::as_bytes(std::span(message->payload.data(), message->payload.size())));
    if (!batch.is_ok()) continue;
    for (auto& event : batch.value().events) {
      // Timestamps are real wall-clock instants of this run's fs ops, so
      // they can never match across runs; blank them so wire_bytes
      // compares ordering and content only.
      event.timestamp = {};
      core::serialize_event(event, result.wire_bytes);
      ++result.events;
    }
  }
  result.events_per_sec =
      result.seconds > 0 ? static_cast<double>(result.events) / result.seconds : 0;
  const auto snapshot = registry.snapshot();
  result.hit_rate = bench::cache_hit_rate(snapshot);
  result.coalesced = snapshot.counter_total("fid2path.coalesced");
  return result;
}

void run_resolver_sweep() {
  bench::banner(
      "Resolver-pool sweep: resolver threads x cache size (modeled fid2path "
      "cost paid for real)");

  const std::size_t thread_counts[] = {1, 2, 4};
  const std::size_t cache_sizes[] = {0, 5000};
  std::vector<SweepResult> results;
  for (std::size_t cache : cache_sizes) {
    SweepResult serial;  // copied baseline — results may reallocate
    for (std::size_t threads : thread_counts) {
      SweepResult row = run_sweep_config(threads, cache);
      if (threads == 1) {
        serial = row;
      } else {
        row.speedup_vs_serial = row.seconds > 0 ? serial.seconds / row.seconds : 0;
        row.order_identical_to_serial = row.wire_bytes == serial.wire_bytes;
      }
      results.push_back(std::move(row));
    }
  }

  bench::Table table({"Resolver threads", "Cache size", "Events", "Events/sec",
                      "Hit rate", "Coalesced", "Speedup vs serial",
                      "Order == serial"});
  for (const auto& row : results) {
    table.add_row({std::to_string(row.resolver_threads),
                   std::to_string(row.cache_size), std::to_string(row.events),
                   bench::fmt(row.events_per_sec, 0), bench::fmt(row.hit_rate, 3),
                   std::to_string(row.coalesced),
                   bench::fmt(row.speedup_vs_serial, 2),
                   row.order_identical_to_serial ? "yes" : "NO"});
  }
  table.print();

  // Machine-readable sweep for the driver / regression tracking.
  if (std::FILE* out = std::fopen("BENCH_resolution.json", "w")) {
    std::fprintf(out, "{\n  \"rows\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& row = results[i];
      std::fprintf(out,
                   "    {\"resolver_threads\": %zu, \"cache_size\": %zu, "
                   "\"events\": %zu, \"events_per_sec\": %.0f, "
                   "\"hit_rate\": %.4f, \"coalesced\": %llu, "
                   "\"speedup_vs_serial\": %.3f, "
                   "\"order_identical_to_serial\": %s}%s\n",
                   row.resolver_threads, row.cache_size, row.events,
                   row.events_per_sec, row.hit_rate,
                   static_cast<unsigned long long>(row.coalesced),
                   row.speedup_vs_serial,
                   row.order_identical_to_serial ? "true" : "false",
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("sweep results: BENCH_resolution.json\n");
  }

  // Acceptance: with the cache disabled (every record pays fid2path) the
  // 4-thread pool must deliver >= 2.5x the serial reporting rate with a
  // byte-identical published stream.
  for (const auto& row : results) {
    if (row.resolver_threads == 4 && row.cache_size == 0) {
      const bool pass = row.speedup_vs_serial >= 2.5 && row.order_identical_to_serial;
      std::printf("acceptance (4 threads, cache off): speedup %.2fx, order %s -> %s\n",
                  row.speedup_vs_serial,
                  row.order_identical_to_serial ? "identical" : "DIVERGED",
                  pass ? "PASS" : "FAIL");
    }
  }
}

}  // namespace

int main() {
  bench::banner("Table VIII: FSMonitor performance vs. cache size (Iota, 1 MDS)");

  struct PaperRow {
    std::size_t size;
    double cpu, memory_mb, reported;
  };
  const PaperRow rows[] = {
      {200, 4.8, 88.7, 8644},  {500, 3.5, 84.3, 8997},   {1000, 2.98, 75.6, 9401},
      {2000, 2.95, 61.3, 9453}, {5000, 2.89, 55.4, 9487}, {7500, 2.92, 60.7, 9481},
  };

  bench::Table table({"Cache Size (#fid2path)", "CPU% on collector",
                      "Memory (MB) on collector", "Events/sec reported",
                      "Cache hit rate"});
  double best_rate = 0;
  std::size_t best_size = 0;
  for (const auto& row : rows) {
    scalable::SimConfig config;
    config.profile = lustre::TestbedProfile::iota();
    config.duration = std::chrono::seconds(30);
    config.cache_size = row.size;
    // One registry per row so fidcache.* counters are per-configuration;
    // the hit-rate column comes from the registry, not SimReport.
    obs::MetricsRegistry registry;
    config.metrics = &registry;
    const auto report = scalable::run_pipeline_sim(config);
    const auto snapshot = registry.snapshot();
    table.add_row({std::to_string(row.size),
                   bench::vs_paper(report.collector.cpu_percent, row.cpu, 2),
                   bench::vs_paper(report.collector.memory_mb, row.memory_mb, 1),
                   bench::vs_paper(report.reported_rate, row.reported),
                   bench::fmt(bench::cache_hit_rate(snapshot), 3)});
    if (report.reported_rate > best_rate) {
      best_rate = report.reported_rate;
      best_size = row.size;
    }
    // Keep the paper-optimum row's snapshot as the bench's final dump.
    if (row.size == 5000) bench::dump_metrics(registry, "bench_table8_metrics.json");
  }
  table.print();
  std::printf(
      "Optimum observed at cache size %zu (paper: 5000). Shape: reporting\n"
      "rate and CPU improve steeply up to ~1000-5000 entries, then flatten;\n"
      "oversizing past the working set buys nothing and costs lookup time\n"
      "and memory.\n",
      best_size);

  run_resolver_sweep();
  return 0;
}
