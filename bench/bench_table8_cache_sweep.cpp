// Table VIII reproduction: FSMonitor performance vs fid2path-cache size
// on Iota (one MDS, mixed Evaluate_Performance_Script).
#include "bench/bench_util.hpp"
#include "src/scalable/sim_driver.hpp"

using namespace fsmon;

int main() {
  bench::banner("Table VIII: FSMonitor performance vs. cache size (Iota, 1 MDS)");

  struct PaperRow {
    std::size_t size;
    double cpu, memory_mb, reported;
  };
  const PaperRow rows[] = {
      {200, 4.8, 88.7, 8644},  {500, 3.5, 84.3, 8997},   {1000, 2.98, 75.6, 9401},
      {2000, 2.95, 61.3, 9453}, {5000, 2.89, 55.4, 9487}, {7500, 2.92, 60.7, 9481},
  };

  bench::Table table({"Cache Size (#fid2path)", "CPU% on collector",
                      "Memory (MB) on collector", "Events/sec reported",
                      "Cache hit rate"});
  double best_rate = 0;
  std::size_t best_size = 0;
  for (const auto& row : rows) {
    scalable::SimConfig config;
    config.profile = lustre::TestbedProfile::iota();
    config.duration = std::chrono::seconds(30);
    config.cache_size = row.size;
    // One registry per row so fidcache.* counters are per-configuration;
    // the hit-rate column comes from the registry, not SimReport.
    obs::MetricsRegistry registry;
    config.metrics = &registry;
    const auto report = scalable::run_pipeline_sim(config);
    const auto snapshot = registry.snapshot();
    table.add_row({std::to_string(row.size),
                   bench::vs_paper(report.collector.cpu_percent, row.cpu, 2),
                   bench::vs_paper(report.collector.memory_mb, row.memory_mb, 1),
                   bench::vs_paper(report.reported_rate, row.reported),
                   bench::fmt(bench::cache_hit_rate(snapshot), 3)});
    if (report.reported_rate > best_rate) {
      best_rate = report.reported_rate;
      best_size = row.size;
    }
    // Keep the paper-optimum row's snapshot as the bench's final dump.
    if (row.size == 5000) bench::dump_metrics(registry, "bench_table8_metrics.json");
  }
  table.print();
  std::printf(
      "Optimum observed at cache size %zu (paper: 5000). Shape: reporting\n"
      "rate and CPU improve steeply up to ~1000-5000 entries, then flatten;\n"
      "oversizing past the working set buys nothing and costs lookup time\n"
      "and memory.\n",
      best_size);
  return 0;
}
