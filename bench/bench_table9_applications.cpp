// Table IX reproduction: FSMonitor events for IOR, HACC-I/O and
// Filebench running simultaneously on the Thor testbed, monitored
// end-to-end through the real threaded pipeline (collectors ->
// aggregator -> consumer).
#include <atomic>
#include <mutex>
#include <thread>

#include "bench/bench_util.hpp"
#include "src/scalable/scalable_monitor.hpp"
#include "src/workloads/filebench.hpp"
#include "src/workloads/hacc.hpp"
#include "src/workloads/ior.hpp"

using namespace fsmon;

int main() {
  bench::banner("Table IX: FSMonitor events for IOR, HACC-IO and Filebench (Thor)");

  common::RealClock clock;
  const auto profile = lustre::TestbedProfile::thor();
  lustre::LustreFs fs(profile.fs_options, clock);
  scalable::ScalableMonitorOptions options;
  options.collector.cache_size = 5000;
  scalable::ScalableMonitor monitor(fs, options, clock);

  std::mutex mu;
  std::vector<std::string> first_lines;
  std::vector<std::string> last_lines;
  std::atomic<std::uint64_t> creates{0}, deletes{0}, closes{0}, total{0};
  auto consumer = monitor.make_consumer(
      "client", scalable::ConsumerOptions{}, [&](const core::StdEvent& event) {
        total.fetch_add(1);
        if (event.kind == core::EventKind::kCreate) creates.fetch_add(1);
        if (event.kind == core::EventKind::kDelete) deletes.fetch_add(1);
        if (event.kind == core::EventKind::kClose) closes.fetch_add(1);
        std::lock_guard lock(mu);
        core::StdEvent shown = event;
        shown.watch_root = "/mnt/lustre";
        if (first_lines.size() < 8) first_lines.push_back(core::to_inotify_line(shown));
        last_lines.push_back(core::to_inotify_line(shown));
        if (last_lines.size() > 6) last_lines.erase(last_lines.begin());
      });

  if (!monitor.start().is_ok() || !consumer->start().is_ok()) return 1;

  // Run all three applications "simultaneously on the Lustre clients".
  workloads::WorkloadFootprint ior_fp, hacc_fp;
  workloads::FilebenchReport filebench_report;
  {
    std::jthread ior_thread([&] {
      workloads::LustreTarget target(fs);
      workloads::IorOptions ior_options;
      ior_options.processes = 128;
      ior_fp = run_ior(target, "", ior_options);
    });
    std::jthread hacc_thread([&] {
      workloads::LustreTarget target(fs);
      workloads::HaccIoOptions hacc_options;
      hacc_options.processes = 256;
      hacc_fp = run_hacc_io(target, "", hacc_options);
    });
    std::jthread filebench_thread([&] {
      workloads::LustreTarget target(fs);
      workloads::FilebenchOptions fb_options;
      fb_options.files = 50'000;
      filebench_report = run_filebench_create(target, "", fb_options);
    });
  }

  // Wait for the pipeline to drain: keep waiting as long as events are
  // still flowing (progress-aware, so transient host contention does not
  // truncate the run), and give up only after sustained silence.
  const std::uint64_t expected =
      ior_fp.total_ops() + hacc_fp.total_ops() + filebench_report.footprint.total_ops();
  std::uint64_t last_total = 0;
  auto stall_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (total.load() < expected && std::chrono::steady_clock::now() < stall_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const auto now_total = total.load();
    if (now_total != last_total) {
      last_total = now_total;
      stall_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    }
  }
  consumer->stop();
  monitor.stop();

  std::printf("First standardized events observed:\n");
  for (const auto& line : first_lines) std::printf("  %s\n", line.c_str());
  std::printf("  ...\nLast standardized events observed:\n");
  for (const auto& line : last_lines) std::printf("  %s\n", line.c_str());

  bench::Table table({"Metric", "Measured vs paper expectation"});
  table.add_row({"IOR (SSF, 128 procs) creates", bench::vs_paper(double(ior_fp.creates), 1)});
  table.add_row({"IOR deletes", bench::vs_paper(double(ior_fp.deletes), 1)});
  table.add_row(
      {"HACC-I/O (FPP, 256 procs) creates", bench::vs_paper(double(hacc_fp.creates), 256)});
  table.add_row({"HACC-I/O deletes", bench::vs_paper(double(hacc_fp.deletes), 256)});
  table.add_row({"Filebench creates",
                 bench::vs_paper(double(filebench_report.footprint.creates), 50000)});
  table.add_row({"Filebench total size (MB)",
                 bench::vs_paper(static_cast<double>(
                                     filebench_report.footprint.bytes_written) /
                                     (1024.0 * 1024.0),
                                 782.8, 1)});
  table.add_row({"Events delivered to consumer",
                 bench::fmt(double(total.load())) + " of " + bench::fmt(double(expected))});
  table.add_row({"CREATE events", bench::fmt(double(creates.load()))});
  table.add_row({"CLOSE events", bench::fmt(double(closes.load()))});
  table.add_row({"DELETE events", bench::fmt(double(deletes.load()))});
  table.print();
  std::printf(
      "Shape: one create/delete pair for IOR's shared file, 256 pairs for\n"
      "HACC-I/O, 50 000 creates for Filebench — all correctly reported\n"
      "with no delay-induced loss (Section V-D6).\n");
  return total.load() == expected ? 0 : 1;
}
