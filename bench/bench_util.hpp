// Shared helpers for the table-reproduction benchmark binaries: aligned
// table printing and paper-vs-measured comparison rows.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/exporters.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon::bench {

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
        widths[i] = std::max(widths[i], row[i].size());
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < cells.size() ? cells[i] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[i]), cell.c_str());
      }
      std::printf("\n");
    };
    auto print_sep = [&] {
      std::printf("+");
      for (std::size_t w : widths) {
        for (std::size_t i = 0; i < w + 2; ++i) std::printf("-");
        std::printf("+");
      }
      std::printf("\n");
    };
    print_sep();
    print_row(headers_);
    print_sep();
    for (const auto& row : rows_) print_row(row);
    print_sep();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double value, int decimals = 0) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

/// "measured (paper P, dev%)" cell for paper-vs-measured comparisons.
inline std::string vs_paper(double measured, double paper, int decimals = 0) {
  char buf[96];
  const double dev = paper == 0 ? 0 : 100.0 * (measured - paper) / paper;
  std::snprintf(buf, sizeof(buf), "%.*f (paper %.*f, %+.1f%%)", decimals, measured,
                decimals, paper, dev);
  return buf;
}

inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Write a final JSON metrics snapshot next to the bench binary and say
/// where it went (harness-wide convention: <bench>_metrics.json).
inline void dump_metrics(obs::MetricsRegistry& registry, const std::string& path) {
  if (auto s = obs::write_snapshot(registry, path, obs::ExportFormat::kJson); s.is_ok()) {
    std::printf("metrics snapshot: %s (%zu instruments)\n", path.c_str(),
                registry.instrument_count());
  } else {
    std::printf("metrics snapshot failed: %s\n", s.to_string().c_str());
  }
}

/// Cache hit ratio straight from fidcache.* registry counters.
inline double cache_hit_rate(const obs::MetricsSnapshot& snapshot) {
  const double hits = static_cast<double>(snapshot.counter_total("fidcache.hits"));
  const double lookups = hits + static_cast<double>(snapshot.counter_total("fidcache.misses"));
  return lookups == 0 ? 0.0 : hits / lookups;
}

}  // namespace fsmon::bench
