// Table VI reproduction: event reporting rates with and without the
// fid2path LRU cache on each Lustre testbed (one MDS, mixed
// Evaluate_Performance_Script, cache size 5000).
#include "bench/bench_util.hpp"
#include "src/scalable/sim_driver.hpp"

using namespace fsmon;

int main() {
  bench::banner("Table VI: Lustre Testbed Baseline Event Reporting Rates");

  struct PaperColumn {
    lustre::TestbedProfile profile;
    double generated, no_cache, with_cache;
  };
  const PaperColumn columns[] = {
      {lustre::TestbedProfile::aws(), 1366, 1053, 1348},
      {lustre::TestbedProfile::thor(), 4509, 3968, 4487},
      {lustre::TestbedProfile::iota(), 9593, 8162, 9487},
  };

  bench::Table table({"Row", "AWS", "Thor", "Iota"});
  std::vector<std::string> generated{"Generated events/sec"};
  std::vector<std::string> no_cache{"Reported events/sec without cache"};
  std::vector<std::string> with_cache{"Reported events/sec with cache"};
  double iota_loss_pct = 0;

  for (const auto& column : columns) {
    scalable::SimConfig config;
    config.profile = column.profile;
    config.duration = std::chrono::seconds(30);
    config.cache_size = 0;
    const auto uncached = scalable::run_pipeline_sim(config);
    config.cache_size = 5000;
    const auto cached = scalable::run_pipeline_sim(config);

    generated.push_back(bench::vs_paper(cached.generated_rate, column.generated));
    no_cache.push_back(bench::vs_paper(uncached.reported_rate, column.no_cache));
    with_cache.push_back(bench::vs_paper(cached.reported_rate, column.with_cache));
    if (column.profile.name == "Iota") {
      iota_loss_pct =
          100.0 * (1.0 - uncached.reported_rate / uncached.generated_rate);
    }
  }
  table.add_row(std::move(generated));
  table.add_row(std::move(no_cache));
  table.add_row(std::move(with_cache));
  table.print();

  // Extension: quantify "no loss, only delay" — end-to-end latency of
  // the cached vs uncached pipeline on Iota.
  {
    scalable::SimConfig config;
    config.profile = lustre::TestbedProfile::iota();
    config.duration = std::chrono::seconds(30);
    config.cache_size = 0;
    const auto uncached = scalable::run_pipeline_sim(config);
    config.cache_size = 5000;
    const auto cached = scalable::run_pipeline_sim(config);
    std::printf(
        "End-to-end latency on Iota (op -> consumer): with cache p50=%.1fms "
        "p99=%.1fms; without cache p50=%.0fms p99=%.0fms max=%.0fms —\n"
        "the uncached pipeline trades latency (queueing), never losing "
        "events.\n",
        cached.latency_p50_ms, cached.latency_p99_ms, uncached.latency_p50_ms,
        uncached.latency_p99_ms, uncached.latency_max_ms);
  }
  std::printf(
      "Uncached loss on Iota: %.1f%% (paper: 14.9%%). Shape: caching\n"
      "recovers nearly the full generation rate on every testbed.\n",
      iota_loss_pct);
  return 0;
}
