// Table II reproduction: the standardized event definitions FSMonitor
// emits for Evaluate_Output_Script, shown for each simulated platform
// backend to demonstrate that the representation is identical across
// macOS/Linux/BSD/Windows dialects (paper Section V-C1).
#include <cstdio>
#include <mutex>

#include "bench/bench_util.hpp"
#include "src/core/monitor.hpp"
#include "src/localfs/sim_dsi.hpp"
#include "src/workloads/scripts.hpp"

using namespace fsmon;

namespace {

std::vector<std::string> run_script_on(const std::string& scheme) {
  common::ManualClock clock;
  localfs::MemFs fs;
  fs.mkdir("/home");
  fs.mkdir("/home/arnab");
  fs.mkdir("/home/arnab/test");
  core::DsiRegistry registry;
  localfs::register_sim_dsis(registry, fs, clock);

  core::MonitorOptions options;
  options.storage.scheme = scheme;
  options.storage.root = "/home/arnab/test";
  core::FsMonitor monitor(options, &registry, &clock);
  std::mutex mu;
  std::vector<std::string> lines;
  monitor.subscribe({}, [&](const std::vector<core::StdEvent>& batch) {
    std::lock_guard lock(mu);
    for (const auto& event : batch) lines.push_back(core::to_inotify_line(event));
  });
  if (!monitor.start().is_ok()) return {};
  workloads::MemFsTarget target(fs);
  workloads::run_evaluate_output_script(target, "/home/arnab/test");
  monitor.stop();
  return lines;
}

}  // namespace

int main() {
  bench::banner("Table II: File system events of FSMonitor (Evaluate_Output_Script)");
  std::printf(
      "Script: create hello.txt; modify; rename -> hi.txt; mkdir okdir;\n"
      "        move hi.txt -> okdir/; delete okdir and contents.\n");

  const char* schemes[] = {"sim-inotify", "sim-kqueue", "sim-fsevents",
                           "sim-filesystemwatcher"};
  std::vector<std::string> reference;
  for (const char* scheme : schemes) {
    const auto lines = run_script_on(scheme);
    std::printf("\nFSMonitor over %s backend:\n", scheme);
    for (const auto& line : lines) std::printf("  %s\n", line.c_str());
    if (reference.empty() && std::string(scheme) == "sim-inotify") reference = lines;
  }

  std::printf(
      "\nPaper expectation: identical standardized definitions on every\n"
      "platform (Table II). Differences above are limited to OPEN/CLOSE\n"
      "visibility, which FSEvents and FileSystemWatcher do not report.\n");
  return 0;
}
