// Shard scaling bench: aggregate append + fan-out throughput of the
// aggregator tier at 1, 2 and 4 shards over the same workload.
//
// The paper's aggregator commits every batch to a database; that
// durable-commit round trip — not CPU — is what bounds a single
// aggregator's append rate, and it is what sharding parallelizes: N
// shards overlap N independent commit streams. The bench models the
// commit with AggregatorOptions::commit_latency (slept for real in each
// shard's persist thread), so the measured scaling is the overlap of
// genuine wall-clock latency and holds on a single-core host — the same
// methodology as the resolver-pool bench (see DESIGN.md).
//
// Eight MDTs feed the router; the shard map's trailing-index rule gives
// every shard an equal share of the sources. A run is complete when
// every event is persisted in its shard's store AND delivered to the
// tapping consumer (append + fan-out). Emits BENCH_shards.json and
// fails (exit 1) if 4 shards don't reach 3.0x the 1-shard throughput.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/lustre/filesystem.hpp"
#include "src/scalable/scalable_monitor.hpp"

namespace fsmon {
namespace {

using scalable::ScalableMonitor;
using scalable::ScalableMonitorOptions;

constexpr int kCreates = 6400;
constexpr auto kCommitLatency = std::chrono::microseconds(1600);
constexpr std::size_t kPublishBatch = 16;  // many frames: commit latency dominates

/// One directory per MDT, found by probing: DNE-hash 8 candidate dirs
/// onto 8 MDTs and you get collisions, which skews per-shard load and
/// lets the slowest shard cap the measured scaling. Instead mkdir
/// candidates until every MDT owns exactly one, detected by which
/// changelog a probe create lands in. Round-robin creates over the
/// result give every source (and so every shard) an equal share.
std::vector<std::string> one_dir_per_mdt(lustre::LustreFs& fs) {
  const std::uint32_t n = fs.mdt_count();
  std::vector<std::string> dirs(n);
  std::vector<bool> have(n, false);
  std::uint32_t found = 0;
  for (int d = 0; found < n && d < 512; ++d) {
    const std::string dir = "/d" + std::to_string(d);
    if (!fs.mkdir(dir).is_ok()) continue;
    std::vector<std::uint64_t> before(n);
    for (std::uint32_t i = 0; i < n; ++i)
      before[i] = fs.mds(i).mdt().changelog().last_index();
    (void)fs.create(dir + "/probe");
    for (std::uint32_t i = 0; i < n; ++i) {
      if (fs.mds(i).mdt().changelog().last_index() > before[i]) {
        if (!have[i]) {
          dirs[i] = dir;
          have[i] = true;
          ++found;
        }
        break;
      }
    }
  }
  return dirs;
}

struct RunResult {
  std::size_t shards = 0;
  std::uint64_t events = 0;
  std::uint64_t frames_routed = 0;
  double wall_ms = 0;
  double events_per_sec = 0;
  bool complete = false;
};

RunResult run(const std::filesystem::path& store_dir, std::size_t shards) {
  common::RealClock clock;
  lustre::LustreFsOptions fs_options;
  fs_options.mdt_count = 8;
  lustre::LustreFs fs(fs_options, clock);

  ScalableMonitorOptions options;
  options.shards = shards;
  eventstore::EventStoreOptions store;
  store.directory = store_dir;
  options.aggregator.store = store;
  options.aggregator.commit_latency = kCommitLatency;
  // Group commit would coalesce the modeled per-batch commit latency
  // away; this bench measures per-shard persist-thread overlap, so keep
  // one commit (and one latency payment) per batch.
  options.aggregator.wal_group_commit_bytes = 0;
  options.collector.publish_batch = kPublishBatch;
  ScalableMonitor monitor(fs, options, clock);

  std::atomic<std::uint64_t> delivered{0};
  auto consumer = monitor.make_consumer("bench", scalable::ConsumerOptions{},
                                        [&](const core::StdEvent&) { ++delivered; });
  (void)monitor.start();
  (void)consumer->start();

  const std::vector<std::string> dirs = one_dir_per_mdt(fs);

  RunResult result;
  result.shards = shards;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kCreates; ++i) {
    (void)fs.create(dirs[static_cast<std::size_t>(i) % dirs.size()] + "/f" +
                    std::to_string(i));
  }
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < fs.mdt_count(); ++i)
    total += fs.mds(i).mdt().changelog().last_index();

  // Append + fan-out both done: every record persisted in its shard's
  // store and delivered to the consumer.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while ((monitor.sharded().persisted() < total || delivered.load() < total) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const auto done = std::chrono::steady_clock::now();

  result.events = total;
  result.frames_routed = monitor.sharded().router().frames_routed();
  result.wall_ms = std::chrono::duration<double, std::milli>(done - start).count();
  result.events_per_sec = total / (result.wall_ms / 1000.0);
  result.complete =
      monitor.sharded().persisted() >= total && delivered.load() >= total;

  consumer->stop();
  monitor.stop();
  return result;
}

}  // namespace
}  // namespace fsmon

int main() {
  using namespace fsmon;

  const auto root = std::filesystem::temp_directory_path() / "fsmon_bench_shards";
  std::filesystem::remove_all(root);

  bench::banner("shard scaling: append + fan-out throughput vs shard count");
  std::printf("%d creates over 8 MDTs, %lldus modeled commit latency per batch\n",
              kCreates, static_cast<long long>(kCommitLatency.count()));

  std::vector<RunResult> results;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    results.push_back(run(root / ("s" + std::to_string(shards)), shards));
  }
  const double base = results.front().events_per_sec;

  bench::Table table({"shards", "events", "frames", "wall ms", "events/s",
                      "scaling", "complete"});
  for (const auto& r : results) {
    table.add_row({std::to_string(r.shards), std::to_string(r.events),
                   std::to_string(r.frames_routed), bench::fmt(r.wall_ms, 1),
                   bench::fmt(r.events_per_sec, 0),
                   bench::fmt(r.events_per_sec / base, 2) + "x",
                   r.complete ? "yes" : "NO"});
  }
  table.print();

  const double scaling4 = results.back().events_per_sec / base;
  if (std::FILE* out = std::fopen("BENCH_shards.json", "w")) {
    std::fprintf(out, "{\n  \"runs\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(out,
                   "    {\"shards\": %zu, \"events\": %llu, \"frames_routed\": %llu, "
                   "\"wall_ms\": %.1f, \"events_per_sec\": %.0f, \"scaling\": %.2f, "
                   "\"complete\": %s}%s\n",
                   r.shards, static_cast<unsigned long long>(r.events),
                   static_cast<unsigned long long>(r.frames_routed), r.wall_ms,
                   r.events_per_sec, r.events_per_sec / base,
                   r.complete ? "true" : "false", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"commit_latency_us\": %lld,\n",
                 static_cast<long long>(
                     std::chrono::duration_cast<std::chrono::microseconds>(kCommitLatency)
                         .count()));
    std::fprintf(out, "  \"scaling_4_shards\": %.2f\n}\n", scaling4);
    std::fclose(out);
    std::printf("results: BENCH_shards.json\n");
  }

  std::filesystem::remove_all(root);

  for (const auto& r : results) {
    if (!r.complete) {
      std::printf("FAIL: %zu-shard run did not persist+deliver every event\n", r.shards);
      return 1;
    }
  }
  if (scaling4 < 3.0) {
    std::printf("FAIL: 4-shard scaling %.2fx < 3.0x\n", scaling4);
    return 1;
  }
  std::printf("4-shard scaling: %.2fx (target >= 3.0x)\n", scaling4);
  return 0;
}
