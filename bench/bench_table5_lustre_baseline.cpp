// Table V reproduction: baseline event-generation rates of the three
// Lustre testbeds (per-op rows from single-op loops, total row from the
// mixed Evaluate_Performance_Script), measured on the simulated
// deployments.
#include "bench/bench_util.hpp"
#include "src/scalable/sim_driver.hpp"

using namespace fsmon;

namespace {

double measure_generation(const lustre::TestbedProfile& profile,
                          scalable::SimWorkload workload, double rate) {
  scalable::SimConfig config;
  config.profile = profile;
  config.workload = workload;
  config.rate_override = rate;
  config.duration = std::chrono::seconds(5);
  config.cache_size = 5000;
  return scalable::run_pipeline_sim(config).generated_rate;
}

}  // namespace

int main() {
  bench::banner("Table V: Lustre Testbed Baseline Event Generation Rates");

  const lustre::TestbedProfile profiles[3] = {lustre::TestbedProfile::aws(),
                                              lustre::TestbedProfile::thor(),
                                              lustre::TestbedProfile::iota()};
  // Paper values, column order AWS / Thor / Iota.
  const double paper[4][3] = {
      {352, 746, 1389}, {534, 1347, 2538}, {832, 2104, 3442}, {1366, 4509, 9593}};
  const scalable::SimWorkload workloads[4] = {
      scalable::SimWorkload::kCreateOnly, scalable::SimWorkload::kModifyOnly,
      scalable::SimWorkload::kDeleteOnly, scalable::SimWorkload::kMixed};
  const char* names[4] = {"Create events/sec", "Modify events/sec", "Delete events/sec",
                          "Total events/sec"};

  bench::Table table({"Row", "AWS (20 GB)", "Thor (500 GB)", "Iota (897 TB)"});
  for (int row = 0; row < 4; ++row) {
    std::vector<std::string> cells{names[row]};
    for (int column = 0; column < 3; ++column) {
      const double target = paper[row][column];
      const double measured =
          measure_generation(profiles[column], workloads[row], target);
      cells.push_back(bench::vs_paper(measured, target));
    }
    table.add_row(std::move(cells));
  }
  table.print();
  std::printf(
      "Rates are testbed properties (client metadata-op throughput); the\n"
      "simulated deployments are calibrated to them and the workload layer\n"
      "reproduces them. Shape: AWS < Thor < Iota on every row.\n");
  return 0;
}
