// Ablation: changelog read-batch size.
//
// The paper's collector processes "events ... in batches" (Algorithm 1's
// caller) and purges the changelog per batch. Each changelog read is an
// RPC to the MDS; batching amortizes that round trip. This ablation
// sweeps the batch size on the Iota profile and shows the knee: tiny
// batches pay the RPC per record and collapse throughput, while past a
// few hundred records the amortization is complete.
#include <atomic>
#include <chrono>
#include <thread>

#include "bench/bench_util.hpp"
#include "src/scalable/scalable_monitor.hpp"
#include "src/scalable/sim_driver.hpp"

using namespace fsmon;

namespace {

// Second ablation: the collector -> aggregator publish-batch size. Runs
// the real threaded pipeline (collectors, aggregator, consumer over the
// bus) against a pre-filled changelog and reports delivered events/s
// plus wire bytes per event, both straight from the metrics registry.
void publish_batch_sweep() {
  bench::banner("Ablation: collector publish-batch size (threaded pipeline)");
  constexpr int kEvents = 50000;

  bench::Table table({"Publish batch", "Delivered events/sec", "vs batch=512",
                      "Wire bytes/event"});
  struct Row {
    std::size_t batch;
    double rate;
    double bytes_per_event;
  };
  std::vector<Row> rows;
  double reference = 0;
  for (std::size_t batch : {std::size_t{1}, std::size_t{8}, std::size_t{64},
                            std::size_t{512}}) {
    common::RealClock clock;
    lustre::LustreFs fs(lustre::LustreFsOptions{}, clock);
    fs.mkdir("/d");

    obs::MetricsRegistry registry;
    scalable::ScalableMonitorOptions options;
    options.collector.cache_size = 5000;
    options.collector.publish_batch = batch;
    options.collector.metrics = &registry;
    options.aggregator.metrics = &registry;
    // Construct before the creates so the collectors' changelog users
    // are registered and the backlog is retained until start().
    scalable::ScalableMonitor monitor(fs, options, clock);
    for (int i = 0; i < kEvents; ++i) fs.create("/d/f" + std::to_string(i));
    std::atomic<int> received{0};
    auto consumer =
        monitor.make_consumer("bench", scalable::ConsumerOptions{},
                              [&](const core::EventBatch& delivered) {
                                received.fetch_add(static_cast<int>(delivered.size()));
                              });
    const auto start = std::chrono::steady_clock::now();
    if (!monitor.start().is_ok() || !consumer->start().is_ok()) return;
    while (received.load() < kEvents) std::this_thread::sleep_for(std::chrono::microseconds(200));
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start);
    consumer->stop();
    monitor.stop();

    const auto snapshot = registry.snapshot();
    const auto published = snapshot.counter_total("collector.records_published");
    const auto wire_bytes = snapshot.histogram_merged("collector.batch_bytes").sum();
    rows.push_back({batch, kEvents / elapsed.count(),
                    published == 0 ? 0.0
                                   : static_cast<double>(wire_bytes) /
                                         static_cast<double>(published)});
    if (batch == 512) reference = rows.back().rate;
  }
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.batch), bench::fmt(row.rate),
                   bench::fmt(100.0 * row.rate / reference, 1) + "%",
                   bench::fmt(row.bytes_per_event, 1)});
  }
  table.print();
  std::printf(
      "Shape: batch=1 pays one frame (header+CRC+pub/sub hop) per event;\n"
      "larger batches amortize framing into ~1 frame per read batch, so\n"
      "bytes/event falls toward the bare serialized-event size and the\n"
      "delivered rate climbs until the changelog read batch caps it.\n");
}

}  // namespace

int main() {
  bench::banner("Ablation: collector changelog-read batch size (Iota, cache 5000)");

  bench::Table table({"Batch size", "Reported events/sec", "vs batch=512",
                      "Peak backlog (records)"});
  double reference = 0;
  struct Row {
    std::size_t batch;
    double rate;
    std::size_t backlog;
  };
  std::vector<Row> rows;
  for (std::size_t batch : {std::size_t{1}, std::size_t{4}, std::size_t{16},
                            std::size_t{64}, std::size_t{512}, std::size_t{4096}}) {
    scalable::SimConfig config;
    config.profile = lustre::TestbedProfile::iota();
    config.duration = std::chrono::seconds(10);
    config.cache_size = 5000;
    config.collector_batch = batch;
    const auto report = scalable::run_pipeline_sim(config);
    rows.push_back({batch, report.reported_rate, report.peak_backlog_records});
    if (batch == 512) reference = report.reported_rate;
  }
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.batch), bench::fmt(row.rate),
                   bench::fmt(100.0 * row.rate / reference, 1) + "%",
                   std::to_string(row.backlog)});
  }
  table.print();
  std::printf(
      "Shape: with a ~100us read RPC, batch=1 pays it per record (~50%%\n"
      "throughput loss at Iota rates); amortization is essentially\n"
      "complete by a few hundred records — the paper's batched design is\n"
      "necessary, and oversizing batches buys nothing further.\n");

  publish_batch_sweep();
  return 0;
}
