// Ablation: changelog read-batch size.
//
// The paper's collector processes "events ... in batches" (Algorithm 1's
// caller) and purges the changelog per batch. Each changelog read is an
// RPC to the MDS; batching amortizes that round trip. This ablation
// sweeps the batch size on the Iota profile and shows the knee: tiny
// batches pay the RPC per record and collapse throughput, while past a
// few hundred records the amortization is complete.
#include "bench/bench_util.hpp"
#include "src/scalable/sim_driver.hpp"

using namespace fsmon;

int main() {
  bench::banner("Ablation: collector changelog-read batch size (Iota, cache 5000)");

  bench::Table table({"Batch size", "Reported events/sec", "vs batch=512",
                      "Peak backlog (records)"});
  double reference = 0;
  struct Row {
    std::size_t batch;
    double rate;
    std::size_t backlog;
  };
  std::vector<Row> rows;
  for (std::size_t batch : {std::size_t{1}, std::size_t{4}, std::size_t{16},
                            std::size_t{64}, std::size_t{512}, std::size_t{4096}}) {
    scalable::SimConfig config;
    config.profile = lustre::TestbedProfile::iota();
    config.duration = std::chrono::seconds(10);
    config.cache_size = 5000;
    config.collector_batch = batch;
    const auto report = scalable::run_pipeline_sim(config);
    rows.push_back({batch, report.reported_rate, report.peak_backlog_records});
    if (batch == 512) reference = report.reported_rate;
  }
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.batch), bench::fmt(row.rate),
                   bench::fmt(100.0 * row.rate / reference, 1) + "%",
                   std::to_string(row.backlog)});
  }
  table.print();
  std::printf(
      "Shape: with a ~100us read RPC, batch=1 pays it per record (~50%%\n"
      "throughput loss at Iota rates); amortization is essentially\n"
      "complete by a few hundred records — the paper's batched design is\n"
      "necessary, and oversizing batches buys nothing further.\n");
  return 0;
}
