// Crash-recovery bench: what fault tolerance costs when nothing fails,
// what a faulted run pays end to end, and how fast the aggregator comes
// back as the reliable store grows.
//
// Three measurements, all wall-clock (RealClock; the WAL writes real
// files either way):
//
//   1. baseline  — the threaded pipeline with fault injection disarmed
//                  (every fault point costs one relaxed atomic load).
//   2. faulted   — the same workload under a seeded fault schedule:
//                  collector/aggregator crashes, a torn WAL write, flaky
//                  changelog clears, with a babysitter restarting crashed
//                  stages. Exactly-once delivery is asserted, and the
//                  recovery counters report the replay/dedup work done.
//   3. restart   — aggregator crash + restart latency as a function of
//                  live store size (WAL segment scan, torn-tail check,
//                  watermark rebuild).
//
// Emits BENCH_recovery.json for the driver / regression tracking.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/chaos/fault.hpp"
#include "src/common/random.hpp"
#include "src/lustre/filesystem.hpp"
#include "src/scalable/scalable_monitor.hpp"

namespace fsmon {
namespace {

using scalable::ScalableMonitor;
using scalable::ScalableMonitorOptions;

/// Seeded create/rename/unlink/mkdir mix (DNE hashing spreads the
/// directories over the MDTs) — the chaos harness workload shape.
class Workload {
 public:
  Workload(lustre::LustreFs& fs, std::uint64_t seed) : fs_(fs), rng_(seed) {
    for (int i = 0; i < 8; ++i) {
      const std::string dir = "/d" + std::to_string(i);
      if (fs_.mkdir(dir).is_ok()) dirs_.push_back(dir);
    }
  }

  void step() {
    const double p = rng_.next_double();
    if (p < 0.6 || live_.empty()) {
      const std::string path =
          dirs_[rng_.next_below(dirs_.size())] + "/f" + std::to_string(next_++);
      if (fs_.create(path).is_ok()) live_.push_back(path);
    } else if (p < 0.75) {
      const std::size_t victim = rng_.next_below(live_.size());
      const std::string to =
          dirs_[rng_.next_below(dirs_.size())] + "/r" + std::to_string(next_++);
      if (fs_.rename(live_[victim], to).is_ok()) live_[victim] = to;
    } else if (p < 0.9) {
      const std::size_t victim = rng_.next_below(live_.size());
      if (fs_.unlink(live_[victim]).is_ok()) {
        live_[victim] = live_.back();
        live_.pop_back();
      }
    } else {
      fs_.mkdir("/m" + std::to_string(next_++));
    }
  }

 private:
  lustre::LustreFs& fs_;
  common::Rng rng_;
  std::vector<std::string> dirs_;
  std::vector<std::string> live_;
  int next_ = 0;
};

void babysit(ScalableMonitor& monitor) {
  for (std::size_t i = 0; i < monitor.collector_count(); ++i) {
    if (monitor.collector(i).crashed()) (void)monitor.restart_collector(i);
  }
  if (monitor.aggregator().crashed()) (void)monitor.restart_aggregator();
}

/// Disarm faults and babysit until every changelog is fully acked and
/// cleared. Returns false on a 30 s timeout (never expected).
bool settle(ScalableMonitor& monitor, lustre::LustreFs& fs) {
  chaos::FaultInjector::instance().disarm();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    babysit(monitor);
    bool cleared = true;
    for (std::uint32_t i = 0; i < fs.mdt_count(); ++i) {
      if (fs.mds(i).mdt().changelog().retained() != 0) {
        cleared = false;
        break;
      }
    }
    if (cleared) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

chaos::FaultPlan schedule(std::uint64_t seed) {
  chaos::FaultPlan plan;
  plan.seed = seed;
  chaos::FaultRule rule;
  rule.point = "collector.before_publish";
  rule.action = chaos::FaultAction::kCrash;
  rule.after_hits = 2 + seed % 5;
  rule.probability = 0.5;
  rule.max_fires = 2;
  plan.rules.push_back(rule);
  rule = {};
  rule.point = "aggregator.before_persist";
  rule.action = chaos::FaultAction::kCrash;
  rule.after_hits = 1 + seed % 7;
  rule.probability = 0.5;
  rule.max_fires = 2;
  plan.rules.push_back(rule);
  rule = {};
  rule.point = "wal.torn_write";
  rule.action = chaos::FaultAction::kFail;
  rule.after_hits = 3 + seed % 11;
  rule.max_fires = 1;
  plan.rules.push_back(rule);
  rule = {};
  rule.point = "collector.clear";
  rule.action = chaos::FaultAction::kFail;
  rule.probability = 0.3;
  rule.max_fires = 0;
  plan.rules.push_back(rule);
  return plan;
}

struct RunResult {
  int ops = 0;
  double wall_ms = 0;
  double settle_ms = 0;
  double ops_per_sec = 0;
  std::uint64_t store_events = 0;
  std::uint64_t delivered = 0;
  bool exactly_once = false;
  std::uint64_t faults_injected = 0;
  std::uint64_t replayed_records = 0;
  std::uint64_t events_deduped = 0;
  std::uint64_t gapped_frames = 0;
  std::uint64_t clear_failures = 0;
};

RunResult run_pipeline(const std::filesystem::path& store_dir, int ops, bool faulted,
                       std::uint64_t seed) {
  common::RealClock clock;
  obs::MetricsRegistry registry;
  lustre::LustreFsOptions fs_options;
  fs_options.mdt_count = 4;
  lustre::LustreFs fs(fs_options, clock);

  ScalableMonitorOptions options;
  eventstore::EventStoreOptions store;
  store.directory = store_dir;
  options.aggregator.store = store;
  options.aggregator.metrics = &registry;
  options.collector.metrics = &registry;
  ScalableMonitor monitor(fs, options, clock);

  std::mutex mu;
  std::set<std::tuple<std::string, std::uint64_t, int>> delivered_keys;
  std::uint64_t delivered = 0;
  auto consumer = monitor.make_consumer(
      "bench", scalable::ConsumerOptions{}, [&](const core::StdEvent& e) {
        std::lock_guard lock(mu);
        ++delivered;
        delivered_keys.emplace(e.source, e.cookie, static_cast<int>(e.kind));
      });
  (void)monitor.start();
  (void)consumer->start();

  if (faulted) chaos::FaultInjector::instance().arm(schedule(seed), &registry);

  RunResult result;
  result.ops = ops;
  Workload workload(fs, seed * 1000 + 17);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < ops; ++i) {
    workload.step();
    if (i % 4 == 3) {
      if (faulted) babysit(monitor);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  const auto produced = std::chrono::steady_clock::now();
  const bool settled = settle(monitor, fs);
  const auto done = std::chrono::steady_clock::now();

  result.wall_ms = std::chrono::duration<double, std::milli>(done - start).count();
  result.settle_ms = std::chrono::duration<double, std::milli>(done - produced).count();
  result.ops_per_sec = ops / (result.wall_ms / 1000.0);

  // Exactly-once check over the store: every changelog record surfaced,
  // none twice (store events are unique by construction of the set).
  auto events = monitor.aggregator().events_since(0);
  bool exactly_once = settled && events.is_ok();
  if (events.is_ok()) {
    std::set<std::pair<std::string, std::uint64_t>> pairs;
    result.store_events = events.value().size();
    for (const auto& event : events.value()) pairs.emplace(event.source, event.cookie);
    for (std::uint32_t i = 0; i < fs.mdt_count(); ++i) {
      const std::string source = "lustre:MDT" + std::to_string(i);
      const std::uint64_t last = fs.mds(i).mdt().changelog().last_index();
      for (std::uint64_t cookie = 1; cookie <= last; ++cookie) {
        if (pairs.find({source, cookie}) == pairs.end()) exactly_once = false;
      }
    }
  }
  result.exactly_once = exactly_once;

  const auto snapshot = registry.snapshot();
  result.faults_injected = snapshot.counter_total("chaos.faults_injected");
  result.replayed_records = snapshot.counter_total("recovery.replayed_records");
  result.events_deduped = snapshot.counter_total("recovery.events_deduped");
  result.gapped_frames = snapshot.counter_total("recovery.gapped_frames");
  result.clear_failures = snapshot.counter_total("collector.clear_failures");
  {
    std::lock_guard lock(mu);
    result.delivered = delivered;
  }

  chaos::FaultInjector::instance().disarm();
  consumer->stop();
  monitor.stop();
  return result;
}

struct RestartResult {
  std::uint64_t store_events = 0;
  double restart_ms = 0;
};

/// Populate a store with ~`ops` records, then measure a full aggregator
/// crash + restart (WAL recovery, watermark rebuild, thread start).
RestartResult run_restart(const std::filesystem::path& store_dir, int ops) {
  common::RealClock clock;
  lustre::LustreFsOptions fs_options;
  fs_options.mdt_count = 4;
  lustre::LustreFs fs(fs_options, clock);

  ScalableMonitorOptions options;
  eventstore::EventStoreOptions store;
  store.directory = store_dir;
  options.aggregator.store = store;
  ScalableMonitor monitor(fs, options, clock);
  (void)monitor.start();

  Workload workload(fs, 42);
  for (int i = 0; i < ops; ++i) workload.step();
  settle(monitor, fs);

  RestartResult result;
  result.store_events = monitor.aggregator().store()->live_records();
  monitor.aggregator().crash();
  const auto start = std::chrono::steady_clock::now();
  (void)monitor.restart_aggregator();
  result.restart_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  monitor.stop();
  return result;
}

}  // namespace
}  // namespace fsmon

int main() {
  using namespace fsmon;

  const auto root = std::filesystem::temp_directory_path() / "fsmon_bench_recovery";
  std::filesystem::remove_all(root);

  constexpr int kOps = 2000;
  bench::banner("recovery bench: baseline vs faulted pipeline");
  const RunResult baseline = run_pipeline(root / "baseline", kOps, false, 3);
  const RunResult faulted = run_pipeline(root / "faulted", kOps, true, 3);
  const double overhead_pct =
      100.0 * (faulted.wall_ms - baseline.wall_ms) / baseline.wall_ms;

  bench::Table table({"run", "ops", "wall ms", "settle ms", "ops/s", "store events",
                      "delivered", "exactly-once", "faults", "replayed", "deduped",
                      "gapped", "clear fails"});
  for (const auto* row : {&baseline, &faulted}) {
    table.add_row({row == &baseline ? "baseline" : "faulted", std::to_string(row->ops),
                   bench::fmt(row->wall_ms, 1), bench::fmt(row->settle_ms, 1),
                   bench::fmt(row->ops_per_sec, 0), std::to_string(row->store_events),
                   std::to_string(row->delivered), row->exactly_once ? "yes" : "NO",
                   std::to_string(row->faults_injected),
                   std::to_string(row->replayed_records),
                   std::to_string(row->events_deduped),
                   std::to_string(row->gapped_frames),
                   std::to_string(row->clear_failures)});
  }
  table.print();
  std::printf("faulted-run wall overhead vs baseline: %+.1f%%\n", overhead_pct);

  bench::banner("aggregator restart latency vs store size");
  std::vector<RestartResult> restarts;
  bench::Table restart_table({"store events", "restart ms"});
  for (int ops : {500, 2000, 8000}) {
    restarts.push_back(run_restart(root / ("restart" + std::to_string(ops)), ops));
    restart_table.add_row({std::to_string(restarts.back().store_events),
                           bench::fmt(restarts.back().restart_ms, 2)});
  }
  restart_table.print();

  if (std::FILE* out = std::fopen("BENCH_recovery.json", "w")) {
    auto emit_run = [&](const char* name, const RunResult& r, const char* tail) {
      std::fprintf(out,
                   "  \"%s\": {\"ops\": %d, \"wall_ms\": %.1f, \"settle_ms\": %.1f, "
                   "\"ops_per_sec\": %.0f, \"store_events\": %llu, \"delivered\": %llu, "
                   "\"exactly_once\": %s, \"faults_injected\": %llu, "
                   "\"replayed_records\": %llu, \"events_deduped\": %llu, "
                   "\"gapped_frames\": %llu, \"clear_failures\": %llu}%s\n",
                   name, r.ops, r.wall_ms, r.settle_ms, r.ops_per_sec,
                   static_cast<unsigned long long>(r.store_events),
                   static_cast<unsigned long long>(r.delivered),
                   r.exactly_once ? "true" : "false",
                   static_cast<unsigned long long>(r.faults_injected),
                   static_cast<unsigned long long>(r.replayed_records),
                   static_cast<unsigned long long>(r.events_deduped),
                   static_cast<unsigned long long>(r.gapped_frames),
                   static_cast<unsigned long long>(r.clear_failures), tail);
    };
    std::fprintf(out, "{\n");
    emit_run("baseline", baseline, ",");
    emit_run("faulted", faulted, ",");
    std::fprintf(out, "  \"faulted_overhead_pct\": %.1f,\n", overhead_pct);
    std::fprintf(out, "  \"restart\": [\n");
    for (std::size_t i = 0; i < restarts.size(); ++i) {
      std::fprintf(out, "    {\"store_events\": %llu, \"restart_ms\": %.2f}%s\n",
                   static_cast<unsigned long long>(restarts[i].store_events),
                   restarts[i].restart_ms, i + 1 < restarts.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("results: BENCH_recovery.json\n");
  }

  std::filesystem::remove_all(root);

  if (!baseline.exactly_once || !faulted.exactly_once) {
    std::printf("FAIL: a run lost or duplicated events\n");
    return 1;
  }
  if (faulted.faults_injected == 0) {
    std::printf("FAIL: the fault schedule never fired\n");
    return 1;
  }
  return 0;
}
