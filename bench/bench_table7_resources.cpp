// Table VII reproduction: peak CPU% and memory (MB) of every FSMonitor
// component on each Lustre testbed, plus the Section V-D3 workload
// variants (create+delete raises collector CPU; create+modify lowers it).
#include "bench/bench_util.hpp"
#include "src/scalable/sim_driver.hpp"

using namespace fsmon;

namespace {

scalable::SimReport run(const lustre::TestbedProfile& profile, std::size_t cache,
                        scalable::SimWorkload workload = scalable::SimWorkload::kMixed) {
  scalable::SimConfig config;
  config.profile = profile;
  config.duration = std::chrono::seconds(30);
  config.cache_size = cache;
  config.workload = workload;
  return scalable::run_pipeline_sim(config);
}

}  // namespace

int main() {
  bench::banner("Table VII: FSMonitor Resource Utilization");

  const lustre::TestbedProfile profiles[3] = {lustre::TestbedProfile::aws(),
                                              lustre::TestbedProfile::thor(),
                                              lustre::TestbedProfile::iota()};
  scalable::SimReport uncached[3];
  scalable::SimReport cached[3];
  for (int i = 0; i < 3; ++i) {
    uncached[i] = run(profiles[i], 0);
    cached[i] = run(profiles[i], 5000);
  }

  // Paper values: CPU% {AWS, Thor, Iota}, Memory MB {AWS, Thor, Iota}.
  const double paper_cpu[4][3] = {
      {9.3, 7.8, 6.67}, {6.6, 1.5, 2.89}, {2.7, 0.57, 0.06}, {1.5, 0.23, 0.02}};
  const double paper_mem[4][3] = {
      {8.2, 33.7, 81.6}, {9.92, 25.7, 55.4}, {5.7, 7.2, 17.6}, {0.05, 0.2, 2.8}};

  bench::Table cpu_table({"Component (CPU%)", "AWS", "Thor", "Iota"});
  bench::Table mem_table({"Component (Memory MB)", "AWS", "Thor", "Iota"});
  const char* names[4] = {"Collector - No cache", "Collector with cache", "Aggregator",
                          "Consumer"};
  for (int row = 0; row < 4; ++row) {
    std::vector<std::string> cpu_cells{names[row]};
    std::vector<std::string> mem_cells{names[row]};
    for (int i = 0; i < 3; ++i) {
      const auto& report = row == 0 ? uncached[i] : cached[i];
      const scalable::ComponentReport& component =
          row <= 1 ? report.collector
                   : (row == 2 ? report.aggregator : report.consumer);
      cpu_cells.push_back(bench::vs_paper(component.cpu_percent, paper_cpu[row][i], 2));
      mem_cells.push_back(bench::vs_paper(component.memory_mb, paper_mem[row][i], 1));
    }
    cpu_table.add_row(std::move(cpu_cells));
    mem_table.add_row(std::move(mem_cells));
  }
  cpu_table.print();
  mem_table.print();

  // Section V-D3 workload variants on Iota.
  const auto iota = lustre::TestbedProfile::iota();
  const auto mixed = run(iota, 5000);
  const auto create_delete = run(iota, 5000, scalable::SimWorkload::kCreateDelete);
  const auto create_modify = run(iota, 5000, scalable::SimWorkload::kCreateModify);
  const double delete_delta =
      100.0 * (create_delete.collector.cpu_percent / mixed.collector.cpu_percent - 1.0);
  const double modify_delta =
      100.0 * (create_modify.collector.cpu_percent / mixed.collector.cpu_percent - 1.0);
  std::printf(
      "\nWorkload variants on Iota (collector CPU%% vs mixed %.2f%%):\n"
      "  create+delete (no modify): %.2f%% -> %+.1f%% (paper: +12.4%%)\n"
      "  create+modify (no delete): %.2f%% -> %+.1f%% (paper: -21.5%%)\n"
      "Shape: delete-heavy load raises collector CPU (failed target\n"
      "resolutions fall back to parent fid2path calls); no-delete load\n"
      "lowers it (more cache hits).\n",
      mixed.collector.cpu_percent, create_delete.collector.cpu_percent, delete_delta,
      create_modify.collector.cpu_percent, modify_delta);
  return 0;
}
