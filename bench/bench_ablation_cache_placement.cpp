// Ablation: fid2path resolution placement — per-MDS collectors (the
// paper's design) vs centralized resolution at the aggregator.
//
// The paper puts Algorithm 1 (and its LRU cache) in the collector on
// each MDS: "the processing takes place at the MDSs and aggregation at
// the MGS" (Section V-D5). The alternative — forwarding raw changelog
// tuples and resolving at the MGS — serializes the dominant per-event
// cost. This ablation models both placements over 1-4 MDSs.
#include <memory>

#include "bench/bench_util.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/service_station.hpp"

using namespace fsmon;

namespace {

using std::chrono::nanoseconds;

// Iota profile costs: cached processing ~105us per record; forwarding a
// raw tuple costs only the base parse+publish share.
const common::Duration kProcessCost = nanoseconds(104600);
const common::Duration kForwardCost = nanoseconds(20000);
const common::Duration kAggregatorBase = nanoseconds(20000);
constexpr double kPerMdsRate = 9593;

double run(std::uint32_t mds_count, bool resolve_at_collectors,
           common::Duration duration = std::chrono::seconds(5)) {
  sim::Engine engine;
  std::vector<std::unique_ptr<sim::ServiceStation>> collectors;
  for (std::uint32_t i = 0; i < mds_count; ++i)
    collectors.push_back(
        std::make_unique<sim::ServiceStation>(engine, "collector" + std::to_string(i)));
  sim::ServiceStation aggregator(engine, "aggregator");

  const common::Duration collector_service =
      resolve_at_collectors ? kProcessCost : kForwardCost;
  const common::Duration aggregator_service =
      resolve_at_collectors ? kAggregatorBase : kAggregatorBase + kProcessCost;

  std::uint64_t reported = 0;
  const auto interval = common::from_seconds(1.0 / kPerMdsRate);
  for (std::uint32_t m = 0; m < mds_count; ++m) {
    auto arrival = std::make_shared<std::function<void()>>();
    sim::ServiceStation* collector = collectors[m].get();
    *arrival = [&, arrival, collector] {
      if (engine.now().time_since_epoch() >= duration) return;
      collector->submit(collector_service, [&] {
        aggregator.submit(aggregator_service, [&] {
          if (engine.now().time_since_epoch() <= duration) ++reported;
        });
      });
      engine.schedule(interval, *arrival);
    };
    engine.schedule(interval * m / static_cast<std::int64_t>(mds_count), *arrival);
  }
  engine.run_until(common::TimePoint{} + duration + std::chrono::seconds(1));
  return static_cast<double>(reported) / common::to_seconds(duration);
}

}  // namespace

int main() {
  bench::banner(
      "Ablation: fid2path resolution at per-MDS collectors vs at the aggregator");

  bench::Table table({"MDSs", "Generated ev/s", "Collector-side (paper) ev/s",
                      "Aggregator-side ev/s", "Speedup"});
  for (std::uint32_t mds : {1u, 2u, 4u}) {
    const double generated = kPerMdsRate * mds;
    const double at_collectors = run(mds, true);
    const double at_aggregator = run(mds, false);
    table.add_row({std::to_string(mds), bench::fmt(generated),
                   bench::fmt(at_collectors), bench::fmt(at_aggregator),
                   bench::fmt(at_collectors / at_aggregator, 2) + "x"});
  }
  table.print();
  std::printf(
      "Shape: with one MDS the placements tie (one serial resolution\n"
      "stage either way); with DNE multi-MDS stores, centralized\n"
      "resolution caps the whole site at ~8k ev/s while the paper's\n"
      "per-MDS placement scales linearly — the architectural reason\n"
      "FSMonitor distributes Algorithm 1 to the collectors.\n");
  return 0;
}
