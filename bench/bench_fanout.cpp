// Fan-out scaling bench: shared subscription index vs per-consumer rule
// evaluation, plus the slow-consumer isolation check.
//
// Part 1 — matcher sweep. The legacy topology evaluates every
// subscriber's rule set against every event: O(subscribers x events)
// regardless of how many events actually match. The SubscriptionIndex
// walks the path trie once per event and yields subscriber-id bitsets,
// so cost grows with MATCHED deliveries, not subscriber count. The
// sweep holds the matched volume fixed (a constant pool of 10 "hot"
// subscribers matches the hot events; every other subscriber watches a
// disjoint cold subtree that the workload never touches) and scales the
// subscriber count 10 -> 10k across match fractions. Fails (exit 1) if
// the index's per-event cost at 10k subscribers exceeds 2x its cost at
// 10 subscribers for any fraction.
//
// Part 2 — stalled-consumer isolation. A FanOutHub pipeline runs the
// same workload twice: healthy consumers only, then with a deliberately
// stalled sibling (its callback blocks until the run ends). Credit-based
// flow control must demote the stalled consumer instead of letting its
// kBlock back-pressure stall the shared pump. Fails if healthy
// aggregate throughput with the stalled sibling drops below 0.9x the
// baseline.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/lustre/filesystem.hpp"
#include "src/scalable/scalable_monitor.hpp"
#include "src/scalable/sub_index.hpp"

namespace fsmon {
namespace {

using core::CompiledRule;
using core::FilterRule;
using core::StdEvent;
using scalable::DeliverySet;
using scalable::SubscriptionIndex;

constexpr std::size_t kBatchEvents = 512;
constexpr std::size_t kHotMatchers = 10;  // fixed matched volume

struct SweepResult {
  std::size_t subscribers = 0;
  double match_fraction = 0;
  double index_ns_per_event = 0;
  double legacy_ns_per_event = 0;
  std::uint64_t deliveries_per_batch = 0;
};

std::vector<StdEvent> make_batch(double match_fraction) {
  std::vector<StdEvent> events;
  events.reserve(kBatchEvents);
  const auto hot_every =
      match_fraction <= 0 ? kBatchEvents + 1
                          : static_cast<std::size_t>(1.0 / match_fraction);
  for (std::size_t i = 0; i < kBatchEvents; ++i) {
    StdEvent event;
    event.kind = core::EventKind::kCreate;
    event.path = (i % hot_every == 0)
                     ? "/hot/run" + std::to_string(i % 7) + "/f" + std::to_string(i)
                     : "/quiet/d" + std::to_string(i % 31) + "/f" + std::to_string(i);
    events.push_back(std::move(event));
  }
  return events;
}

SweepResult run_sweep(std::size_t subscribers, double match_fraction) {
  // The fixed hot pool matches every hot event; the rest of the
  // population watches cold subtrees the workload never touches, so the
  // matched volume is identical at every subscriber count.
  SubscriptionIndex index;
  std::vector<std::vector<FilterRule>> rule_sets(subscribers);
  for (std::size_t s = 0; s < subscribers; ++s) {
    FilterRule rule;
    rule.root = s < kHotMatchers ? "/hot" : "/cold/s" + std::to_string(s);
    rule_sets[s].push_back(rule);
    const CompiledRule compiled = CompiledRule::compile(rule);
    index.add_subscriber(std::span<const CompiledRule>(&compiled, 1));
  }
  const std::vector<StdEvent> events = make_batch(match_fraction);

  SweepResult result;
  result.subscribers = subscribers;
  result.match_fraction = match_fraction;

  // Index path: one trie evaluation per batch, reused DeliverySet.
  DeliverySet out;
  index.match_batch(events, out);  // warm-up
  for (const auto id : out.touched())
    result.deliveries_per_batch += out.indices_for(id).size();
  constexpr int kIndexIters = 2000;
  const auto index_start = std::chrono::steady_clock::now();
  for (int iter = 0; iter < kIndexIters; ++iter) index.match_batch(events, out);
  const auto index_done = std::chrono::steady_clock::now();
  result.index_ns_per_event =
      std::chrono::duration<double, std::nano>(index_done - index_start).count() /
      (static_cast<double>(kIndexIters) * kBatchEvents);

  // Legacy path: every subscriber evaluates its rule set against every
  // event. Iterations shrink with the subscriber count so the bench
  // stays bounded; per-event cost is what is reported.
  const int legacy_iters =
      std::max(1, static_cast<int>(20000 / std::max<std::size_t>(subscribers, 1)));
  const auto legacy_start = std::chrono::steady_clock::now();
  std::size_t sink = 0;
  for (int iter = 0; iter < legacy_iters; ++iter) {
    for (const auto& rules : rule_sets) {
      for (const auto& event : events) {
        if (core::matches_any(rules, event)) ++sink;
      }
    }
  }
  const auto legacy_done = std::chrono::steady_clock::now();
  if (sink == 0) std::printf("");  // keep the loop observable
  result.legacy_ns_per_event =
      std::chrono::duration<double, std::nano>(legacy_done - legacy_start).count() /
      (static_cast<double>(legacy_iters) * kBatchEvents);
  return result;
}

// --- Part 2: stalled-consumer isolation over the real hub pipeline ----

struct IsolationResult {
  double baseline_eps = 0;   ///< Healthy events/sec, no stalled sibling.
  double stalled_eps = 0;    ///< Healthy events/sec with a stalled sibling.
  bool stalled_demoted = false;
};

double run_pipeline(const std::filesystem::path& store_dir, bool with_stalled,
                    bool* demoted) {
  common::RealClock clock;
  lustre::LustreFs fs(lustre::LustreFsOptions{}, clock);
  scalable::ScalableMonitorOptions options;
  options.collector.cache_size = 64;
  options.fanout_hub = true;
  options.flow.credit_window = 256;
  eventstore::EventStoreOptions store;
  store.directory = store_dir;
  options.aggregator.store = store;
  scalable::ScalableMonitor monitor(fs, options, clock);

  constexpr int kEvents = 4000;
  std::atomic<std::uint64_t> healthy_delivered{0};
  scalable::ConsumerOptions consumer_options;
  consumer_options.ack_interval = 16;
  auto h1 = monitor.make_consumer("h1", consumer_options, [&](const StdEvent&) {
    healthy_delivered.fetch_add(1);
  });
  auto h2 = monitor.make_consumer("h2", consumer_options, [&](const StdEvent&) {
    healthy_delivered.fetch_add(1);
  });

  std::atomic<bool> gate_closed{true};
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  std::unique_ptr<scalable::Consumer> stalled;
  if (with_stalled) {
    stalled = monitor.make_consumer("stalled", consumer_options, [&](const StdEvent&) {
      std::unique_lock lock(gate_mu);
      gate_cv.wait(lock, [&] { return !gate_closed.load(); });
    });
  }

  (void)monitor.start();
  (void)h1->start();
  (void)h2->start();
  if (stalled != nullptr) (void)stalled->start();

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvents; ++i) (void)fs.create("/f" + std::to_string(i));
  const std::uint64_t expected = 2ull * kEvents;
  const auto deadline = start + std::chrono::seconds(60);
  while (healthy_delivered.load() < expected &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const auto done = std::chrono::steady_clock::now();
  if (demoted != nullptr && stalled != nullptr)
    *demoted = stalled->flow_state() != scalable::FlowState::kLive;

  gate_closed.store(false);
  gate_cv.notify_all();
  h1->stop();
  h2->stop();
  if (stalled != nullptr) stalled->stop();
  monitor.stop();

  const double wall_s = std::chrono::duration<double>(done - start).count();
  return healthy_delivered.load() >= expected ? expected / wall_s : 0.0;
}

}  // namespace
}  // namespace fsmon

int main() {
  using namespace fsmon;

  bench::banner("fan-out: shared subscription index vs per-consumer matching");
  std::printf("%zu-event batches, %zu hot matchers (fixed matched volume)\n",
              kBatchEvents, kHotMatchers);

  const std::vector<std::size_t> counts{10, 100, 1000, 10000};
  const std::vector<double> fractions{0.01, 0.10};
  std::vector<SweepResult> results;
  for (const double fraction : fractions) {
    for (const std::size_t subscribers : counts)
      results.push_back(run_sweep(subscribers, fraction));
  }

  bench::Table table({"subs", "match frac", "deliveries/batch", "index ns/ev",
                      "legacy ns/ev", "index speedup"});
  for (const auto& r : results) {
    table.add_row({std::to_string(r.subscribers), bench::fmt(r.match_fraction, 2),
                   std::to_string(r.deliveries_per_batch),
                   bench::fmt(r.index_ns_per_event, 1),
                   bench::fmt(r.legacy_ns_per_event, 1),
                   bench::fmt(r.legacy_ns_per_event /
                                  std::max(r.index_ns_per_event, 1e-9),
                              1) +
                       "x"});
  }
  table.print();

  // Scaling criterion per fraction: index cost at 10k subs vs 10 subs.
  bool scaling_ok = true;
  std::vector<double> ratios;
  for (const double fraction : fractions) {
    double at10 = 0, at10k = 0;
    for (const auto& r : results) {
      if (r.match_fraction != fraction) continue;
      if (r.subscribers == counts.front()) at10 = r.index_ns_per_event;
      if (r.subscribers == counts.back()) at10k = r.index_ns_per_event;
    }
    const double ratio = at10k / std::max(at10, 1e-9);
    ratios.push_back(ratio);
    std::printf("match fraction %.2f: index cost 10k/10 subscribers = %.2fx\n",
                fraction, ratio);
    if (ratio > 2.0) scaling_ok = false;
  }

  bench::banner("fan-out: stalled-consumer isolation (hub pipeline)");
  const auto root = std::filesystem::temp_directory_path() / "fsmon_bench_fanout";
  std::filesystem::remove_all(root);
  bool demoted = false;
  const double baseline_eps = run_pipeline(root / "baseline", false, nullptr);
  const double stalled_eps = run_pipeline(root / "stalled", true, &demoted);
  std::filesystem::remove_all(root);
  const double isolation = stalled_eps / std::max(baseline_eps, 1e-9);
  std::printf(
      "healthy throughput: baseline %.0f ev/s, with stalled sibling %.0f ev/s "
      "(%.2fx, stalled demoted: %s)\n",
      baseline_eps, stalled_eps, isolation, demoted ? "yes" : "no");

  if (std::FILE* out = std::fopen("BENCH_fanout.json", "w")) {
    std::fprintf(out, "{\n  \"sweep\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(out,
                   "    {\"subscribers\": %zu, \"match_fraction\": %.2f, "
                   "\"deliveries_per_batch\": %llu, \"index_ns_per_event\": %.1f, "
                   "\"legacy_ns_per_event\": %.1f}%s\n",
                   r.subscribers, r.match_fraction,
                   static_cast<unsigned long long>(r.deliveries_per_batch),
                   r.index_ns_per_event, r.legacy_ns_per_event,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"index_cost_ratio_10k_vs_10\": [");
    for (std::size_t i = 0; i < ratios.size(); ++i)
      std::fprintf(out, "%s%.2f", i ? ", " : "", ratios[i]);
    std::fprintf(out, "],\n");
    std::fprintf(out,
                 "  \"stalled_isolation\": {\"baseline_events_per_sec\": %.0f, "
                 "\"stalled_events_per_sec\": %.0f, \"ratio\": %.2f, "
                 "\"stalled_demoted\": %s}\n}\n",
                 baseline_eps, stalled_eps, isolation, demoted ? "true" : "false");
    std::fclose(out);
    std::printf("results: BENCH_fanout.json\n");
  }

  if (!scaling_ok) {
    std::printf("FAIL: index per-event cost at 10k subscribers exceeds 2x the "
                "10-subscriber cost\n");
    return 1;
  }
  if (baseline_eps <= 0 || stalled_eps <= 0) {
    std::printf("FAIL: a pipeline run did not deliver every event in time\n");
    return 1;
  }
  if (isolation < 0.9) {
    std::printf("FAIL: stalled sibling cut healthy throughput to %.2fx "
                "(floor 0.9x)\n", isolation);
    return 1;
  }
  std::printf("fan-out scaling and stalled-consumer isolation criteria met\n");
  return 0;
}
