// Event-store bench: the memory-vs-replay trade behind the sparse
// on-disk segment index.
//
// The store used to keep every live payload in a resident deque, so an
// unbounded (`max_bytes = 0`) store grew RAM linearly with backlog. Now
// sealed segments are the replay source and RAM holds only a bounded
// tail cache. This bench populates unbounded stores of increasing size
// under three cache configurations —
//
//   memory — cache_bytes = infinity: every payload resident, the old
//            in-memory deque behavior (throughput baseline);
//   cache  — the 4 MiB default tail cache;
//   disk   — cache_bytes = 0: everything but the active segment served
//            from sealed segments through the index
//
// — then replays the full range through paged events_since() calls,
// checksumming every payload byte. It asserts (exit 1 on violation):
// resident bytes stay bounded by the configured cache (+ active
// segment) while live bytes grow, all three configurations return
// byte-identical streams, and disk replay stays within 2x of the
// in-memory path. Emits BENCH_store.json.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/eventstore/store.hpp"
#include "src/obs/metrics.hpp"

namespace fsmon {
namespace {

/// Deterministic payload for an id: both sides of the byte-identity
/// check regenerate it independently.
std::vector<std::byte> payload_of(common::EventId id) {
  const std::size_t len = 96 + id % 32;
  std::vector<std::byte> out(len);
  std::uint64_t x = id * 2654435761ull + 0x9E3779B97F4A7C15ull;
  for (std::size_t i = 0; i < len; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<std::byte>(x & 0xFF);
  }
  return out;
}

struct RunResult {
  std::string config;
  std::uint64_t events = 0;
  std::uint64_t live_bytes = 0;
  std::uint64_t resident_bytes = 0;
  bool cache_bounded = true;
  double append_eps = 0;
  double replay_eps = 0;
  std::uint64_t checksum = 0;
  std::uint64_t disk_records = 0;
  std::uint64_t cache_records = 0;
};

RunResult run_config(const std::filesystem::path& dir, const char* name,
                     std::uint64_t cache_bytes, std::uint64_t events) {
  obs::MetricsRegistry registry;
  eventstore::EventStoreOptions options;
  options.directory = dir;
  options.max_bytes = 0;  // unlimited retention: the original OOM scenario
  options.segment_bytes = 1ull << 20;
  options.cache_bytes = cache_bytes;
  options.metrics = &registry;
  eventstore::EventStore store(options);

  RunResult result;
  result.config = name;
  result.events = events;

  constexpr std::size_t kAppendBatch = 1024;
  std::vector<std::vector<std::byte>> payloads;
  std::vector<std::span<const std::byte>> spans;
  const auto append_start = std::chrono::steady_clock::now();
  for (common::EventId next = 1; next <= events;) {
    payloads.clear();
    spans.clear();
    const common::EventId first = next;
    for (std::size_t i = 0; i < kAppendBatch && next <= events; ++i, ++next)
      payloads.push_back(payload_of(next));
    spans.assign(payloads.begin(), payloads.end());
    if (!store.append_batch(first, spans).is_ok()) {
      std::printf("FAIL: append_batch at id %llu\n",
                  static_cast<unsigned long long>(first));
      std::exit(1);
    }
  }
  const double append_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - append_start)
                              .count();
  result.append_eps = static_cast<double>(events) / append_s;

  result.live_bytes = store.live_bytes();
  result.resident_bytes = store.cache_resident_bytes();
  // The bound: the configured budget plus the active segment's payload
  // (always resident because its WAL tail may be unflushed).
  if (cache_bytes != UINT64_MAX)
    result.cache_bounded =
        result.resident_bytes <= cache_bytes + options.segment_bytes;

  // Full-range replay through the public paged API, checksumming every
  // payload byte (FNV-1a) so configurations can be compared for
  // byte-identity without holding two copies of the stream.
  constexpr std::size_t kPage = 8192;
  std::uint64_t checksum = 1469598103934665603ull;
  std::uint64_t replayed = 0;
  const auto replay_start = std::chrono::steady_clock::now();
  common::EventId cursor = 0;
  for (;;) {
    auto page = store.events_since(cursor, kPage);
    if (page.empty()) break;
    cursor = page.back().id;
    for (const auto& event : page) {
      ++replayed;
      for (std::byte b : event.payload) {
        checksum ^= static_cast<std::uint64_t>(b);
        checksum *= 1099511628211ull;
      }
    }
  }
  const double replay_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - replay_start)
                              .count();
  if (replayed != events) {
    std::printf("FAIL: %s replayed %llu of %llu events\n", name,
                static_cast<unsigned long long>(replayed),
                static_cast<unsigned long long>(events));
    std::exit(1);
  }
  result.replay_eps = static_cast<double>(replayed) / replay_s;
  result.checksum = checksum;
  const auto snapshot = registry.snapshot();
  result.disk_records = snapshot.counter_total("store.replay_disk_records");
  result.cache_records = snapshot.counter_total("store.replay_cache_records");
  return result;
}

}  // namespace
}  // namespace fsmon

int main() {
  using namespace fsmon;

  const auto root = std::filesystem::temp_directory_path() / "fsmon_bench_store";
  std::filesystem::remove_all(root);

  const std::vector<std::uint64_t> sizes = {100000, 500000};
  struct Config {
    const char* name;
    std::uint64_t cache_bytes;
  };
  const Config configs[] = {
      {"memory", UINT64_MAX},      // old resident-deque behavior
      {"cache", 4ull << 20},       // default tail cache
      {"disk", 0},                 // active segment only; replay from disk
  };

  bench::banner("event store: replay throughput + resident bytes vs store size");
  bench::Table table({"config", "events", "live MB", "resident MB", "bounded",
                      "append ev/s", "replay ev/s", "disk recs", "cache recs"});
  std::vector<RunResult> results;
  results.reserve(sizes.size() * std::size(configs));
  bool bounded = true;
  bool identical = true;
  bool within_2x = true;
  for (std::uint64_t events : sizes) {
    const RunResult* memory = nullptr;
    for (const auto& config : configs) {
      const auto dir = root / (std::string(config.name) + "_" + std::to_string(events));
      results.push_back(run_config(dir, config.name, config.cache_bytes, events));
      const RunResult& r = results.back();
      if (std::string(config.name) == "memory") memory = &r;
      bounded = bounded && r.cache_bounded;
      if (memory != nullptr && &r != memory) {
        identical = identical && r.checksum == memory->checksum;
        within_2x = within_2x && r.replay_eps * 2.0 >= memory->replay_eps;
      }
      table.add_row({r.config, std::to_string(r.events),
                     bench::fmt(static_cast<double>(r.live_bytes) / (1 << 20), 1),
                     bench::fmt(static_cast<double>(r.resident_bytes) / (1 << 20), 2),
                     r.cache_bounded ? "yes" : "NO", bench::fmt(r.append_eps, 0),
                     bench::fmt(r.replay_eps, 0), std::to_string(r.disk_records),
                     std::to_string(r.cache_records)});
    }
  }
  table.print();
  std::printf("cache bounded: %s | byte-identical: %s | disk replay within 2x: %s\n",
              bounded ? "yes" : "NO", identical ? "yes" : "NO",
              within_2x ? "yes" : "NO");

  if (std::FILE* out = std::fopen("BENCH_store.json", "w")) {
    std::fprintf(out, "{\n  \"runs\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      std::fprintf(out,
                   "    {\"config\": \"%s\", \"events\": %llu, \"live_bytes\": %llu, "
                   "\"resident_bytes\": %llu, \"cache_bounded\": %s, "
                   "\"append_eps\": %.0f, \"replay_eps\": %.0f, "
                   "\"replay_disk_records\": %llu, \"replay_cache_records\": %llu, "
                   "\"checksum\": %llu}%s\n",
                   r.config.c_str(), static_cast<unsigned long long>(r.events),
                   static_cast<unsigned long long>(r.live_bytes),
                   static_cast<unsigned long long>(r.resident_bytes),
                   r.cache_bounded ? "true" : "false", r.append_eps, r.replay_eps,
                   static_cast<unsigned long long>(r.disk_records),
                   static_cast<unsigned long long>(r.cache_records),
                   static_cast<unsigned long long>(r.checksum),
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"cache_bounded\": %s,\n", bounded ? "true" : "false");
    std::fprintf(out, "  \"byte_identical\": %s,\n", identical ? "true" : "false");
    std::fprintf(out, "  \"disk_replay_within_2x\": %s\n}\n",
                 within_2x ? "true" : "false");
    std::fclose(out);
    std::printf("results: BENCH_store.json\n");
  }

  std::filesystem::remove_all(root);

  if (!bounded || !identical || !within_2x) {
    std::printf("FAIL: store bench invariant violated\n");
    return 1;
  }
  return 0;
}
