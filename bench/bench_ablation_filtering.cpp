// Ablation: filter placement — aggregator-side vs consumer-side.
//
// The paper's stated design choice (Section IV "Consumption"): "This
// filtering of events is not done at the aggregator in order to
// alleviate potential overheads if a large number of consumers were to
// ask to monitor different files and directories."
//
// With aggregator-side filtering, the serial aggregator evaluates every
// consumer's rule for every event; its service time grows linearly with
// the consumer count and eventually caps the pipeline. With
// consumer-side filtering, each consumer evaluates only its own rules,
// in parallel, and the aggregator cost stays flat. This ablation sweeps
// the consumer count on an Iota-rate stream and reports the sustainable
// throughput of each placement.
#include <memory>

#include "bench/bench_util.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/service_station.hpp"

using namespace fsmon;

namespace {

using std::chrono::microseconds;

constexpr double kArrivalRate = 38372;  // 4-MDS Iota aggregate
const common::Duration kAggregatorBase = microseconds(20);
const common::Duration kFilterCost = microseconds(2);  // one rule evaluation
const common::Duration kConsumerBase = microseconds(5);

struct Outcome {
  double delivered_rate = 0;
  double aggregator_cpu = 0;
};

Outcome run(std::size_t consumers, bool filter_at_aggregator,
            common::Duration duration = std::chrono::seconds(5)) {
  sim::Engine engine;
  sim::ServiceStation aggregator(engine, "aggregator");
  std::vector<std::unique_ptr<sim::ServiceStation>> consumer_stations;
  for (std::size_t i = 0; i < consumers; ++i)
    consumer_stations.push_back(
        std::make_unique<sim::ServiceStation>(engine, "consumer" + std::to_string(i)));

  std::uint64_t delivered = 0;
  const auto interval = common::from_seconds(1.0 / kArrivalRate);
  const common::Duration aggregator_service =
      filter_at_aggregator
          ? kAggregatorBase + kFilterCost * static_cast<std::int64_t>(consumers)
          : kAggregatorBase;
  const common::Duration consumer_service =
      filter_at_aggregator ? kConsumerBase : kConsumerBase + kFilterCost;

  auto arrival = std::make_shared<std::function<void()>>();
  *arrival = [&, arrival] {
    if (engine.now().time_since_epoch() >= duration) return;
    aggregator.submit(aggregator_service, [&] {
      // Charge CPU at completion so utilization reflects work done, not
      // offered load (capped at 100% when saturated).
      aggregator.usage().charge_busy(aggregator_service);
      for (auto& consumer : consumer_stations) {
        consumer->submit(consumer_service, [&] {
          if (engine.now().time_since_epoch() <= duration) ++delivered;
        });
      }
    });
    engine.schedule(interval, *arrival);
  };
  engine.schedule(common::Duration::zero(), *arrival);
  engine.run_until(common::TimePoint{} + duration + std::chrono::seconds(1));

  Outcome outcome;
  outcome.delivered_rate =
      static_cast<double>(delivered) /
      (common::to_seconds(duration) * static_cast<double>(consumers));
  outcome.aggregator_cpu = aggregator.usage().cpu_percent(duration);
  return outcome;
}

}  // namespace

int main() {
  bench::banner("Ablation: filtering at aggregator vs at consumers (4-MDS Iota stream)");

  bench::Table table({"Consumers", "Aggregator-side: ev/s per consumer",
                      "Aggregator CPU%", "Consumer-side: ev/s per consumer",
                      "Aggregator CPU%"});
  for (std::size_t consumers : {1, 4, 16, 64}) {
    const auto at_aggregator = run(consumers, true);
    const auto at_consumer = run(consumers, false);
    table.add_row({std::to_string(consumers),
                   bench::fmt(at_aggregator.delivered_rate),
                   bench::fmt(at_aggregator.aggregator_cpu, 1),
                   bench::fmt(at_consumer.delivered_rate),
                   bench::fmt(at_consumer.aggregator_cpu, 1)});
  }
  table.print();
  std::printf(
      "Shape: aggregator-side filtering saturates the serial aggregator\n"
      "once base + N*filter exceeds the event inter-arrival time (~26us\n"
      "at 38k ev/s), collapsing delivery; consumer-side filtering keeps\n"
      "the aggregator flat at any consumer count — the paper's choice.\n");
  return 0;
}
