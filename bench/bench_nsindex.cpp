// Namespace-index bench: fold throughput, query latency vs event count,
// and restart cost vs delta size.
//
// Part 1 — fold throughput. Applies a synthetic metadata stream
// (creates, modifies, renames over a growing tree) straight into the
// NamespaceIndex and reports events/s for the pure applier.
//
// Part 2 — query latency vs event count. The whole point of
// materializing state is that queries hit the index, never the stream:
// over a FIXED path population, lookup / list_dir / activity_topk
// latency must stay flat when the event volume grows 10x (the extra
// events are modifies over the same paths — node count unchanged).
// Fails (exit 1) if any query's latency at 10x events exceeds 3x its
// latency at 1x.
//
// Part 3 — restart vs delta. With a fixed 200k-event history
// checkpointed at different points, recovery = snapshot restore + delta
// re-fold. Restart time must track the DELTA, not the history: the
// bench reports snapshot-restore + replay time for deltas of 2k / 20k /
// 100k events plus the no-snapshot cold fold for contrast.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/nsindex/snapshot.hpp"

namespace fsmon {
namespace {

using nsindex::NamespaceIndex;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

core::StdEvent make_event(std::uint64_t id, core::EventKind kind,
                          std::string path, bool is_dir = false,
                          std::uint64_t cookie = 0) {
  core::StdEvent event;
  event.id = id;
  event.kind = kind;
  event.is_dir = is_dir;
  event.watch_root = "/mnt/lustre";
  event.path = std::move(path);
  event.cookie = cookie;
  event.timestamp = common::TimePoint{std::chrono::nanoseconds(id * 1000)};
  event.source = "lustre:MDT0";
  return event;
}

/// Dense-id stream: `dirs` top-level directories created first, then
/// `count` events cycling create / modify / rename-pair over them.
std::vector<core::StdEvent> make_stream(std::size_t count, std::size_t dirs) {
  std::vector<core::StdEvent> events;
  events.reserve(count + dirs);
  std::uint64_t id = 0;
  for (std::size_t d = 0; d < dirs; ++d)
    events.push_back(make_event(++id, core::EventKind::kCreate,
                                "/d" + std::to_string(d), /*is_dir=*/true));
  std::size_t file = 0;
  while (events.size() < count + dirs) {
    const std::string dir = "/d" + std::to_string(file % dirs);
    const std::string path = dir + "/f" + std::to_string(file);
    switch (file % 4) {
      case 0:
      case 1:
        events.push_back(make_event(++id, core::EventKind::kCreate, path));
        break;
      case 2:
        events.push_back(make_event(++id, core::EventKind::kModify,
                                    dir + "/f" + std::to_string(file - 1)));
        break;
      default: {
        const std::string from = dir + "/f" + std::to_string(file - 2);
        const std::uint64_t cookie = 1000000 + file;
        events.push_back(
            make_event(++id, core::EventKind::kMovedFrom, from, false, cookie));
        if (events.size() < count + dirs)
          events.push_back(make_event(++id, core::EventKind::kMovedTo,
                                      from + "r", false, cookie));
        break;
      }
    }
    ++file;
  }
  return events;
}

void apply_all(NamespaceIndex& index, const std::vector<core::StdEvent>& events) {
  for (const auto& event : events) index.apply(0, event);
}

/// Fixed population of `files` paths, then `modifies` events over them:
/// node count is identical regardless of the modify volume.
std::vector<core::StdEvent> make_fixed_population(std::size_t files,
                                                  std::size_t modifies,
                                                  std::size_t dirs) {
  std::vector<core::StdEvent> events;
  events.reserve(files + modifies + dirs);
  std::uint64_t id = 0;
  for (std::size_t d = 0; d < dirs; ++d)
    events.push_back(make_event(++id, core::EventKind::kCreate,
                                "/p" + std::to_string(d), /*is_dir=*/true));
  for (std::size_t f = 0; f < files; ++f)
    events.push_back(make_event(
        ++id, core::EventKind::kCreate,
        "/p" + std::to_string(f % dirs) + "/f" + std::to_string(f)));
  for (std::size_t m = 0; m < modifies; ++m)
    events.push_back(make_event(
        ++id, core::EventKind::kModify,
        "/p" + std::to_string(m % dirs) + "/f" + std::to_string(m % files)));
  return events;
}

struct QueryCosts {
  std::uint64_t events = 0;
  double lookup_ns = 0;
  double list_dir_ns = 0;
  double topk_ns = 0;
};

QueryCosts measure_queries(std::size_t modifies) {
  constexpr std::size_t kFiles = 2000;
  constexpr std::size_t kDirs = 50;
  nsindex::NamespaceIndexOptions options;
  options.undo_capacity = 1024;  // bounded regardless of volume
  NamespaceIndex index(options);
  apply_all(index, make_fixed_population(kFiles, modifies, kDirs));

  QueryCosts costs;
  costs.events = index.applied_seq();
  std::uint64_t sink = 0;

  constexpr int kLookups = 200000;
  auto start = Clock::now();
  for (int i = 0; i < kLookups; ++i) {
    auto node = index.lookup("/p" + std::to_string(i % kDirs) + "/f" +
                             std::to_string(i % kFiles));
    if (node.has_value()) sink += node->events;
  }
  costs.lookup_ns = ms_since(start) * 1e6 / kLookups;

  constexpr int kListings = 20000;
  start = Clock::now();
  for (int i = 0; i < kListings; ++i) {
    auto listing = index.list_dir("/p" + std::to_string(i % kDirs));
    if (listing.is_ok()) sink += listing.value().size();
  }
  costs.list_dir_ns = ms_since(start) * 1e6 / kListings;

  constexpr int kTopks = 2000;
  start = Clock::now();
  for (int i = 0; i < kTopks; ++i) sink += index.activity_topk(10).size();
  costs.topk_ns = ms_since(start) * 1e6 / kTopks;

  if (sink == 0) std::printf("(unexpected zero sink)\n");
  return costs;
}

struct RestartCost {
  std::uint64_t delta = 0;
  double restore_ms = 0;
  double replay_ms = 0;
};

}  // namespace
}  // namespace fsmon

int main() {
  using namespace fsmon;

  // --- Part 1: fold throughput -------------------------------------
  constexpr std::size_t kFoldEvents = 400000;
  const auto stream = make_stream(kFoldEvents, 64);
  NamespaceIndex fold_index;
  auto start = Clock::now();
  apply_all(fold_index, stream);
  const double fold_ms = ms_since(start);
  const double fold_eps = static_cast<double>(fold_index.applied_seq()) /
                          (fold_ms / 1000.0);
  std::printf("fold: %llu events in %.0f ms = %.0f events/s (%zu nodes)\n",
              static_cast<unsigned long long>(fold_index.applied_seq()), fold_ms,
              fold_eps, fold_index.node_count());

  // --- Part 2: query latency vs event count ------------------------
  const QueryCosts base = measure_queries(30000);
  const QueryCosts scaled = measure_queries(300000);
  const double lookup_ratio = scaled.lookup_ns / std::max(base.lookup_ns, 1e-9);
  const double list_ratio = scaled.list_dir_ns / std::max(base.list_dir_ns, 1e-9);
  const double topk_ratio = scaled.topk_ns / std::max(base.topk_ns, 1e-9);
  std::printf("queries at %llu events: lookup %.0f ns, list_dir %.0f ns, "
              "topk %.0f ns\n",
              static_cast<unsigned long long>(base.events), base.lookup_ns,
              base.list_dir_ns, base.topk_ns);
  std::printf("queries at %llu events: lookup %.0f ns (%.2fx), list_dir %.0f ns "
              "(%.2fx), topk %.0f ns (%.2fx)\n",
              static_cast<unsigned long long>(scaled.events), scaled.lookup_ns,
              lookup_ratio, scaled.list_dir_ns, list_ratio, scaled.topk_ns,
              topk_ratio);

  // --- Part 3: restart cost vs delta size --------------------------
  constexpr std::size_t kHistory = 200000;
  const auto history = make_stream(kHistory, 64);
  const auto snap_dir =
      std::filesystem::temp_directory_path() / "fsmon_bench_nsindex";
  std::vector<RestartCost> restarts;
  double cold_ms = 0;
  {
    NamespaceIndex reference;
    apply_all(reference, history);
    start = Clock::now();
    NamespaceIndex cold;
    apply_all(cold, history);
    cold_ms = ms_since(start);
  }
  for (std::size_t delta : {2000u, 20000u, 100000u}) {
    std::filesystem::remove_all(snap_dir);
    // Checkpoint the prefix, then "restart": restore + re-fold the tail.
    NamespaceIndex writer;
    std::size_t cut = 0;
    while (cut < history.size() && writer.applied_seq() < history.size() - delta)
      writer.apply(0, history[cut++]);
    nsindex::SnapshotStore snapshots({snap_dir, 2, nullptr});
    if (!snapshots.write(writer).is_ok()) {
      std::printf("FAIL: snapshot write failed\n");
      return 1;
    }
    RestartCost cost;
    start = Clock::now();
    NamespaceIndex recovered;
    auto seq = snapshots.recover(recovered);
    cost.restore_ms = ms_since(start);
    if (!seq.is_ok() || seq.value() == 0) {
      std::printf("FAIL: snapshot recover failed\n");
      return 1;
    }
    start = Clock::now();
    for (std::size_t i = recovered.applied_seq(); i < history.size(); ++i)
      recovered.apply(0, history[i]);
    cost.replay_ms = ms_since(start);
    cost.delta = history.size() - seq.value();
    restarts.push_back(cost);
    std::printf("restart with %llu-event delta: restore %.1f ms + replay %.1f ms "
                "(cold fold of full history: %.0f ms)\n",
                static_cast<unsigned long long>(cost.delta), cost.restore_ms,
                cost.replay_ms, cold_ms);
  }
  std::filesystem::remove_all(snap_dir);

  if (std::FILE* out = std::fopen("BENCH_nsindex.json", "w")) {
    std::fprintf(out, "{\n  \"fold\": {\"events\": %llu, \"events_per_sec\": %.0f},\n",
                 static_cast<unsigned long long>(fold_index.applied_seq()),
                 fold_eps);
    std::fprintf(out,
                 "  \"queries\": [\n"
                 "    {\"events\": %llu, \"lookup_ns\": %.1f, \"list_dir_ns\": "
                 "%.1f, \"topk_ns\": %.1f},\n"
                 "    {\"events\": %llu, \"lookup_ns\": %.1f, \"list_dir_ns\": "
                 "%.1f, \"topk_ns\": %.1f}\n  ],\n",
                 static_cast<unsigned long long>(base.events), base.lookup_ns,
                 base.list_dir_ns, base.topk_ns,
                 static_cast<unsigned long long>(scaled.events), scaled.lookup_ns,
                 scaled.list_dir_ns, scaled.topk_ns);
    std::fprintf(out,
                 "  \"query_latency_ratio_10x\": {\"lookup\": %.2f, \"list_dir\": "
                 "%.2f, \"topk\": %.2f},\n",
                 lookup_ratio, list_ratio, topk_ratio);
    std::fprintf(out, "  \"restart\": {\"cold_fold_ms\": %.1f, \"deltas\": [\n",
                 cold_ms);
    for (std::size_t i = 0; i < restarts.size(); ++i)
      std::fprintf(out,
                   "    {\"delta_events\": %llu, \"restore_ms\": %.1f, "
                   "\"replay_ms\": %.1f}%s\n",
                   static_cast<unsigned long long>(restarts[i].delta),
                   restarts[i].restore_ms, restarts[i].replay_ms,
                   i + 1 < restarts.size() ? "," : "");
    std::fprintf(out, "  ]}\n}\n");
    std::fclose(out);
    std::printf("results: BENCH_nsindex.json\n");
  }

  // The assertion: queries hit materialized state, so 10x the event
  // volume over the same population must not move latency materially.
  for (double ratio : {lookup_ratio, list_ratio, topk_ratio}) {
    if (ratio > 3.0) {
      std::printf("FAIL: query latency grew %.2fx at 10x events (limit 3x)\n",
                  ratio);
      return 1;
    }
  }
  return 0;
}
