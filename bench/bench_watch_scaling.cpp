// Watch-scaling measurement (paper Sections I / II-A): "inotify's
// default configuration can monitor approximately 512 000 directories
// concurrently ... the inability to recursively monitor directories
// restricts its suitability for the largest storage systems", and each
// watcher "requires 1KB of memory" plus a recursive crawl to place.
//
// This bench measures, on the real kernel: the time to crawl-and-watch a
// tree of N directories, the watch count consumed, and the implied
// kernel memory — against FSMonitor's alternative of one subscription
// with a recursive filtering rule (constant cost regardless of N).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench/bench_util.hpp"
#include "src/core/monitor.hpp"
#include "src/localfs/inotify_dsi.hpp"

using namespace fsmon;

namespace {

std::filesystem::path make_tree(std::size_t dirs) {
  auto root = std::filesystem::temp_directory_path() / "fsmon_watch_scaling";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  // Two-level fan-out so the crawl exercises recursion.
  const std::size_t top = (dirs + 63) / 64;
  std::size_t created = 0;
  for (std::size_t i = 0; i < top && created < dirs; ++i) {
    const auto parent = root / ("d" + std::to_string(i));
    std::filesystem::create_directory(parent);
    ++created;
    for (std::size_t j = 0; j < 63 && created < dirs; ++j) {
      std::filesystem::create_directory(parent / ("s" + std::to_string(j)));
      ++created;
    }
  }
  return root;
}

std::size_t max_user_watches() {
  std::ifstream in("/proc/sys/fs/inotify/max_user_watches");
  std::size_t value = 0;
  in >> value;
  return value;
}

}  // namespace

int main() {
  bench::banner("Watch scaling: inotify per-directory watches vs FSMonitor filtering");

  if (!localfs::InotifyDsi::available()) {
    std::printf("inotify unavailable on this host; skipping the kernel measurement.\n");
    return 0;
  }
  std::printf("kernel max_user_watches: %zu (paper quotes ~512 000 default)\n",
              max_user_watches());

  bench::Table table({"Directories", "inotify watches", "crawl+watch time (ms)",
                      "kernel memory est. (MB, 1KB/watch)",
                      "FSMonitor recursive-rule cost"});
  for (std::size_t dirs : {std::size_t{100}, std::size_t{1000}, std::size_t{5000},
                           std::size_t{20000}}) {
    if (dirs + 100 > max_user_watches()) {
      std::printf("(skipping %zu dirs: exceeds max_user_watches)\n", dirs);
      continue;
    }
    const auto root = make_tree(dirs);
    localfs::InotifyDsi dsi({root.string(), /*recursive=*/true});
    const auto start = std::chrono::steady_clock::now();
    const auto status = dsi.start([](core::StdEvent) {});
    const auto elapsed = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);
    if (!status.is_ok()) {
      std::printf("failed at %zu dirs: %s\n", dirs, status.to_string().c_str());
      break;
    }
    const std::size_t watches = dsi.watch_count();
    dsi.stop();
    std::filesystem::remove_all(root);
    table.add_row({std::to_string(dirs), std::to_string(watches),
                   bench::fmt(elapsed.count(), 1),
                   bench::fmt(static_cast<double>(watches) / 1024.0, 2),
                   "1 watch + 1 filter rule (constant)"});
  }
  table.print();
  std::printf(
      "Shape: inotify's cost is linear in directory count (one watch and\n"
      "~1KB kernel memory per directory, plus a full crawl before any\n"
      "event flows); FSMonitor's interface-layer recursive rule is O(1)\n"
      "per watch root on storage systems with event catalogs — the\n"
      "motivation for the scalable DSI (paper Sections I-II).\n");
  return 0;
}
