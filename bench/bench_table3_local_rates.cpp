// Table III reproduction: events reported per second by FSMonitor vs the
// platform's native tool (FSWatch on macOS, inotifywait on Linux) under
// Evaluate_Performance_Script at each platform's measured generation
// rate.
#include "bench/bench_util.hpp"
#include "bench/local_sim.hpp"

using namespace fsmon;

int main() {
  bench::banner("Table III: Events reporting rate of FSMonitor, FSWatch and inotify");

  struct PaperRow {
    localfs::PlatformProfile profile;
    double paper_generated;
    double paper_fsmonitor;
    double paper_other;
  };
  const PaperRow rows[] = {
      {localfs::PlatformProfile::macos(), 4503, 4467, 3004},
      {localfs::PlatformProfile::ubuntu(), 4007, 3985, 3997},
      {localfs::PlatformProfile::centos(), 3894, 3875, 3878},
  };

  bench::Table table({"Platform", "Events generated/sec", "FSMonitor reported/sec",
                      "Other reported/sec", "Other tool"});
  for (const auto& row : rows) {
    const auto fsmonitor = bench::run_local_sim(row.profile, /*use_fsmonitor=*/true);
    const auto other = bench::run_local_sim(row.profile, /*use_fsmonitor=*/false);
    table.add_row({row.profile.name,
                   bench::vs_paper(fsmonitor.generated_rate, row.paper_generated),
                   bench::vs_paper(fsmonitor.reported_rate, row.paper_fsmonitor),
                   bench::vs_paper(other.reported_rate, row.paper_other),
                   row.profile.other_tool});
  }
  table.print();
  std::printf(
      "Shape check: FSMonitor ~= generation rate everywhere; FSWatch trails\n"
      "badly on macOS; inotifywait edges out FSMonitor slightly on Linux\n"
      "(interface-layer path parsing, Section V-C2).\n");
  return 0;
}
