// Local-platform simulation used by the Table III / Table IV benches:
// one generator at the platform's measured baseline rate feeding one
// monitor service station (FSMonitor's pipeline or the native
// comparator), in virtual time.
#pragma once

#include <functional>
#include <memory>

#include "src/common/types.hpp"
#include "src/localfs/platform.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/service_station.hpp"

namespace fsmon::bench {

struct LocalSimResult {
  double generated_rate = 0;
  double reported_rate = 0;
  double cpu_percent = 0;
  double memory_percent = 0;
};

/// Run `duration` of virtual time on `profile`; `use_fsmonitor` selects
/// FSMonitor's costs vs the native tool's ("Other" column).
inline LocalSimResult run_local_sim(const localfs::PlatformProfile& profile,
                                    bool use_fsmonitor,
                                    common::Duration duration = std::chrono::seconds(10)) {
  sim::Engine engine;
  sim::ServiceStation monitor(engine, "monitor");
  const auto event_cost =
      use_fsmonitor ? profile.fsmonitor_event_cost : profile.other_event_cost;
  const auto event_cpu =
      use_fsmonitor ? profile.fsmonitor_event_cpu : profile.other_event_cpu;

  std::uint64_t generated = 0;
  std::uint64_t reported = 0;
  const auto interval = common::from_seconds(1.0 / profile.generation_rate);
  auto arrival = std::make_shared<std::function<void()>>();
  *arrival = [&, arrival] {
    if (engine.now().time_since_epoch() >= duration) return;
    ++generated;
    monitor.usage().charge_busy(event_cpu);
    monitor.submit(event_cost, [&] {
      if (engine.now().time_since_epoch() <= duration) ++reported;
    });
    engine.schedule(interval, *arrival);
  };
  engine.schedule(common::Duration::zero(), *arrival);
  engine.run_until(common::TimePoint{} + duration + std::chrono::seconds(1));

  LocalSimResult result;
  const double seconds = common::to_seconds(duration);
  result.generated_rate = static_cast<double>(generated) / seconds;
  result.reported_rate = static_cast<double>(reported) / seconds;
  result.cpu_percent = monitor.usage().cpu_percent(duration);
  const auto rss = use_fsmonitor ? profile.fsmonitor_rss_bytes : profile.other_rss_bytes;
  result.memory_percent =
      100.0 * static_cast<double>(rss) / static_cast<double>(profile.ram_bytes);
  return result;
}

}  // namespace fsmon::bench
