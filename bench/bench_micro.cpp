// Google-benchmark micro-benchmarks for the hot-path primitives: the
// fid2path LRU cache, the bounded queue, Algorithm 1 processing, event
// serialization, and pub/sub publishing.
#include <filesystem>

#include <benchmark/benchmark.h>

#include "src/common/bounded_queue.hpp"
#include "src/common/lru_cache.hpp"
#include "src/common/random.hpp"
#include "src/common/spsc_ring.hpp"
#include "src/core/event.hpp"
#include "src/msgq/pubsub.hpp"
#include "src/eventstore/store.hpp"
#include "src/scalable/processor.hpp"

namespace {

using namespace fsmon;

void BM_LruCacheHit(benchmark::State& state) {
  common::LruCache<std::uint64_t, std::string> cache(
      static_cast<std::size_t>(state.range(0)));
  for (std::int64_t i = 0; i < state.range(0); ++i)
    cache.put(static_cast<std::uint64_t>(i), "/some/path/component");
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(key));
    key = (key + 1) % static_cast<std::uint64_t>(state.range(0));
  }
}
BENCHMARK(BM_LruCacheHit)->Arg(200)->Arg(5000)->Arg(100000);

void BM_LruCacheMissInsertEvict(benchmark::State& state) {
  common::LruCache<std::uint64_t, std::string> cache(5000);
  std::uint64_t key = 0;
  for (auto _ : state) {
    cache.put(key++, "/some/path/component");
  }
  state.counters["evictions"] =
      static_cast<double>(cache.stats().evictions) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_LruCacheMissInsertEvict);

void BM_BoundedQueuePushPop(benchmark::State& state) {
  common::BoundedQueue<int> queue(1024);
  for (auto _ : state) {
    queue.push(1);
    benchmark::DoNotOptimize(queue.try_pop());
  }
}
BENCHMARK(BM_BoundedQueuePushPop);

void BM_SpscRingPushPop(benchmark::State& state) {
  common::SpscRing<int> ring(1024);
  for (auto _ : state) {
    ring.try_push(1);
    benchmark::DoNotOptimize(ring.try_pop());
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_EventSerializeRoundTrip(benchmark::State& state) {
  core::StdEvent event;
  event.id = 42;
  event.kind = core::EventKind::kCreate;
  event.watch_root = "/mnt/lustre";
  event.path = "/perf/d123/f456789";
  event.source = "lustre:MDT0";
  std::vector<std::byte> buffer;
  for (auto _ : state) {
    buffer.clear();
    core::serialize_event(event, buffer);
    benchmark::DoNotOptimize(core::deserialize_event(buffer));
  }
}
BENCHMARK(BM_EventSerializeRoundTrip);

void BM_PubSubPublish(benchmark::State& state) {
  msgq::Bus bus;
  auto pub = bus.make_publisher("p");
  auto sub = bus.make_subscriber("s", 1 << 20, common::OverflowPolicy::kDropNewest);
  sub->subscribe("");
  pub->connect(sub);
  for (auto _ : state) {
    pub->publish("fsmon/mdt0", "payload");
    if (sub->pending() > (1u << 19)) {
      state.PauseTiming();
      while (sub->try_recv()) {
      }
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_PubSubPublish);

void BM_BatchedHop(benchmark::State& state) {
  // One serialize->publish->recv->deserialize hop, as the collector ->
  // aggregator edge does it, at varying publish-batch sizes. Items are
  // events, so events/s is directly comparable across batch sizes.
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  msgq::Bus bus;
  auto pub = bus.make_publisher("p");
  auto sub = bus.make_subscriber("s", 1 << 16, common::OverflowPolicy::kDropNewest);
  sub->subscribe("");
  pub->connect(sub);
  core::StdEvent event;
  event.kind = core::EventKind::kCreate;
  event.watch_root = "/mnt/lustre";
  event.path = "/d123/f45678";  // SSO-sized: isolates framing cost from malloc
  event.source = "lustre:MDT0";
  core::EventBatch batch;
  for (std::size_t i = 0; i < batch_size; ++i) {
    event.id = i + 1;
    batch.events.push_back(event);
  }
  std::vector<std::byte> frame;
  for (auto _ : state) {
    frame.clear();
    core::encode_batch(batch, frame);
    pub->publish("fsmon/mdt0",
                 std::string(reinterpret_cast<const char*>(frame.data()),
                             frame.size()));
    auto message = sub->try_recv();
    auto decoded = core::decode_batch(
        std::as_bytes(std::span<const char>(message->payload)));
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_BatchedHop)->Arg(1)->Arg(64)->Arg(512);

void BM_ProcessorAlgorithm1(benchmark::State& state) {
  common::ManualClock clock;
  lustre::LustreFs fs(lustre::LustreFsOptions{}, clock);
  lustre::FidResolverOptions resolver_options;  // zero modeled cost: measure real work
  resolver_options.base_cost = {};
  resolver_options.per_component_cost = {};
  lustre::FidResolver resolver(fs, resolver_options);
  scalable::EventProcessor::FidCache cache(5000);
  scalable::EventProcessor processor(resolver, &cache, scalable::ProcessorCosts{},
                                     "lustre:MDT0");
  fs.mkdir("/d");
  // Pre-generate a batch of records to process.
  std::vector<lustre::ChangelogRecord> records;
  for (int i = 0; i < 1024; ++i) {
    fs.create("/d/f" + std::to_string(i));
    fs.modify("/d/f" + std::to_string(i), 64);
  }
  records = fs.mds(0).mdt().changelog().read(0, 4096);
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(processor.process(records[index]));
    index = (index + 1) % records.size();
  }
}
BENCHMARK(BM_ProcessorAlgorithm1);

void BM_LustreCreateOp(benchmark::State& state) {
  common::ManualClock clock;
  lustre::LustreFs fs(lustre::LustreFsOptions{}, clock);
  fs.mkdir("/d");
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.create("/d/f" + std::to_string(i++)));
  }
}
BENCHMARK(BM_LustreCreateOp);

void BM_EventStoreAppend(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() / "fsmon_bench_store";
  std::filesystem::remove_all(dir);
  eventstore::EventStoreOptions options;
  options.directory = dir;
  eventstore::EventStore store(options);
  const auto payload = core::serialize_event(core::StdEvent{});
  common::EventId id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.append(id++, payload));
    if (id % 100000 == 0) {
      state.PauseTiming();
      store.mark_reported(id - 1);
      store.purge_reported();
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_EventStoreAppend);

void BM_EventStoreReplay(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() / "fsmon_bench_replay";
  std::filesystem::remove_all(dir);
  eventstore::EventStoreOptions options;
  options.directory = dir;
  eventstore::EventStore store(options);
  const auto payload = core::serialize_event(core::StdEvent{});
  for (common::EventId id = 1; id <= 10000; ++id) store.append(id, payload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.events_since(5000, 1000));
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_EventStoreReplay);

void BM_ZipfSample(benchmark::State& state) {
  common::Rng rng(1);
  common::ZipfSampler zipf(2000, 0.9);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample);

}  // namespace

BENCHMARK_MAIN();
