// Section V-D5 reproduction: FSMonitor's concurrent per-MDS collection
// vs a Robinhood-style client-side round-robin poller on Iota with four
// MDSs (paper: 32 459 vs 37 948 events/sec, a 14.5% advantage).
#include "bench/bench_util.hpp"
#include "src/scalable/sim_driver.hpp"

using namespace fsmon;

int main() {
  bench::banner("Section V-D5: Comparison with Robinhood (Iota, 4 MDSs)");

  scalable::SimConfig config;
  config.profile = lustre::TestbedProfile::iota();
  config.duration = std::chrono::seconds(30);
  config.cache_size = 5000;
  config.mds_count = 4;

  const auto fsmonitor = scalable::run_pipeline_sim(config);
  const auto robinhood = scalable::run_robinhood_sim(config);

  bench::Table table({"System", "Events/sec (4 MDSs)", "Per-MDS average"});
  table.add_row({"FSMonitor (concurrent collectors + MGS aggregator)",
                 bench::vs_paper(fsmonitor.reported_rate, 37948),
                 bench::fmt(fsmonitor.reported_rate / 4)});
  table.add_row({"Robinhood (client-side round-robin polling)",
                 bench::vs_paper(robinhood.reported_rate, 32459),
                 bench::fmt(robinhood.reported_rate / 4)});
  table.print();

  const double advantage =
      100.0 * (fsmonitor.reported_rate / robinhood.reported_rate - 1.0);
  std::printf(
      "FSMonitor advantage: %.1f%% (paper: 14.5%%, \"compared to iterative\n"
      "monitoring methods used by the popular Robinhood system\"). Shape:\n"
      "with DNE multi-MDS deployments, parallel monitoring wins.\n",
      advantage);
  return 0;
}
