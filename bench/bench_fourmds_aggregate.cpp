// Section V-D2 (4-MDS aggregate) reproduction: with all four of Iota's
// MDSs generating, FSMonitor collects in parallel and reports nearly the
// full aggregate rate to the consumer (paper: 38 372 generated,
// 37 948 reported events/sec).
#include "bench/bench_util.hpp"
#include "src/scalable/sim_driver.hpp"

using namespace fsmon;

int main() {
  bench::banner("Section V-D2: Iota 4-MDS aggregate throughput");

  scalable::SimConfig config;
  config.profile = lustre::TestbedProfile::iota();
  config.duration = std::chrono::seconds(30);
  config.cache_size = 5000;
  config.mds_count = 4;
  const auto report = scalable::run_pipeline_sim(config);

  bench::Table table({"Metric", "Measured vs paper"});
  table.add_row({"Generated events/sec (4 MDSs)",
                 bench::vs_paper(report.generated_rate, 38372)});
  table.add_row({"Reported events/sec (consumer)",
                 bench::vs_paper(report.reported_rate, 37948)});
  for (int i = 0; i < 4; ++i) {
    table.add_row({"  reported via MDS" + std::to_string(i),
                   bench::fmt(static_cast<double>(report.per_mds_reported[i]) /
                              common::to_seconds(config.duration))});
  }
  table.add_row({"Collector CPU% (avg)", bench::fmt(report.collector.cpu_percent, 2)});
  table.add_row({"Aggregator CPU%", bench::fmt(report.aggregator.cpu_percent, 2)});
  table.add_row({"Cache hit rate", bench::fmt(report.cache_hit_rate, 3)});
  table.print();
  std::printf(
      "Shape: per-MDS parallel collection scales the single-MDS rate by\n"
      "~4x with no event loss (\"events are queued and simply processed at\n"
      "a lower rate than they are generated\").\n");
  return 0;
}
