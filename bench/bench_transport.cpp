// Transport hop bench: the zero-copy FrameRef hop against the historic
// copy-per-hop pub/sub string hop (the BM_BatchedHop loop from
// bench_micro, reproduced here as the baseline).
//
// The baseline pays the pre-refactor pipeline's per-hop tax: build a
// std::string from the encoded frame, publish it (the bus copies the
// payload into the subscriber queue), and decode_batch on the receive
// side materializes every event. The transport hop is what the stages
// actually do now: adopt the encoded buffer into a FrameRef (a move),
// send it (refcount bump / one ring write / scatter-gather writev), and
// view_batch the received bytes in place — one CRC verify at ingress
// (as the aggregator does) but no per-hop deserialization, which is the
// one-serialization invariant the codec counters assert.
//
// Emits BENCH_transport.json and fails (exit 1) unless, at batch 64,
// the in-proc and shm hops both reach >= 2x the baseline events/s with
// frame.copies == 0 across their measured loops and exactly one
// serialize call per event (and zero deserialize calls) in every
// zero-copy run.
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/event.hpp"
#include "src/msgq/pubsub.hpp"
#include "src/transport/inproc.hpp"
#include "src/transport/shm.hpp"
#include "src/transport/tcp.hpp"

namespace fsmon {
namespace {

constexpr std::uint64_t kEventsPerRun = 1 << 18;  // ~constant work per run
constexpr double kRequiredSpeedup = 2.0;

bool sockets_available() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

core::EventBatch make_batch(std::size_t batch_size) {
  core::StdEvent event;
  event.kind = core::EventKind::kCreate;
  event.watch_root = "/mnt/lustre";
  event.path = "/d123/f45678";  // SSO-sized: isolates framing cost from malloc
  event.source = "lustre:MDT0";
  core::EventBatch batch;
  for (std::size_t i = 0; i < batch_size; ++i) {
    event.id = i + 1;
    batch.events.push_back(event);
  }
  return batch;
}

struct HopResult {
  std::string mode;
  std::size_t batch = 0;
  std::uint64_t events = 0;
  double wall_ms = 0;
  double events_per_sec = 0;
  std::uint64_t frame_copies = 0;
  bool one_serialization = false;
};

std::size_t iterations_for(std::size_t batch_size) {
  // Cap the frame count so small-batch runs (many tiny frames) finish in
  // reasonable time on the slower carriers; events/s stays comparable.
  return std::min<std::size_t>(kEventsPerRun / batch_size, 1 << 16);
}

/// The BM_BatchedHop loop: encode, publish a copied string payload,
/// receive, decode every event. One hop of the pre-transport pipeline.
HopResult run_baseline(std::size_t batch_size) {
  msgq::Bus bus;
  auto pub = bus.make_publisher("p");
  auto sub = bus.make_subscriber("s", 1 << 16, common::OverflowPolicy::kDropNewest);
  sub->subscribe("");
  pub->connect(sub);
  const core::EventBatch batch = make_batch(batch_size);
  const std::size_t iters = iterations_for(batch_size);

  std::uint64_t sink = 0;
  std::vector<std::byte> frame;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    frame.clear();
    core::encode_batch(batch, frame);
    pub->publish("fsmon/mdt0",
                 std::string(reinterpret_cast<const char*>(frame.data()), frame.size()));
    auto message = sub->try_recv();
    auto decoded = core::decode_batch(
        std::as_bytes(std::span<const char>(message->payload)));
    sink += decoded.value().events.size();
  }
  const auto done = std::chrono::steady_clock::now();

  HopResult result;
  result.mode = "msgq-copy";
  result.batch = batch_size;
  result.events = sink;
  result.wall_ms = std::chrono::duration<double, std::milli>(done - start).count();
  result.events_per_sec = static_cast<double>(sink) / (result.wall_ms / 1000.0);
  result.one_serialization = true;  // n/a: the baseline decodes on purpose
  return result;
}

/// One transport hop as the refactored stages do it: adopt the encoded
/// buffer (move), send, and view the received frame in place.
HopResult run_transport(transport::Transport& t, std::string mode,
                        std::size_t batch_size) {
  auto sender = t.make_sender("bench/out");
  auto receiver = t.make_receiver("bench/in", 1 << 16, transport::OverflowPolicy::kBlock);
  receiver->subscribe("");
  sender->connect(receiver);
  const core::EventBatch batch = make_batch(batch_size);
  // TCP pays a full socket roundtrip per frame in this lock-step loop;
  // fewer frames give the same events/s without a minute of wall time.
  const std::size_t iters = mode == "tcp"
                                ? std::min<std::size_t>(iterations_for(batch_size), 4096)
                                : iterations_for(batch_size);

  const std::uint64_t copies_before = transport::frame_copies();
  const auto codec_before = core::codec_counters();
  std::uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    auto bytes = core::encode_batch(batch);
    sender->send("fsmon/mdt0", transport::FrameRef::adopt(std::move(bytes)));
    auto frame = receiver->recv(std::chrono::milliseconds(2000));
    auto view = core::view_batch(frame->payload.bytes());
    sink += view.value().count;
  }
  const auto done = std::chrono::steady_clock::now();
  const auto codec_after = core::codec_counters();

  HopResult result;
  result.mode = std::move(mode);
  result.batch = batch_size;
  result.events = sink;
  result.wall_ms = std::chrono::duration<double, std::milli>(done - start).count();
  result.events_per_sec = static_cast<double>(sink) / (result.wall_ms / 1000.0);
  result.frame_copies = transport::frame_copies() - copies_before;
  // Exactly one serialize per event (the collector-side encode), zero
  // per-hop deserializes: view_batch never materializes events.
  result.one_serialization =
      codec_after.serialize_calls - codec_before.serialize_calls ==
          static_cast<std::uint64_t>(iters) * batch_size &&
      codec_after.deserialize_calls == codec_before.deserialize_calls;
  return result;
}

}  // namespace
}  // namespace fsmon

int main() {
  using namespace fsmon;

  bench::banner("transport hop: zero-copy FrameRef vs copy-per-hop baseline");
  std::printf("%llu events per run, batch sizes 1 / 64 / 512\n",
              static_cast<unsigned long long>(kEventsPerRun));

  const std::vector<std::size_t> batches{1, 64, 512};
  std::vector<HopResult> results;
  double baseline64 = 0;
  for (const std::size_t b : batches) {
    auto r = run_baseline(b);
    if (b == 64) baseline64 = r.events_per_sec;
    results.push_back(std::move(r));
  }
  {
    msgq::Bus bus;
    transport::InProcTransport inproc(bus);
    for (const std::size_t b : batches) results.push_back(run_transport(inproc, "inproc", b));
    transport::ShmTransport shm;
    for (const std::size_t b : batches) results.push_back(run_transport(shm, "shm", b));
    if (sockets_available()) {
      transport::TcpTransport tcp;
      for (const std::size_t b : batches) results.push_back(run_transport(tcp, "tcp", b));
    } else {
      std::printf("sockets unavailable: skipping the tcp hop (not asserted)\n");
    }
  }

  bench::Table table({"mode", "batch", "events", "wall ms", "events/s", "vs baseline@64",
                      "frame copies", "1-serialize"});
  double speedup_inproc64 = 0, speedup_shm64 = 0, speedup_tcp64 = 0;
  bool zero_copy_ok = true;
  bool one_serialization_ok = true;
  for (const auto& r : results) {
    const double speedup = r.batch == 64 ? r.events_per_sec / baseline64 : 0;
    if (r.batch == 64) {
      if (r.mode == "inproc") speedup_inproc64 = speedup;
      if (r.mode == "shm") speedup_shm64 = speedup;
      if (r.mode == "tcp") speedup_tcp64 = speedup;
    }
    if (r.mode == "inproc" || r.mode == "shm") {
      zero_copy_ok = zero_copy_ok && r.frame_copies == 0;
      one_serialization_ok = one_serialization_ok && r.one_serialization;
    }
    table.add_row({r.mode, std::to_string(r.batch), std::to_string(r.events),
                   bench::fmt(r.wall_ms, 1), bench::fmt(r.events_per_sec, 0),
                   r.batch == 64 ? bench::fmt(speedup, 2) + "x" : "-",
                   std::to_string(r.frame_copies), r.one_serialization ? "yes" : "NO"});
  }
  table.print();

  if (std::FILE* out = std::fopen("BENCH_transport.json", "w")) {
    std::fprintf(out, "{\n  \"runs\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(out,
                   "    {\"mode\": \"%s\", \"batch\": %zu, \"events\": %llu, "
                   "\"wall_ms\": %.1f, \"events_per_sec\": %.0f, \"frame_copies\": %llu, "
                   "\"one_serialization_per_event\": %s}%s\n",
                   r.mode.c_str(), r.batch, static_cast<unsigned long long>(r.events),
                   r.wall_ms, r.events_per_sec,
                   static_cast<unsigned long long>(r.frame_copies),
                   r.one_serialization ? "true" : "false",
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"baseline_batch64_events_per_sec\": %.0f,\n", baseline64);
    std::fprintf(out, "  \"speedup_batch64\": {\"inproc\": %.2f, \"shm\": %.2f, \"tcp\": %.2f},\n",
                 speedup_inproc64, speedup_shm64, speedup_tcp64);
    std::fprintf(out, "  \"required_speedup\": %.1f,\n", kRequiredSpeedup);
    std::fprintf(out, "  \"zero_copy_inproc_shm\": %s\n}\n", zero_copy_ok ? "true" : "false");
    std::fclose(out);
    std::printf("results: BENCH_transport.json\n");
  }

  bool ok = true;
  if (speedup_inproc64 < kRequiredSpeedup || speedup_shm64 < kRequiredSpeedup) {
    std::printf("FAIL: batch-64 speedup inproc %.2fx / shm %.2fx below the %.1fx floor\n",
                speedup_inproc64, speedup_shm64, kRequiredSpeedup);
    ok = false;
  }
  if (!zero_copy_ok) {
    std::printf("FAIL: frame.copies moved on an in-proc/shm hop\n");
    ok = false;
  }
  if (!one_serialization_ok) {
    std::printf("FAIL: one-serialization-per-event invariant broken\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
