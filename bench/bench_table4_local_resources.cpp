// Table IV reproduction: CPU% and Memory% of FSMonitor vs the native
// tool on each local platform while running Evaluate_Performance_Script.
#include "bench/bench_util.hpp"
#include "bench/local_sim.hpp"

using namespace fsmon;

int main() {
  bench::banner("Table IV: CPU and Memory usage of FSMonitor, FSWatch and inotify");

  struct PaperRow {
    localfs::PlatformProfile profile;
    double paper_cpu_fsmonitor;
    double paper_cpu_other;
    double paper_mem;  // both columns are 0.01% in the paper
  };
  const PaperRow rows[] = {
      {localfs::PlatformProfile::macos(), 0.1, 0.1, 0.01},
      {localfs::PlatformProfile::ubuntu(), 0.4, 0.3, 0.01},
      {localfs::PlatformProfile::centos(), 0.2, 0.3, 0.01},
  };

  bench::Table table({"Platform", "FSMonitor CPU%", "Other CPU%", "FSMonitor Mem%",
                      "Other Mem%"});
  for (const auto& row : rows) {
    const auto fsmonitor = bench::run_local_sim(row.profile, true);
    const auto other = bench::run_local_sim(row.profile, false);
    table.add_row({row.profile.name,
                   bench::vs_paper(fsmonitor.cpu_percent, row.paper_cpu_fsmonitor, 2),
                   bench::vs_paper(other.cpu_percent, row.paper_cpu_other, 2),
                   bench::vs_paper(fsmonitor.memory_percent, row.paper_mem, 2),
                   bench::vs_paper(other.memory_percent, row.paper_mem, 2)});
  }
  table.print();
  std::printf(
      "Shape check: no monitor uses significant machine resources\n"
      "(Section V-C2: \"no monitor makes heavy use of machine resources\").\n");
  return 0;
}
