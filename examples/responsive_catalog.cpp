// Responsive-cataloging use case (paper Section VI-B): maintain a
// searchable, always-current catalog of a large store purely from the
// event stream — no crawling.
//
// A Filebench-style fileset is created on a simulated Lustre store while
// the catalog consumes FSMonitor events; files are then moved and
// deleted, and the catalog answers search queries throughout.
#include <atomic>
#include <cstdio>
#include <mutex>

#include "src/scalable/scalable_monitor.hpp"
#include "src/usecases/catalog.hpp"
#include "src/workloads/filebench.hpp"

using namespace fsmon;

int main() {
  common::RealClock clock;
  lustre::LustreFs fs(lustre::LustreFsOptions{}, clock);
  scalable::ScalableMonitorOptions options;
  scalable::ScalableMonitor monitor(fs, options, clock);

  usecases::MetadataExtractor extractor;
  usecases::Catalog catalog(extractor);
  std::mutex mu;
  std::atomic<std::uint64_t> received{0};
  auto consumer = monitor.make_consumer("cataloger", scalable::ConsumerOptions{},
                                        [&](const core::StdEvent& event) {
                                          received.fetch_add(1);
                                          std::lock_guard lock(mu);
                                          catalog.apply(event);
                                        });
  if (!monitor.start().is_ok() || !consumer->start().is_ok()) return 1;

  // Phase 1: a small Filebench fileset plus some typed science data.
  workloads::LustreTarget target(fs);
  workloads::FilebenchOptions fb;
  fb.files = 2000;
  const auto report = workloads::run_filebench_create(target, "", fb);
  fs.mkdir("/experiments");
  fs.create("/experiments/run1_temperature.csv");
  fs.create("/experiments/run1_pressure.csv");
  fs.create("/experiments/run1_frames.h5");
  fs.create("/experiments/notes.txt");
  const std::uint64_t phase1 = report.footprint.total_ops() + 5;

  auto wait_for = [&](std::uint64_t expected) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (received.load() < expected && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  };
  wait_for(phase1);

  {
    std::lock_guard lock(mu);
    std::printf("# catalog holds %zu entries after %llu events (no crawl!)\n",
                catalog.size(), static_cast<unsigned long long>(received.load()));
    std::printf("# search type 'tabular':\n");
    for (const auto& entry : catalog.search_type("tabular"))
      std::printf("#   %s (keywords:", entry.path.c_str());
    std::printf("\n# search keyword 'run1': %zu hits\n",
                catalog.search_keyword("run1").size());
    std::printf("# search path '/experiments/*.csv': %zu hits\n",
                catalog.search_path("/experiments/*.csv").size());
  }

  // Phase 2: data movement and deletion keep the catalog current.
  fs.rename("/experiments/run1_temperature.csv", "/experiments/archived_temperature.csv");
  fs.unlink("/experiments/notes.txt");
  wait_for(phase1 + 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  consumer->stop();
  monitor.stop();

  std::lock_guard lock(mu);
  std::printf("# after move+delete:\n");
  std::printf("#   lookup old path:   %s\n",
              catalog.lookup("/experiments/run1_temperature.csv") ? "FOUND (BUG)"
                                                                  : "gone (correct)");
  auto moved = catalog.lookup("/experiments/archived_temperature.csv");
  std::printf("#   lookup new path:   %s (version %llu, metadata preserved)\n",
              moved ? "found" : "MISSING (BUG)",
              moved ? static_cast<unsigned long long>(moved->version) : 0ull);
  std::printf("#   deleted notes.txt: %s\n",
              catalog.lookup("/experiments/notes.txt") ? "STILL PRESENT (BUG)"
                                                       : "gone (correct)");
  std::printf("# catalog final size %zu, %llu extractor runs, %llu moves joined\n",
              catalog.size(), static_cast<unsigned long long>(extractor.extractions()),
              static_cast<unsigned long long>(catalog.moves_joined()));
  const bool ok = !catalog.lookup("/experiments/run1_temperature.csv") && moved &&
                  !catalog.lookup("/experiments/notes.txt");
  return ok ? 0 : 1;
}
