// Site-wide Lustre monitoring: a simulated Iota-class deployment (four
// MDSs with DNE) monitored by the full scalable pipeline — per-MDS
// collectors, MGS aggregator with a reliable event store, and a client
// consumer — while mixed application workloads run.
//
// Usage: lustre_site_monitor [mds=4] [events=2000] [store_dir=<path>]
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>

#include "src/common/config.hpp"
#include "src/scalable/scalable_monitor.hpp"
#include "src/workloads/hacc.hpp"
#include "src/workloads/ior.hpp"
#include "src/workloads/scripts.hpp"

using namespace fsmon;

int main(int argc, char** argv) {
  common::Config config;
  config.parse_args(argc, argv);
  const auto mds_count = static_cast<std::uint32_t>(config.get_int("mds", 4));
  const auto iterations = static_cast<std::uint64_t>(config.get_int("events", 2000));
  const std::string store_dir = config.get_or(
      "store_dir", (std::filesystem::temp_directory_path() / "fsmon_site_store").string());
  std::filesystem::remove_all(store_dir);

  common::RealClock clock;
  lustre::LustreFsOptions fs_options = lustre::TestbedProfile::iota().fs_options;
  fs_options.mdt_count = mds_count;
  lustre::LustreFs fs(fs_options, clock);
  std::printf("# simulated Lustre '%s': %u MDS, %u OSS, %.0f TB\n",
              fs_options.fsname.c_str(), fs.mdt_count(), fs.osts().oss_count(),
              static_cast<double>(fs.osts().total_capacity_bytes()) / (1ull << 40));

  scalable::ScalableMonitorOptions options;
  options.collector.cache_size = 5000;
  eventstore::EventStoreOptions store;
  store.directory = store_dir;
  options.aggregator.store = store;
  scalable::ScalableMonitor monitor(fs, options, clock);

  std::mutex mu;
  std::map<std::string, std::uint64_t> by_kind;
  std::map<std::string, std::uint64_t> by_source;
  std::atomic<std::uint64_t> received{0};
  auto consumer = monitor.make_consumer(
      "site-client", scalable::ConsumerOptions{}, [&](const core::StdEvent& event) {
        received.fetch_add(1);
        std::lock_guard lock(mu);
        ++by_kind[std::string(to_string(event.kind))];
        ++by_source[event.source];
      });
  if (!monitor.start().is_ok() || !consumer->start().is_ok()) {
    std::fprintf(stderr, "failed to start the scalable monitor\n");
    return 1;
  }

  // Drive mixed load: the performance script plus application I/O.
  workloads::LustreTarget target(fs);
  workloads::PerformanceScriptOptions script;
  script.iterations = iterations;
  const auto script_fp = workloads::run_performance_script(target, "", script);
  workloads::IorOptions ior;
  ior.processes = 64;
  const auto ior_fp = workloads::run_ior(target, "", ior);
  workloads::HaccIoOptions hacc;
  hacc.processes = 64;
  const auto hacc_fp = workloads::run_hacc_io(target, "", hacc);
  const std::uint64_t expected =
      script_fp.total_ops() + ior_fp.total_ops() + hacc_fp.total_ops();

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (received.load() < expected && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  consumer->stop();
  monitor.stop();

  std::printf("# generated %llu metadata events; consumer received %llu\n",
              static_cast<unsigned long long>(expected),
              static_cast<unsigned long long>(received.load()));
  std::printf("# events by kind:\n");
  for (const auto& [kind, count] : by_kind)
    std::printf("#   %-10s %10llu\n", kind.c_str(), static_cast<unsigned long long>(count));
  std::printf("# events by producing MDT:\n");
  for (const auto& [source, count] : by_source)
    std::printf("#   %-14s %8llu\n", source.c_str(),
                static_cast<unsigned long long>(count));
  std::printf("# reliable store retains %zu events at %s\n",
              monitor.aggregator().store()->live_records(), store_dir.c_str());
  std::printf("# historic replay of the last 5 events:\n");
  const auto last_id = monitor.aggregator().last_event_id();
  auto replay = monitor.aggregator().events_since(last_id >= 5 ? last_id - 5 : 0);
  if (replay) {
    for (const auto& event : replay.value())
      std::printf("#   [%llu] %s\n", static_cast<unsigned long long>(event.id),
                  core::to_inotify_line(event).c_str());
  }
  return received.load() == expected ? 0 : 1;
}
