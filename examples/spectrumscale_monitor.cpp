// Monitoring an IBM Spectrum Scale (GPFS) cluster through FSMonitor —
// the paper's extensibility claim in action (Section II-B2): the same
// FsMonitor facade and standardized event stream, backed by the File
// Audit Logging pipeline (protocol nodes -> multi-node message queue ->
// retention-enabled fileset) instead of Lustre Changelogs.
#include <cstdio>
#include <mutex>
#include <thread>

#include "src/core/monitor.hpp"
#include "src/spectrumscale/fal_dsi.hpp"

using namespace fsmon;

int main() {
  common::RealClock clock;
  spectrumscale::GpfsClusterOptions cluster_options;
  cluster_options.cluster_name = "science.gpfs";
  cluster_options.node_count = 4;
  spectrumscale::GpfsCluster cluster(cluster_options, clock);

  core::DsiRegistry registry;
  spectrumscale::register_spectrumscale_dsi(registry, cluster, clock);

  core::MonitorOptions options;
  options.storage.scheme = "spectrumscale";
  options.storage.root = "/";
  core::FsMonitor monitor(options, &registry, &clock);

  std::mutex mu;
  int received = 0;
  monitor.subscribe({}, [&](const std::vector<core::StdEvent>& batch) {
    std::lock_guard lock(mu);
    for (const auto& event : batch) {
      std::printf("%s    (from %s)\n", core::to_inotify_line(event).c_str(),
                  event.source.c_str());
      ++received;
    }
  });
  if (!monitor.start().is_ok()) return 1;
  std::printf("# monitoring GPFS cluster '%s' (%u protocol nodes) via %s DSI\n",
              cluster_options.cluster_name.c_str(), cluster.node_count(),
              monitor.dsi_name().c_str());

  // A small application workload against the cluster.
  cluster.mkdir("/projects");
  cluster.create("/projects/results.csv");
  cluster.write("/projects/results.csv");
  cluster.set_acl("/projects/results.csv");
  cluster.rename("/projects/results.csv", "/projects/results-final.csv");
  cluster.unlink("/projects/results-final.csv");
  cluster.rmdir("/projects");

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    {
      std::lock_guard lock(mu);
      if (received >= 9) break;  // 7 ops, rename doubles, write = open+close
    }
    if (std::chrono::steady_clock::now() > deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  monitor.stop();
  std::printf("# %d standardized events; retention fileset holds %zu audit records\n",
              received, cluster.fileset().retained());
  return received >= 9 ? 0 : 1;
}
