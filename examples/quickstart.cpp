// Quickstart: monitor a directory with FSMonitor and print standardized
// events.
//
// Usage:
//   quickstart [path] [dialect=inotify|kqueue|fsevents|filesystemwatcher]
//              [seconds=N]
//   quickstart pipeline [metrics.path=FILE] [metrics.format=json|prometheus]
//   quickstart query
//
// With a real directory path (default: a fresh temp directory), the
// inotify DSI is auto-selected and a small demo workload runs against
// the directory; on hosts without inotify the example falls back to the
// simulated in-memory backend so it always produces output.
//
// `quickstart pipeline` instead assembles the scalable Lustre pipeline
// (collectors -> aggregator with WAL-backed store -> consumer), drives a
// metadata workload through it, and writes a metrics snapshot
// (quickstart_metrics.json by default) covering every stage.
//
// `quickstart query` attaches a namespace IndexConsumer to the same
// pipeline, runs a workload with renames, and answers point-in-time
// queries (lookup / ls / hot directories / rename chains) from the
// materialized index — no file system scan involved.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "src/common/config.hpp"
#include "src/core/monitor.hpp"
#include "src/localfs/inotify_dsi.hpp"
#include "src/localfs/sim_dsi.hpp"
#include "src/nsindex/index_consumer.hpp"
#include "src/obs/exporters.hpp"
#include "src/obs/metrics.hpp"
#include "src/scalable/scalable_monitor.hpp"
#include "src/workloads/scripts.hpp"

using namespace fsmon;

namespace {

int run_pipeline(common::Config& config) {
  auto& clock = common::RealClock::instance();
  lustre::LustreFsOptions fs_options;
  fs_options.mdt_count = 2;
  lustre::LustreFs fs(fs_options, clock);

  obs::MetricsRegistry registry;
  fs.attach_metrics(registry);

  const auto store_dir = std::filesystem::temp_directory_path() / "fsmon_quickstart_store";
  std::filesystem::remove_all(store_dir);

  scalable::ScalableMonitorOptions options;
  options.collector.metrics = &registry;
  options.aggregator.metrics = &registry;
  eventstore::EventStoreOptions store;
  store.directory = store_dir;
  store.flush_each_append = true;  // pay the fsync so wal.* latency is real
  options.aggregator.store = store;
  scalable::ScalableMonitor monitor(fs, options, clock);

  // Exporter selected via common::Config (metrics.path / metrics.format /
  // metrics.interval_ms); default to a JSON file in the working directory.
  if (config.get_or("metrics.path", "").empty())
    config.set("metrics.path", "quickstart_metrics.json");
  auto exporter = obs::exporter_from_config(registry, config);

  std::atomic<std::uint64_t> delivered{0};
  scalable::ConsumerOptions consumer_options;
  consumer_options.metrics = &registry;
  consumer_options.ack_interval = 16;
  auto consumer = monitor.make_consumer("quickstart", consumer_options,
                                        [&](const core::StdEvent&) { ++delivered; });
  if (auto s = monitor.start(); !s.is_ok()) {
    std::fprintf(stderr, "failed to start pipeline: %s\n", s.to_string().c_str());
    return 1;
  }
  if (auto s = consumer->start(); !s.is_ok()) {
    std::fprintf(stderr, "failed to start consumer: %s\n", s.to_string().c_str());
    return 1;
  }
  if (exporter != nullptr) {
    if (auto s = exporter->start(); !s.is_ok()) {
      std::fprintf(stderr, "failed to start metrics exporter: %s\n",
                   s.to_string().c_str());
      return 1;
    }
  }
  std::printf("# scalable pipeline: %zu collectors -> aggregator (WAL store) -> consumer\n",
              monitor.collector_count());

  // Metadata workload: create/modify/delete across directories so both
  // MDTs see traffic and the fid2path cache gets hits and misses.
  fs.mkdir("/demo");
  for (int d = 0; d < 4; ++d) fs.mkdir("/demo/d" + std::to_string(d));
  for (int i = 0; i < 400; ++i) {
    const std::string path =
        "/demo/d" + std::to_string(i % 4) + "/f" + std::to_string(i);
    fs.create(path);
    fs.modify(path, 4096);
    if (i % 2 == 0) fs.unlink(path);
  }

  // Wait for the pipeline to drain: the aggregator head stops advancing
  // and the consumer has seen it.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto head = monitor.aggregator().last_event_id();
    if (head > 0 && consumer->last_seen_id() >= head) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (monitor.aggregator().last_event_id() == head) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  consumer->stop();
  monitor.stop();
  if (exporter != nullptr) exporter->stop();  // writes the final snapshot

  std::printf("# delivered %llu events; metrics snapshot: %s\n",
              static_cast<unsigned long long>(delivered.load()),
              config.get_or("metrics.path", "").c_str());
  std::filesystem::remove_all(store_dir);
  return delivered.load() > 0 ? 0 : 1;
}

int run_query() {
  auto& clock = common::RealClock::instance();
  lustre::LustreFs fs(lustre::LustreFsOptions{}, clock);

  const auto root = std::filesystem::temp_directory_path() / "fsmon_quickstart_query";
  std::filesystem::remove_all(root);
  scalable::ScalableMonitorOptions options;
  eventstore::EventStoreOptions store;
  store.directory = root / "store";
  store.flush_each_append = true;
  options.aggregator.store = store;
  scalable::ScalableMonitor monitor(fs, options, clock);
  if (auto s = monitor.start(); !s.is_ok()) {
    std::fprintf(stderr, "failed to start pipeline: %s\n", s.to_string().c_str());
    return 1;
  }

  nsindex::IndexConsumerOptions index_options;
  index_options.snapshot_dir = root / "snaps";
  nsindex::IndexConsumer consumer(monitor.bus(), monitor.sharded(), "quickstart",
                                  std::move(index_options));
  if (auto s = consumer.start(); !s.is_ok()) {
    std::fprintf(stderr, "failed to start index consumer: %s\n",
                 s.to_string().c_str());
    return 1;
  }

  // Workload with renames so the chain queries have something to say.
  fs.mkdir("/proj");
  fs.mkdir("/proj/run0");
  fs.mkdir("/scratch");
  for (int i = 0; i < 8; ++i) {
    const std::string path = "/proj/run0/out" + std::to_string(i) + ".dat";
    fs.create(path);
    fs.modify(path, 1 << 20);
  }
  // Let the index catch up between the renames: fid2path resolves paths
  // at processing time, so keeping the collector close to the workload
  // keeps the surfaced paths point-in-time exact (the paper's §V-B lag
  // discussion).
  const auto wait_applied = [&](std::uint64_t expected) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (consumer.index().applied_seq() < expected &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return consumer.index().applied_seq() >= expected;
  };
  wait_applied(3 + 8 * 2);
  fs.rename("/proj/run0/out0.dat", "/proj/run0/final.dat");  // two events
  wait_applied(3 + 8 * 2 + 2);
  fs.rename("/proj/run0", "/proj/run0.done");  // directory rename: subtree moves
  const std::uint64_t expected = 3 + 8 * 2 + 2 * 2;
  wait_applied(expected);

  const auto& index = consumer.index();
  std::printf("# namespace index: %zu nodes after %llu events\n",
              index.node_count(),
              static_cast<unsigned long long>(index.applied_seq()));
  if (auto listing = index.list_dir("/proj/run0.done"); listing.is_ok()) {
    std::printf("# ls /proj/run0.done:\n");
    for (const auto& entry : listing.value())
      std::printf("  %s%s\n", entry.name.c_str(), entry.is_dir ? "/" : "");
  }
  if (auto chain = index.resolve_rename_chain("/proj/run0.done/final.dat");
      chain.is_ok()) {
    std::printf("# rename history of /proj/run0.done/final.dat:\n");
    for (const auto& hop : chain.value().hops)
      std::printf("  was %s (until event %llu)\n", hop.old_path.c_str(),
                  static_cast<unsigned long long>(hop.event_id));
  }
  std::printf("# hottest directories:\n");
  for (const auto& dir : index.activity_topk(3))
    std::printf("  %6llu  %s\n", static_cast<unsigned long long>(dir.events),
                dir.path.c_str());

  const bool ok = index.applied_seq() >= expected;
  consumer.stop();
  monitor.stop();
  std::filesystem::remove_all(root);
  return ok ? 0 : 1;
}

int run_real(const std::string& path, core::Dialect dialect, int seconds) {
  core::register_builtin_dsis();
  core::MonitorOptions options;
  options.storage.root = path;  // scheme empty: auto-detect picks inotify
  options.output_dialect = dialect;

  core::FsMonitor monitor(options);
  std::mutex mu;
  monitor.subscribe({}, [&](const std::vector<core::StdEvent>& batch) {
    std::lock_guard lock(mu);
    for (const auto& event : batch)
      std::printf("%s\n", monitor.render_line(event).c_str());
  });
  if (auto status = monitor.start(); !status.is_ok()) {
    std::fprintf(stderr, "failed to start monitor: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("# monitoring %s via %s DSI (%d s)...\n", path.c_str(),
              monitor.dsi_name().c_str(), seconds);

  // Demo workload: the paper's Evaluate_Output_Script against the tree.
  std::filesystem::path base(path);
  {
    std::ofstream(base / "hello.txt") << "hi";
  }
  std::filesystem::rename(base / "hello.txt", base / "hi.txt");
  std::filesystem::create_directory(base / "okdir");
  std::filesystem::rename(base / "hi.txt", base / "okdir" / "hi.txt");
  std::filesystem::remove(base / "okdir" / "hi.txt");
  std::filesystem::remove(base / "okdir");

  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  monitor.stop();
  return 0;
}

int run_simulated(core::Dialect dialect) {
  std::printf("# inotify unavailable; demonstrating on the simulated backend\n");
  common::ManualClock clock;
  localfs::MemFs fs;
  fs.mkdir("/watched");
  core::DsiRegistry registry;
  localfs::register_sim_dsis(registry, fs, clock);

  core::MonitorOptions options;
  options.storage.scheme = "sim-inotify";
  options.storage.root = "/watched";
  options.output_dialect = dialect;
  core::FsMonitor monitor(options, &registry, &clock);
  std::mutex mu;
  monitor.subscribe({}, [&](const std::vector<core::StdEvent>& batch) {
    std::lock_guard lock(mu);
    for (const auto& event : batch)
      std::printf("%s\n", monitor.render_line(event).c_str());
  });
  if (!monitor.start().is_ok()) return 1;
  workloads::MemFsTarget target(fs);
  workloads::run_evaluate_output_script(target, "/watched");
  monitor.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::Config config;
  const auto positional = config.parse_args(argc, argv);
  const auto dialect =
      core::parse_dialect(config.get_or("dialect", "inotify")).value_or(core::Dialect::kInotify);
  const int seconds = static_cast<int>(config.get_int("seconds", 1));

  if (!positional.empty() && positional[0] == "pipeline") return run_pipeline(config);
  if (!positional.empty() && positional[0] == "query") return run_query();

  if (!localfs::InotifyDsi::available()) return run_simulated(dialect);

  std::string path;
  if (!positional.empty()) {
    path = positional[0];
  } else {
    auto tmp = std::filesystem::temp_directory_path() / "fsmon_quickstart";
    std::filesystem::remove_all(tmp);
    std::filesystem::create_directories(tmp);
    path = tmp.string();
  }
  return run_real(path, dialect, seconds);
}
