// Quickstart: monitor a directory with FSMonitor and print standardized
// events.
//
// Usage:
//   quickstart [path] [dialect=inotify|kqueue|fsevents|filesystemwatcher]
//              [seconds=N]
//
// With a real directory path (default: a fresh temp directory), the
// inotify DSI is auto-selected and a small demo workload runs against
// the directory; on hosts without inotify the example falls back to the
// simulated in-memory backend so it always produces output.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "src/common/config.hpp"
#include "src/core/monitor.hpp"
#include "src/localfs/inotify_dsi.hpp"
#include "src/localfs/sim_dsi.hpp"
#include "src/workloads/scripts.hpp"

using namespace fsmon;

namespace {

int run_real(const std::string& path, core::Dialect dialect, int seconds) {
  core::register_builtin_dsis();
  core::MonitorOptions options;
  options.storage.root = path;  // scheme empty: auto-detect picks inotify
  options.output_dialect = dialect;

  core::FsMonitor monitor(options);
  std::mutex mu;
  monitor.subscribe({}, [&](const std::vector<core::StdEvent>& batch) {
    std::lock_guard lock(mu);
    for (const auto& event : batch)
      std::printf("%s\n", monitor.render_line(event).c_str());
  });
  if (auto status = monitor.start(); !status.is_ok()) {
    std::fprintf(stderr, "failed to start monitor: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("# monitoring %s via %s DSI (%d s)...\n", path.c_str(),
              monitor.dsi_name().c_str(), seconds);

  // Demo workload: the paper's Evaluate_Output_Script against the tree.
  std::filesystem::path base(path);
  {
    std::ofstream(base / "hello.txt") << "hi";
  }
  std::filesystem::rename(base / "hello.txt", base / "hi.txt");
  std::filesystem::create_directory(base / "okdir");
  std::filesystem::rename(base / "hi.txt", base / "okdir" / "hi.txt");
  std::filesystem::remove(base / "okdir" / "hi.txt");
  std::filesystem::remove(base / "okdir");

  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  monitor.stop();
  return 0;
}

int run_simulated(core::Dialect dialect) {
  std::printf("# inotify unavailable; demonstrating on the simulated backend\n");
  common::ManualClock clock;
  localfs::MemFs fs;
  fs.mkdir("/watched");
  core::DsiRegistry registry;
  localfs::register_sim_dsis(registry, fs, clock);

  core::MonitorOptions options;
  options.storage.scheme = "sim-inotify";
  options.storage.root = "/watched";
  options.output_dialect = dialect;
  core::FsMonitor monitor(options, &registry, &clock);
  std::mutex mu;
  monitor.subscribe({}, [&](const std::vector<core::StdEvent>& batch) {
    std::lock_guard lock(mu);
    for (const auto& event : batch)
      std::printf("%s\n", monitor.render_line(event).c_str());
  });
  if (!monitor.start().is_ok()) return 1;
  workloads::MemFsTarget target(fs);
  workloads::run_evaluate_output_script(target, "/watched");
  monitor.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::Config config;
  const auto positional = config.parse_args(argc, argv);
  const auto dialect =
      core::parse_dialect(config.get_or("dialect", "inotify")).value_or(core::Dialect::kInotify);
  const int seconds = static_cast<int>(config.get_int("seconds", 1));

  if (!localfs::InotifyDsi::available()) return run_simulated(dialect);

  std::string path;
  if (!positional.empty()) {
    path = positional[0];
  } else {
    auto tmp = std::filesystem::temp_directory_path() / "fsmon_quickstart";
    std::filesystem::remove_all(tmp);
    std::filesystem::create_directories(tmp);
    path = tmp.string();
  }
  return run_real(path, dialect, seconds);
}
