// Research-automation use case (paper Section VI-A): trigger automation
// flows in response to file-system events.
//
// A simulated beamline writes detector frames and metadata to a Lustre
// store; FSMonitor detects the events and the automation client launches
// the matching flow for each: raw frames go through
// transfer -> analyze -> catalog, finished datasets through
// transfer -> publish.
#include <atomic>
#include <cstdio>
#include <mutex>

#include "src/scalable/scalable_monitor.hpp"
#include "src/usecases/automation.hpp"

using namespace fsmon;

int main() {
  common::RealClock clock;
  lustre::LustreFs fs(lustre::LustreFsOptions{}, clock);
  scalable::ScalableMonitorOptions options;
  scalable::ScalableMonitor monitor(fs, options, clock);

  // In-process stand-ins for the remote services a Globus Automate flow
  // invokes; the "funcx" analysis service fails transiently on its first
  // call to demonstrate reliable (retried) execution.
  usecases::FlowRunner runner(/*max_retries=*/3);
  std::mutex mu;
  std::atomic<int> transfers{0}, analyses{0}, publishes{0};
  std::atomic<bool> injected_failure{false};
  runner.register_service("transfer", [&](const usecases::FlowStep&,
                                          const core::StdEvent& event) {
    transfers.fetch_add(1);
    std::lock_guard lock(mu);
    std::printf("  [transfer]  %s -> archive\n", event.full_path().c_str());
    return common::Status::ok();
  });
  runner.register_service("funcx", [&](const usecases::FlowStep& step,
                                       const core::StdEvent& event) {
    if (!injected_failure.exchange(true)) {
      std::lock_guard lock(mu);
      std::printf("  [funcx]     transient failure, retrying...\n");
      return common::Status(common::ErrorCode::kUnavailable, "injected");
    }
    analyses.fetch_add(1);
    std::lock_guard lock(mu);
    std::printf("  [funcx]     %s(%s)\n", step.action.c_str(), event.full_path().c_str());
    return common::Status::ok();
  });
  runner.register_service("search", [&](const usecases::FlowStep&,
                                        const core::StdEvent& event) {
    publishes.fetch_add(1);
    std::lock_guard lock(mu);
    std::printf("  [search]    indexed %s with metadata %s\n", event.path.c_str(),
                usecases::event_metadata_json(event).c_str());
    return common::Status::ok();
  });

  usecases::AutomationClient client(runner);
  std::mutex client_mu;  // guards `client` (consumer thread vs main's polls)
  {
    core::FilterRule frames;
    frames.root = "/beamline/raw";
    frames.name_pattern = "*.tif";
    frames.kinds = std::set<core::EventKind>{core::EventKind::kClose};
    client.add_rule(frames, usecases::Flow{"analyze-frame",
                                           {{"transfer", "to-cluster"},
                                            {"funcx", "reconstruct"},
                                            {"search", "index"}}});
    core::FilterRule datasets;
    datasets.root = "/beamline/processed";
    datasets.name_pattern = "*.h5";  // datasets only, not the directory itself
    datasets.kinds = std::set<core::EventKind>{core::EventKind::kCreate};
    client.add_rule(datasets,
                    usecases::Flow{"publish-dataset",
                                   {{"transfer", "to-repository"}, {"search", "publish"}}});
  }

  // Wire the automation client as an FSMonitor consumer.
  auto consumer = monitor.make_consumer("automation", scalable::ConsumerOptions{},
                                        [&](const core::StdEvent& event) {
                                          std::lock_guard lock(client_mu);
                                          client.on_event(event);
                                        });
  if (!monitor.start().is_ok() || !consumer->start().is_ok()) return 1;

  // The beamline acquires three frames then produces a processed dataset.
  fs.mkdir("/beamline");
  fs.mkdir("/beamline/raw");
  fs.mkdir("/beamline/processed");
  for (int frame = 0; frame < 3; ++frame) {
    const std::string path = "/beamline/raw/scan042_" + std::to_string(frame) + ".tif";
    fs.create(path);
    fs.modify(path, 8 << 20);
    fs.close(path);
  }
  fs.create("/beamline/processed/scan042.h5");

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard lock(client_mu);
      if (client.flows_started() >= 4) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  consumer->stop();
  monitor.stop();

  std::printf(
      "\nSummary: %llu events seen, %llu flows started (%llu failed), "
      "%d transfers, %d analyses, %d index updates\n",
      static_cast<unsigned long long>(client.events_seen()),
      static_cast<unsigned long long>(client.flows_started()),
      static_cast<unsigned long long>(client.flows_failed()), transfers.load(),
      analyses.load(), publishes.load());
  return client.flows_started() == 4 && client.flows_failed() == 0 ? 0 : 1;
}
